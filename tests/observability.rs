//! Acceptance tests for the observability layer (DESIGN.md §11): the
//! Chrome trace export that `repro --trace-out` writes must be valid
//! JSON covering every instrumented layer, and each request's anatomy
//! segments must sum to its end-to-end latency **exactly** (±0 ns).
//! Also covers the machine-readable `BENCH_fig8.json` report.

use std::collections::BTreeSet;

use dcs_bench::anatomy;
use dcs_bench::fig8;
use dcs_ctrl::sim::Json;
use dcs_ctrl::workloads::scenario::DesignUnderTest;

/// Parses the capture that `--trace-out` writes verbatim.
fn traced_capture() -> (anatomy::TraceCapture, Json) {
    let cap = anatomy::capture(DesignUnderTest::DcsCtrl);
    let json = Json::parse(&cap.trace_json).expect("trace must be valid JSON");
    (cap, json)
}

#[test]
fn trace_export_covers_at_least_four_component_categories() {
    let (_, json) = traced_capture();
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("object form with traceEvents");
    assert!(!events.is_empty(), "trace must contain events");
    // Category names ride on the process_name metadata events.
    let mut cats = BTreeSet::new();
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) == Some("M") {
            if let Some(name) = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
            {
                cats.insert(name.to_string());
            }
        }
    }
    assert!(
        cats.len() >= 4,
        "expected >=4 distinct component categories, got {cats:?}"
    );
    for want in ["hdc", "nvme", "pcie", "host"] {
        assert!(cats.contains(want), "missing category {want} in {cats:?}");
    }
    // Every complete event carries exact nanoseconds alongside the µs.
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) == Some("X") {
            let args = ev.get("args").expect("X events carry args");
            let start = args
                .get("start_ns")
                .and_then(|v| v.as_i128())
                .expect("exact start");
            let ns = args
                .get("ns")
                .and_then(|v| v.as_i128())
                .expect("exact duration");
            assert!(start >= 0 && ns >= 0);
        }
    }
}

#[test]
fn anatomy_segments_sum_to_end_to_end_latency_exactly() {
    let (cap, json) = traced_capture();
    assert!(!cap.requests.is_empty(), "capture must trace requests");
    let reqs = json
        .get("metadata")
        .and_then(|m| m.get("requests"))
        .and_then(|r| r.as_arr())
        .expect("metadata.requests present");
    assert_eq!(reqs.len(), cap.requests.len());
    for r in reqs {
        let e2e = r.get("e2e_ns").and_then(|v| v.as_i128()).expect("e2e_ns");
        let segs = r.get("anatomy").and_then(|a| a.as_arr()).expect("anatomy");
        assert!(!segs.is_empty(), "each request has segments");
        let sum: i128 = segs
            .iter()
            .map(|s| s.get("ns").and_then(|v| v.as_i128()).expect("segment ns"))
            .sum();
        // The ±0 invariant: sim-time segments telescope exactly.
        assert_eq!(sum, e2e, "segments must sum to the end-to-end latency");
    }
}

#[test]
fn bench_fig8_json_parses_and_contains_expected_keys() {
    let rows = fig8::collect(true);
    let body = fig8::json_report(&rows).render();
    let json = Json::parse(&body).expect("BENCH_fig8.json must parse");
    assert_eq!(
        json.get("experiment").and_then(|e| e.as_str()),
        Some("fig8"),
        "experiment key"
    );
    assert!(json.get("unit").and_then(|u| u.as_str()).is_some());
    let designs = json.get("designs").expect("designs key");
    for label in ["Linux", "SW opt", "DCS-ctrl"] {
        let d = designs
            .get(label)
            .unwrap_or_else(|| panic!("missing design {label}"));
        let total = d
            .get("total_fraction_of_cores")
            .and_then(|t| t.as_f64())
            .expect("total is a number");
        assert!(total.is_finite() && total >= 0.0);
        assert!(
            d.get("breakdown").is_some(),
            "per-category breakdown present"
        );
    }
}
