//! Seed-sweep smoke: the same scenario across many seeds must uphold
//! structural invariants regardless of the RNG draw — no lost requests,
//! sane availability, consistent digests, and (with tracing on) anatomy
//! segments that sum to the end-to-end latency exactly.

use dcs_cluster::{run_cluster, ClusterConfig, LbPolicy};
use dcs_ctrl::host::job::D2dOp;
use dcs_ctrl::ndp::NdpFunction;
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::time;
use dcs_ctrl::workloads::gen::SizeDistribution;
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xFEED, 0xD15EA5E];

#[test]
fn single_job_invariants_hold_across_seeds() {
    let pat: Vec<u8> = (0..4096u32).map(|i| (i * 37 % 251) as u8).collect();
    let mut digests = Vec::new();
    for seed in SEEDS {
        let mut tb = Testbed::new(
            DesignUnderTest::DcsCtrl,
            &TestbedConfig {
                seed,
                ..Default::default()
            },
        );
        tb.sim.run();
        tb.sim.world_mut().obs.enable();
        let addr = tb.server.ssds[0].lba_addr(8);
        tb.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(addr, &pat);
        let done = tb.run_one_job(vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 8,
                len: pat.len(),
            },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
        ]);
        assert!(done.ok, "seed {seed}: job must succeed");
        assert_eq!(done.payload_len, pat.len(), "seed {seed}: full payload");
        digests.push(done.digest.expect("MD5 digest produced"));

        // Anatomy invariant: segments telescope to the end-to-end span.
        let rec = &tb.sim.world().obs;
        let a = rec.anatomy(done.id).expect("traced request has an anatomy");
        let total = a.total_ns().expect("request completed");
        assert!(total > 0, "seed {seed}: nonzero latency");
        assert_eq!(
            a.segment_sum_ns(),
            total,
            "seed {seed}: anatomy must sum to the end-to-end latency"
        );
    }
    // The data path is functional: every seed hashes the same bytes.
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digest must not depend on the seed"
    );
}

#[test]
fn small_cluster_invariants_hold_across_seeds() {
    for seed in SEEDS {
        let report = run_cluster(&ClusterConfig {
            nodes: 2,
            policy: LbPolicy::JoinShortestQueue,
            sizes: SizeDistribution {
                max: 256 * 1024,
                ..SizeDistribution::default()
            },
            offered_gbps_per_node: 5.0,
            duration_ns: time::ms(8),
            warmup_ns: time::ms(2),
            seed,
            ..ClusterConfig::default()
        });
        assert!(
            report.requests > 0,
            "seed {seed}: cluster must serve traffic"
        );
        assert_eq!(report.lost, 0, "seed {seed}: no request may vanish");
        assert_eq!(
            report.failures, 0,
            "seed {seed}: fault-free run has no failures"
        );
        let avail = report.availability();
        assert!(
            (0.99..=1.0).contains(&avail),
            "seed {seed}: availability {avail} out of bounds"
        );
        assert!(
            report.latency_us(50.0) > 0.0,
            "seed {seed}: latency histogram populated"
        );
    }
}
