//! Determinism regression: the same seeded testbed job, run twice in
//! fresh processes' worth of state, must produce **byte-identical**
//! trace output — completions, per-category latency breakdowns, final
//! simulated time, and every counter in the world stats.
//!
//! This is the property `dcs-lint` exists to protect (DESIGN.md §10):
//! before the DetMap migration, any device table iterated in hash
//! order could silently reorder same-timestamp events between runs.
//! The serialized trace here deliberately includes every stats counter
//! so even a divergence that cancels out in the end-to-end latency
//! still fails the comparison.

use dcs_ctrl::host::job::{D2dDone, D2dOp};
use dcs_ctrl::ndp::NdpFunction;
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::FaultPlan;
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

const LEN: usize = 16 * 1024;

fn pattern() -> Vec<u8> {
    (0..LEN)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

/// Runs one server→client transfer (SSD read → NIC send | NIC recv →
/// MD5) on a fresh testbed and serializes everything observable about
/// the run into a text trace.
fn run_traced(design: DesignUnderTest, seed: u64, with_faults: bool) -> String {
    run_traced_obs(design, seed, with_faults, false)
}

/// Like [`run_traced`], optionally with the observability recorder
/// enabled — which must change *nothing* about the serialized trace.
fn run_traced_obs(design: DesignUnderTest, seed: u64, with_faults: bool, obs: bool) -> String {
    run_traced_full(design, seed, with_faults, obs, false)
}

/// The full-control variant: `reference_heap` swaps the timing-wheel
/// calendar for the `BinaryHeap` reference model before bring-up, so the
/// wheel-vs-heap sweep compares complete event streams.
fn run_traced_full(
    design: DesignUnderTest,
    seed: u64,
    with_faults: bool,
    obs: bool,
    reference_heap: bool,
) -> String {
    let pat = pattern();
    let mut tb = Testbed::new(
        design,
        &TestbedConfig {
            seed,
            ..Default::default()
        },
    );
    if reference_heap {
        tb.sim.set_reference_heap();
    }
    tb.sim.run(); // settle bring-up before touching flash
    if obs {
        tb.sim.world_mut().obs.enable();
    }
    let addr = tb.server.ssds[0].lba_addr(0);
    tb.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(addr, &pat);
    if with_faults {
        tb.install_faults(|rng| FaultPlan::uniform(0.01, rng));
    }

    let flow = TcpFlow::example(1, 2, 41_000, 9_000);
    let server = tb.server.submit_to;
    let client = tb.client.submit_to;
    let done = tb.run_job_batch(vec![
        (
            server,
            vec![
                D2dOp::SsdRead {
                    ssd: 0,
                    lba: 0,
                    len: LEN,
                },
                D2dOp::NicSend { flow, seq: 0 },
            ],
            "det-send",
        ),
        (
            client,
            vec![
                D2dOp::NicRecv {
                    flow: flow.reversed(),
                    len: LEN,
                },
                D2dOp::Process {
                    function: NdpFunction::Md5,
                    aux: vec![],
                },
            ],
            "det-recv",
        ),
    ]);

    serialize_trace(&tb, &done)
}

fn serialize_trace(tb: &Testbed, done: &[D2dDone]) -> String {
    let mut out = String::new();
    out.push_str(&format!("now={:?}\n", tb.sim.now()));
    let mut done: Vec<&D2dDone> = done.iter().collect();
    done.sort_by_key(|d| d.id);
    for d in done {
        out.push_str(&format!(
            "job id={} ok={} payload_len={} digest={:?}\n",
            d.id, d.ok, d.payload_len, d.digest
        ));
        for (cat, ns) in d.breakdown.entries() {
            out.push_str(&format!("  {}={ns}\n", cat.label()));
        }
    }
    // Every counter in the world: hash-order divergence anywhere in the
    // event stream shows up in retry/fault/queue counters even when the
    // end-to-end numbers agree. Stats iterates a BTreeMap, so the
    // serialization order itself is deterministic.
    for (name, value) in tb.sim.world().stats.iter() {
        out.push_str(&format!("stat {name}={value}\n"));
    }
    out
}

#[test]
fn same_seed_twice_is_byte_identical_on_every_design() {
    for design in [
        DesignUnderTest::SwOpt,
        DesignUnderTest::SwP2p,
        DesignUnderTest::DcsCtrl,
    ] {
        let a = run_traced(design, 0xD5EED, false);
        let b = run_traced(design, 0xD5EED, false);
        assert!(
            !a.is_empty() && a.contains("ok=true"),
            "{design}: job must succeed\n{a}"
        );
        assert_eq!(a, b, "{design}: same-seed trace diverged");
    }
}

#[test]
fn same_seed_twice_is_byte_identical_under_fault_storm() {
    // Faults exercise the retry/watchdog paths, which lean hardest on
    // the migrated device tables (outstanding ops, in-flight DMAs).
    let a = run_traced(DesignUnderTest::DcsCtrl, 0xFA0175, true);
    let b = run_traced(DesignUnderTest::DcsCtrl, 0xFA0175, true);
    assert!(a.contains("stat fault.injected"), "storm must fire:\n{a}");
    assert_eq!(a, b, "fault-storm trace diverged");
}

#[test]
fn tracing_on_vs_off_is_byte_identical() {
    // The observability recorder (DESIGN.md §11) is purely passive: a
    // run with spans/metrics recording must serialize exactly like one
    // without. This holds on the clean path and under a fault storm
    // (where recovery timing would expose any perturbation).
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::DcsCtrl] {
        let off = run_traced_obs(design, 0x0B5E7E, false, false);
        let on = run_traced_obs(design, 0x0B5E7E, false, true);
        assert_eq!(off, on, "{design}: enabling tracing changed the simulation");
    }
    let off = run_traced_obs(DesignUnderTest::DcsCtrl, 0x0B5FA1, true, false);
    let on = run_traced_obs(DesignUnderTest::DcsCtrl, 0x0B5FA1, true, true);
    assert_eq!(off, on, "enabling tracing changed a fault-storm run");
}

#[test]
fn chrome_traces_are_themselves_deterministic() {
    // Two same-seed traced runs must export byte-identical trace JSON:
    // span order, pid assignment, and anatomy all derive from sim state.
    let export = || {
        let pat = pattern();
        let mut tb = Testbed::new(
            DesignUnderTest::DcsCtrl,
            &TestbedConfig {
                seed: 7,
                ..Default::default()
            },
        );
        tb.sim.run();
        tb.sim.world_mut().obs.enable();
        let addr = tb.server.ssds[0].lba_addr(0);
        tb.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(addr, &pat);
        let flow = TcpFlow::example(1, 2, 41_500, 9_050);
        let server = tb.server.submit_to;
        let client = tb.client.submit_to;
        tb.run_job_batch(vec![
            (
                server,
                vec![
                    D2dOp::SsdRead {
                        ssd: 0,
                        lba: 0,
                        len: LEN,
                    },
                    D2dOp::NicSend { flow, seq: 0 },
                ],
                "det-send",
            ),
            (
                client,
                vec![D2dOp::NicRecv {
                    flow: flow.reversed(),
                    len: LEN,
                }],
                "det-recv",
            ),
        ]);
        dcs_ctrl::sim::chrome_trace(&tb.sim.world().obs)
    };
    let a = export();
    let b = export();
    assert!(a.contains("traceEvents"), "export must be a Chrome trace");
    assert_eq!(a, b, "same-seed trace JSON diverged");
}

#[test]
fn different_seeds_produce_different_traces_under_faults() {
    // Sanity check that the serialization actually captures run
    // behavior (a trivially constant trace would pass the tests above).
    let a = run_traced(DesignUnderTest::DcsCtrl, 1, true);
    let b = run_traced(DesignUnderTest::DcsCtrl, 2, true);
    assert_ne!(a, b, "different fault seeds should perturb the trace");
}

#[test]
fn wheel_and_heap_reference_trace_identically_across_seeds() {
    // The scheduler-equivalence gate (DESIGN.md §16): before the heap
    // was demoted to a test-only reference model, the timing wheel had
    // to produce byte-identical traces on the real device stack — here
    // under a fault storm, for 8 seeds, including every stats counter.
    const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xFEED, 0xD15EA5E];
    for seed in SEEDS {
        let wheel = run_traced_full(DesignUnderTest::DcsCtrl, seed, true, false, false);
        let heap = run_traced_full(DesignUnderTest::DcsCtrl, seed, true, false, true);
        assert!(
            wheel.contains("job id="),
            "seed {seed:#x}: run must complete jobs\n{wheel}"
        );
        assert_eq!(wheel, heap, "seed {seed:#x}: wheel-vs-heap trace diverged");
    }
}

#[test]
fn cluster_gray_fault_schedule_replays_byte_identically() {
    // Every gray-failure site at once: a fail-slow node (stretched
    // service, probes still acking), a degraded ToR port, and a crash
    // with a mid-window restart driving the full rejoin lifecycle
    // (anti-entropy stream included). Each adds its own event types and
    // timer cancellations to the calendar; the whole tangle must replay
    // byte-identically from the seed — counters, phase rows, and the
    // rejoin figures included. (Since the timing-wheel rebuild this
    // composite schedule runs on the wheel calendar — the heaviest
    // mixed-timer workload the determinism gate covers.)
    use dcs_ctrl::cluster::{run_cluster, ClusterConfig, HealthConfig, LbPolicy, NodeFault};
    use dcs_ctrl::sim::time;
    use dcs_ctrl::workloads::gen::SizeDistribution;

    let cfg = ClusterConfig {
        nodes: 4,
        policy: LbPolicy::JoinShortestQueue,
        objects: 256,
        sizes: SizeDistribution {
            mu: 9.2,
            sigma: 0.6,
            min: 4096,
            max: 64 * 1024,
        },
        offered_gbps_per_node: 2.0,
        duration_ns: time::ms(16),
        warmup_ns: time::ms(3),
        seed: 0x6EA7,
        node_faults: vec![
            NodeFault::FailSlow {
                node: 1,
                at_ns: time::ms(3),
                for_ns: time::ms(5),
                factor: 10,
            },
            NodeFault::LinkDegrade {
                node: 2,
                at_ns: time::ms(4),
                for_ns: time::ms(5),
                speed_pct: 5,
            },
            NodeFault::Crash {
                node: 3,
                at_ns: time::ms(5),
                restart_at_ns: Some(time::ms(11)),
            },
        ],
        health: HealthConfig {
            rejoin_gbps: 8.0,
            ..HealthConfig::default()
        },
        ..ClusterConfig::default()
    };
    let a = run_cluster(&cfg);
    let b = run_cluster(&cfg);
    assert_eq!(a.render("gray"), b.render("gray"), "same seed, same report");
    assert_eq!(
        (
            a.slow_evictions,
            a.slow_readmissions,
            a.rejoin_bytes,
            a.rejoin_ns
        ),
        (
            b.slow_evictions,
            b.slow_readmissions,
            b.rejoin_bytes,
            b.rejoin_ns
        )
    );
    assert_eq!(a.latency.percentile(99.9), b.latency.percentile(99.9));
    // The schedule did real damage and real work — a run where the
    // faults never fired would make the identity check vacuous.
    assert!(
        a.requests > 100,
        "the run must do real work: {}",
        a.requests
    );
    // (`detection_ns` attributes to the *first* configured fault's node —
    // here the fail-slow node, which correctly never goes Dead. The crash
    // being detected is proven by the rejoin stream, which only runs
    // after a Dead declaration.)
    assert!(a.rejoin_bytes > 0, "the rejoin stream must run");
    assert!(
        a.rejoin_ns.is_some(),
        "the restarted node must finish rejoining"
    );
    assert!(
        a.slow_detection_ns.is_some(),
        "a gray site must trip the differential detector"
    );
}
