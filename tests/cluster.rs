//! Cluster-level integration: N full DCS nodes behind the modeled ToR
//! switch, driven by the load-balancing front end (`dcs-cluster`).
//!
//! Asserts the properties the `repro cluster` sweep relies on: bit-exact
//! determinism from the seed (including fault injection and mid-run
//! degradation), near-linear goodput scaling with node count, the
//! queue-aware policy beating oblivious round-robin when a node degrades,
//! and composition with the PR 1 fault plan.

use dcs_ctrl::cluster::{
    build_cluster, run_cluster, ClusterConfig, Degrade, HealthConfig, LbPolicy,
};
use dcs_ctrl::sim::{time, FaultPlan};
use dcs_ctrl::workloads::gen::SizeDistribution;

/// Small objects and short windows: integration-test sized, not
/// sweep-sized.
fn small_cfg() -> ClusterConfig {
    ClusterConfig {
        nodes: 3,
        sizes: SizeDistribution {
            max: 256 * 1024,
            ..SizeDistribution::default()
        },
        offered_gbps_per_node: 5.0,
        duration_ns: time::ms(16),
        warmup_ns: time::ms(3),
        seed: 0x5EED,
        ..ClusterConfig::default()
    }
}

#[test]
fn same_seed_reruns_are_bit_identical() {
    // Exercise every source of randomness at once: arrivals, sizes, the
    // GET/PUT mix, fault injection, and a mid-run port degradation.
    let cfg = ClusterConfig {
        fault_rate: 0.001,
        degrade: Some(Degrade {
            node: 1,
            at_ns: time::ms(5),
            factor: 0.25,
        }),
        ..small_cfg()
    };
    let a = run_cluster(&cfg);
    let b = run_cluster(&cfg);
    assert_eq!(a.render("run"), b.render("run"), "same seed, same report");
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.latency.percentile(99.0), b.latency.percentile(99.0));
    assert!(a.requests > 10, "the run must do real work: {}", a.requests);

    // And a different seed genuinely changes the trace.
    let c = run_cluster(&ClusterConfig {
        seed: 0xBEEF,
        ..cfg
    });
    assert_ne!(
        a.render("run"),
        c.render("run"),
        "different seed, different run"
    );
}

#[test]
fn goodput_scales_near_linearly_with_nodes() {
    let run = |nodes| {
        run_cluster(&ClusterConfig {
            nodes,
            duration_ns: time::ms(30),
            warmup_ns: time::ms(5),
            ..small_cfg()
        })
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.failures, 0);
    assert_eq!(four.failures, 0);
    // Nodes share nothing but the overprovisioned uplink; goodput must
    // scale close to node count (window-edge effects cost a little).
    assert!(
        four.goodput_gbps() > 3.0 * one.goodput_gbps(),
        "1 node {:.2} Gbps, 4 nodes {:.2} Gbps",
        one.goodput_gbps(),
        four.goodput_gbps()
    );
    // And each run actually approached its offered load.
    assert!(one.goodput_gbps() > 3.0, "{:.2}", one.goodput_gbps());
}

#[test]
fn jsq_reroutes_around_a_degraded_node_where_round_robin_cannot() {
    // Full-size objects: with megabyte tails a 10%-speed port backs up
    // deeply, which is exactly the asymmetry queue-aware routing exists
    // for. (With small objects the degraded port keeps up and the
    // policies converge.) The health layer is pinned off to isolate the
    // *policy* contrast: with it on, differential slow-node detection
    // plus hedging rescue round-robin's stranded GETs and the policies
    // converge — which is the gray-failure layer's job, measured by
    // `repro cluster-gray`, not this test's.
    let run = |policy| {
        run_cluster(&ClusterConfig {
            nodes: 4,
            policy,
            offered_gbps_per_node: 6.0,
            duration_ns: time::ms(30),
            warmup_ns: time::ms(5),
            degrade: Some(Degrade {
                node: 0,
                at_ns: time::ms(5),
                factor: 0.1,
            }),
            health: HealthConfig::disabled(),
            ..ClusterConfig::default()
        })
    };
    let rr = run(LbPolicy::RoundRobin);
    let jsq = run(LbPolicy::JoinShortestQueue);
    // The queue-aware policy routes GETs to the healthy replicas and keeps
    // serving; oblivious round-robin keeps feeding the degraded port and
    // strands that share of its window there. The goodput gap is bounded
    // by the healthy nodes' spare capacity (JSQ cannot conjure a fourth
    // node), so the margin is moderate but must be systematic.
    assert!(
        jsq.goodput_gbps() > 1.05 * rr.goodput_gbps(),
        "jsq {:.2} Gbps must beat rr {:.2} Gbps",
        jsq.goodput_gbps(),
        rr.goodput_gbps()
    );
    assert!(
        jsq.requests > rr.requests,
        "jsq must complete more requests: {} vs {}",
        jsq.requests,
        rr.requests
    );
    // Round-robin's defining failure: a quarter of arrivals head for the
    // degraded port, but almost none come back through it.
    let healthy_avg = rr.per_node[1..].iter().map(|n| n.requests).sum::<u64>() / 3;
    assert!(
        rr.per_node[0].requests * 2 < healthy_avg,
        "rr must strand most node-0 work: node 0 completed {} vs healthy avg {healthy_avg}",
        rr.per_node[0].requests
    );
}

#[test]
fn queue_aware_policies_hold_the_tail_at_high_load() {
    // At ~95% of per-node capacity, queues form and replica choice
    // matters; merge three seeds per policy so the comparison is not one
    // sample path. (p99 over the merged histograms.)
    let run = |policy, seed| {
        run_cluster(&ClusterConfig {
            nodes: 4,
            policy,
            offered_gbps_per_node: 7.0,
            duration_ns: time::ms(30),
            warmup_ns: time::ms(5),
            seed,
            ..small_cfg()
        })
    };
    let merged = |policy| {
        let mut h = dcs_ctrl::sim::Histogram::new();
        for seed in [0x5EED, 0xB0B, 0xACE] {
            h.merge(&run(policy, seed).latency);
        }
        h
    };
    let rr = merged(LbPolicy::RoundRobin);
    let jsq = merged(LbPolicy::JoinShortestQueue);
    let (rr99, jsq99) = (rr.p99().unwrap(), jsq.p99().unwrap());
    assert!(
        (jsq99 as f64) <= 1.05 * rr99 as f64,
        "jsq p99 {jsq99} ns must not trail rr p99 {rr99} ns"
    );
}

#[test]
fn availability_accounting_is_consistent_without_node_faults() {
    let r = run_cluster(&small_cfg());
    // Every tallied resolution lands in exactly one per-op bucket: served
    // requests split across get_ok/put_ok, shed and errored ones across
    // the denied buckets.
    assert_eq!(r.requests, r.get_ok + r.put_ok);
    assert_eq!(r.rejected + r.failures, r.get_denied + r.put_denied);
    // Nothing in this run can lose or fail over a request.
    assert_eq!(r.lost, 0);
    assert_eq!(r.retried, 0);
    assert!(r.detection_ns.is_none());
    assert!(r.phases.is_none(), "phases only appear with node faults");
    assert_eq!(r.repair_bytes, 0);
    assert!(r.availability() > 0.9, "{:.4}", r.availability());
}

#[test]
fn fault_injection_composes_with_the_cluster() {
    // ECRC draws per TLP, so object-sized transfers see hundreds of
    // corruption events each; 4e-4 keeps the storm busy without drowning
    // every request in exhausted retries.
    let cfg = ClusterConfig {
        fault_rate: 0.0004,
        ..small_cfg()
    };
    let mut cluster = build_cluster(&cfg);
    cluster.sim.run();
    assert!(cluster.sim.is_idle(), "faulty cluster must still drain");
    let injected: u64 = cluster
        .sim
        .world()
        .get::<FaultPlan>()
        .expect("plan installed")
        .tallies()
        .map(|(_, s)| s.injected)
        .sum();
    assert!(injected > 0, "storm must actually fire");
    let report = cluster
        .sim
        .world_mut()
        .remove::<dcs_ctrl::cluster::ClusterOutcome>()
        .expect("report present")
        .0;
    // Recovery absorbs the storm: the cluster keeps serving, and every
    // request still completes exactly once (ok or error, never neither —
    // run_cluster's drain assertion above proves no request hung).
    assert!(report.requests > 10, "{}", report.requests);
}
