//! Full-stack scheduler equivalence: the timing-wheel calendar vs the
//! `BinaryHeap` reference model, compared on complete testbed and
//! cluster workloads (DESIGN.md §16).
//!
//! `crates/sim/tests/scheduler_equiv.rs` proves equivalence with
//! adversarial synthetic schedules; this suite proves it where it
//! matters — the real device models, with fault schedules pinned down
//! in the exact `Counterexample::repro` format the chaos fuzzer emits.
//! Any counterexample the fuzzer ever prints can be pasted into
//! `CORPUS` below and is then replayed on *both* calendars forever.

use dcs_ctrl::cluster::{run_cluster, ClusterConfig, ClusterOutcome, LbPolicy, NodeFault};
use dcs_ctrl::host::job::{D2dDone, D2dOp};
use dcs_ctrl::ndp::NdpFunction;
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::{time, FaultPlan, FaultSpec};
use dcs_ctrl::workloads::gen::SizeDistribution;
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

/// Fixed-seed corpus in the fuzzer's [`dcs_ctrl::sim::Counterexample::repro`]
/// output format. The first entry is schedule-free (a shrunk-to-nothing
/// counterexample, which the format permits); the rest pin fault events
/// at the indices most likely to land inside retry/watchdog windows.
const CORPUS: [&str; 4] = [
    "violation: non-deterministic replay\n\
     seed: 0x000000000000d5ee\n\
     schedule (0 fault events, shrunk from 12):\n",
    "violation: wrong payload delivered as success (job 1)\n\
     seed: 0x0000000000fa0175\n\
     schedule (3 fault events, shrunk from 21):\n\
     \x20 plan.enable(\"wire.drop\", FaultSpec::Nth(vec![0, 4]));\n\
     \x20 plan.enable(\"nvme.media\", FaultSpec::Nth(vec![1]));\n",
    "violation: hung/panicked request: job 2 stalled\n\
     seed: 0x0000000000c0ffee\n\
     schedule (4 fault events, shrunk from 30):\n\
     \x20 plan.enable(\"pcie.replay\", FaultSpec::Nth(vec![0, 1, 2]));\n\
     \x20 plan.enable(\"pcie.msi_loss\", FaultSpec::Nth(vec![0]));\n",
    "violation: wrong payload delivered as success (job 3)\n\
     seed: 0x00000000deadbea7\n\
     schedule (5 fault events, shrunk from 44):\n\
     \x20 plan.enable(\"pcie.dma_corrupt\", FaultSpec::Nth(vec![0, 2]));\n\
     \x20 plan.enable(\"pcie.cpl_corrupt\", FaultSpec::Nth(vec![1]));\n\
     \x20 plan.enable(\"wire.corrupt\", FaultSpec::Nth(vec![0, 3]));\n",
];

/// Parses one `Counterexample::repro` rendering back into the seed and
/// pinned per-site schedules. Site names resolve against
/// [`FaultPlan::SITES`] (the format quotes the `&'static str` site
/// constants verbatim).
fn parse_repro(text: &str) -> (u64, Vec<(&'static str, Vec<u64>)>) {
    let mut seed = None;
    let mut sites = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(hex) = line.strip_prefix("seed: 0x") {
            seed = Some(u64::from_str_radix(hex, 16).expect("seed line parses as hex"));
        } else if let Some(rest) = line.strip_prefix("plan.enable(\"") {
            let (name, rest) = rest.split_once('"').expect("site name closes its quote");
            let site = FaultPlan::SITES
                .iter()
                .copied()
                .find(|s| *s == name)
                .unwrap_or_else(|| panic!("corpus names unknown fault site {name:?}"));
            let list = rest
                .split_once("vec![")
                .expect("Nth schedule renders as vec![..]")
                .1
                .split_once(']')
                .expect("vec closes")
                .0;
            let idxs = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().expect("fault index parses"))
                .collect();
            sites.push((site, idxs));
        }
    }
    (seed.expect("corpus entry carries a seed"), sites)
}

const LEN: usize = 16 * 1024;

fn pattern() -> Vec<u8> {
    (0..LEN)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

/// Replays one pinned schedule on a full testbed (server→client
/// transfer, SSD → NIC | NIC → MD5) and serializes everything
/// observable. `reference_heap` selects the calendar — including for
/// bring-up, so the comparison covers the whole event stream.
fn replay(
    design: DesignUnderTest,
    seed: u64,
    schedule: &[(&'static str, Vec<u64>)],
    reference_heap: bool,
) -> String {
    let pat = pattern();
    let mut tb = Testbed::new(
        design,
        &TestbedConfig {
            seed,
            ..Default::default()
        },
    );
    if reference_heap {
        tb.sim.set_reference_heap();
    }
    assert_eq!(
        tb.sim.scheduler_name(),
        if reference_heap {
            "reference-heap"
        } else {
            "timing-wheel"
        }
    );
    tb.sim.run();
    let addr = tb.server.ssds[0].lba_addr(0);
    tb.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(addr, &pat);
    if !schedule.is_empty() {
        let schedule = schedule.to_vec();
        tb.install_faults(move |rng| {
            let mut plan = FaultPlan::new(rng);
            for (site, idxs) in schedule {
                plan.enable(site, FaultSpec::Nth(idxs));
            }
            plan
        });
    }
    let flow = TcpFlow::example(1, 2, 41_000, 9_000);
    let server = tb.server.submit_to;
    let client = tb.client.submit_to;
    let done = tb.run_job_batch(vec![
        (
            server,
            vec![
                D2dOp::SsdRead {
                    ssd: 0,
                    lba: 0,
                    len: LEN,
                },
                D2dOp::NicSend { flow, seq: 0 },
            ],
            "equiv-send",
        ),
        (
            client,
            vec![
                D2dOp::NicRecv {
                    flow: flow.reversed(),
                    len: LEN,
                },
                D2dOp::Process {
                    function: NdpFunction::Md5,
                    aux: vec![],
                },
            ],
            "equiv-recv",
        ),
    ]);
    serialize(&tb, &done)
}

fn serialize(tb: &Testbed, done: &[D2dDone]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "now={:?} delivered={}\n",
        tb.sim.now(),
        tb.sim.delivered_events()
    ));
    let mut done: Vec<&D2dDone> = done.iter().collect();
    done.sort_by_key(|d| d.id);
    for d in done {
        out.push_str(&format!(
            "job id={} ok={} payload_len={} digest={:?}\n",
            d.id, d.ok, d.payload_len, d.digest
        ));
        for (cat, ns) in d.breakdown.entries() {
            out.push_str(&format!("  {}={ns}\n", cat.label()));
        }
    }
    for (name, value) in tb.sim.world().stats.iter() {
        out.push_str(&format!("stat {name}={value}\n"));
    }
    out
}

#[test]
fn corpus_replays_identically_on_wheel_and_heap() {
    for (i, entry) in CORPUS.iter().enumerate() {
        let (seed, schedule) = parse_repro(entry);
        for design in [DesignUnderTest::DcsCtrl, DesignUnderTest::SwOpt] {
            let wheel = replay(design, seed, &schedule, false);
            let heap = replay(design, seed, &schedule, true);
            assert!(
                wheel.contains("job id="),
                "corpus[{i}] {design}: replay must complete jobs\n{wheel}"
            );
            assert_eq!(
                wheel, heap,
                "corpus[{i}] {design}: wheel and heap traces diverged"
            );
        }
    }
}

#[test]
fn corpus_schedules_actually_inject() {
    // The equivalence above would be vacuous if the pinned schedules
    // never fired; prove the faulted entries do real damage.
    let (seed, schedule) = parse_repro(CORPUS[1]);
    assert_eq!(schedule.len(), 2, "entry pins two sites");
    let trace = replay(DesignUnderTest::DcsCtrl, seed, &schedule, false);
    assert!(
        trace.contains("stat fault.injected"),
        "pinned schedule must fire:\n{trace}"
    );
}

#[test]
fn cluster_report_is_identical_on_wheel_and_heap() {
    // A cluster run exercises the calendar shapes the microbenches
    // cannot: tens of components, Poisson arrivals, probe timers, and a
    // mid-run fail-slow window. The heap arm swaps calendars *before*
    // the traffic phase via `build_cluster`'s exposed simulator.
    let cfg = ClusterConfig {
        nodes: 4,
        policy: LbPolicy::JoinShortestQueue,
        objects: 256,
        sizes: SizeDistribution {
            mu: 9.2,
            sigma: 0.6,
            min: 4096,
            max: 64 * 1024,
        },
        offered_gbps_per_node: 2.0,
        duration_ns: time::ms(8),
        warmup_ns: time::ms(2),
        seed: 0x005E_EDE0,
        node_faults: vec![NodeFault::FailSlow {
            node: 1,
            at_ns: time::ms(2),
            for_ns: time::ms(3),
            factor: 8,
        }],
        ..ClusterConfig::default()
    };
    let wheel = run_cluster(&cfg);
    let heap = {
        let mut cluster = dcs_ctrl::cluster::build_cluster(&cfg);
        cluster.sim.set_reference_heap();
        cluster.sim.run();
        assert!(cluster.sim.is_idle(), "heap-arm cluster must drain");
        cluster
            .sim
            .world_mut()
            .remove::<ClusterOutcome>()
            .expect("heap-arm run leaves a report")
            .0
    };
    assert!(wheel.requests > 50, "run must do real work");
    assert_eq!(
        wheel.render("equiv"),
        heap.render("equiv"),
        "cluster reports diverged between calendars"
    );
    assert_eq!(
        wheel.latency.percentile(99.0),
        heap.latency.percentile(99.0)
    );
}
