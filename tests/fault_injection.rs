//! Failure-injection tests: malformed requests fail *cleanly* on every
//! design — an error completion, no panic, no stuck simulation.
//!
//! Uses [`Testbed::run_one_job`], the same harness the chaos suite
//! (`tests/chaos.rs`) drives with randomized fault storms.

use dcs_ctrl::host::job::D2dOp;
use dcs_ctrl::ndp::NdpFunction;
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

#[test]
fn out_of_range_lba_fails_cleanly_everywhere() {
    for design in [
        DesignUnderTest::SwOpt,
        DesignUnderTest::SwP2p,
        DesignUnderTest::DcsCtrl,
    ] {
        let mut tb = Testbed::new(design, &TestbedConfig::default());
        let done = tb.run_one_job(vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: u64::MAX / 8192,
                len: 4096,
            },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 3, 4),
                seq: 0,
            },
        ]);
        assert!(!done.ok, "{design} must report the failure");
    }
}

#[test]
fn malformed_aes_key_fails_cleanly_everywhere() {
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::DcsCtrl] {
        let mut tb = Testbed::new(design, &TestbedConfig::default());
        let done = tb.run_one_job(vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len: 4096,
            },
            // 10 bytes instead of key‖nonce (48).
            D2dOp::Process {
                function: NdpFunction::Aes256Encrypt,
                aux: vec![9; 10],
            },
        ]);
        assert!(!done.ok, "{design} must reject the malformed key");
    }
}

#[test]
fn undecodable_gzip_stream_fails_cleanly() {
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::DcsCtrl] {
        let mut tb = Testbed::new(design, &TestbedConfig::default());
        let done = tb.run_one_job(vec![
            // Flash reads as zeros here: not a gzip stream.
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len: 4096,
            },
            D2dOp::Process {
                function: NdpFunction::GzipDecompress,
                aux: vec![],
            },
        ]);
        assert!(!done.ok, "{design} must surface the inflate error");
    }
}

#[test]
fn pipeline_poisoning_skips_downstream_ops() {
    // The failing read must prevent the send: wire stays silent.
    let mut tb = Testbed::new(DesignUnderTest::DcsCtrl, &TestbedConfig::default());
    tb.sim.run(); // settle bring-up before sampling the frame counter
    let frames_before = tb.sim.world().stats.counter_value("wire.frames");
    let done = tb.run_one_job(vec![
        D2dOp::SsdRead {
            ssd: 0,
            lba: u64::MAX / 8192,
            len: 4096,
        },
        D2dOp::Process {
            function: NdpFunction::Md5,
            aux: vec![],
        },
        D2dOp::NicSend {
            flow: TcpFlow::example(1, 2, 3, 4),
            seq: 0,
        },
    ]);
    assert!(!done.ok);
    assert_eq!(
        tb.sim.world().stats.counter_value("wire.frames"),
        frames_before,
        "a poisoned pipeline must not transmit"
    );
}

#[test]
fn failures_do_not_leak_engine_buffers() {
    // Submit a run of failing commands; the allocator must recover all
    // chunks (observable by a subsequent large success).
    let mut tb = Testbed::new(DesignUnderTest::DcsCtrl, &TestbedConfig::default());
    let to = tb.server.submit_to;
    let batch: Vec<_> = (0..80)
        .map(|_| {
            (
                to,
                vec![D2dOp::SsdRead {
                    ssd: 0,
                    lba: u64::MAX / 8192,
                    len: 1 << 20,
                }],
                "leak",
            )
        })
        .collect();
    for done in tb.run_job_batch(batch) {
        assert!(!done.ok);
    }
    // Now a large legitimate command must still find buffer space.
    let done = tb.run_one_job(vec![
        D2dOp::SsdRead {
            ssd: 0,
            lba: 0,
            len: 4 << 20,
        },
        D2dOp::Process {
            function: NdpFunction::Crc32,
            aux: vec![],
        },
    ]);
    assert!(done.ok, "buffers must have been reclaimed");
}
