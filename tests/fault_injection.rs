//! Failure-injection tests: malformed requests fail *cleanly* on every
//! design — an error completion, no panic, no stuck simulation.

use dcs_ctrl::host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ctrl::ndp::NdpFunction;
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::sim::{Component, ComponentId, Ctx, Msg};
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

#[derive(Default, Debug)]
struct Inbox(Vec<D2dDone>);

struct App;

#[derive(Debug)]
struct Submit {
    to: ComponentId,
    job: D2dJob,
}

impl Component for App {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Submit>() {
            Ok(Submit { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg.downcast::<D2dDone>().expect("completions");
        if ctx.world().get::<Inbox>().is_none() {
            ctx.world().insert(Inbox::default());
        }
        ctx.world().expect_mut::<Inbox>().0.push(done);
    }
}

fn run_job(design: DesignUnderTest, ops: Vec<D2dOp>) -> D2dDone {
    let mut tb = Testbed::new(design, &TestbedConfig::default());
    let app = tb.sim.add("app", App);
    tb.sim.run();
    let job = D2dJob { id: 1, ops, reply_to: app, tag: "fault" };
    tb.sim.kickoff(app, Submit { to: tb.server.submit_to, job });
    tb.sim.run();
    assert!(tb.sim.is_idle(), "{design}: simulation must drain");
    let inbox = tb.sim.world().expect::<Inbox>();
    assert_eq!(inbox.0.len(), 1, "{design}: exactly one completion");
    inbox.0[0].clone()
}

#[test]
fn out_of_range_lba_fails_cleanly_everywhere() {
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::SwP2p, DesignUnderTest::DcsCtrl] {
        let done = run_job(
            design,
            vec![
                D2dOp::SsdRead { ssd: 0, lba: u64::MAX / 8192, len: 4096 },
                D2dOp::NicSend { flow: TcpFlow::example(1, 2, 3, 4), seq: 0 },
            ],
        );
        assert!(!done.ok, "{design} must report the failure");
    }
}

#[test]
fn malformed_aes_key_fails_cleanly_everywhere() {
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::DcsCtrl] {
        let done = run_job(
            design,
            vec![
                D2dOp::SsdRead { ssd: 0, lba: 0, len: 4096 },
                // 10 bytes instead of key‖nonce (48).
                D2dOp::Process { function: NdpFunction::Aes256Encrypt, aux: vec![9; 10] },
            ],
        );
        assert!(!done.ok, "{design} must reject the malformed key");
    }
}

#[test]
fn undecodable_gzip_stream_fails_cleanly() {
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::DcsCtrl] {
        let done = run_job(
            design,
            vec![
                // Flash reads as zeros here: not a gzip stream.
                D2dOp::SsdRead { ssd: 0, lba: 0, len: 4096 },
                D2dOp::Process { function: NdpFunction::GzipDecompress, aux: vec![] },
            ],
        );
        assert!(!done.ok, "{design} must surface the inflate error");
    }
}

#[test]
fn pipeline_poisoning_skips_downstream_ops() {
    // The failing read must prevent the send: wire stays silent.
    let mut tb = Testbed::new(DesignUnderTest::DcsCtrl, &TestbedConfig::default());
    let app = tb.sim.add("app", App);
    tb.sim.run();
    let frames_before = tb.sim.world().stats.counter_value("wire.frames");
    let job = D2dJob {
        id: 1,
        ops: vec![
            D2dOp::SsdRead { ssd: 0, lba: u64::MAX / 8192, len: 4096 },
            D2dOp::Process { function: NdpFunction::Md5, aux: vec![] },
            D2dOp::NicSend { flow: TcpFlow::example(1, 2, 3, 4), seq: 0 },
        ],
        reply_to: app,
        tag: "poison",
    };
    tb.sim.kickoff(app, Submit { to: tb.server.submit_to, job });
    tb.sim.run();
    assert_eq!(
        tb.sim.world().stats.counter_value("wire.frames"),
        frames_before,
        "a poisoned pipeline must not transmit"
    );
}

#[test]
fn failures_do_not_leak_engine_buffers() {
    // Submit a run of failing commands; the allocator must recover all
    // chunks (observable by a subsequent large success).
    let mut tb = Testbed::new(DesignUnderTest::DcsCtrl, &TestbedConfig::default());
    let app = tb.sim.add("app", App);
    tb.sim.run();
    for i in 0..80u64 {
        let job = D2dJob {
            id: i,
            ops: vec![D2dOp::SsdRead { ssd: 0, lba: u64::MAX / 8192, len: 1 << 20 }],
            reply_to: app,
            tag: "leak",
        };
        tb.sim.kickoff(app, Submit { to: tb.server.submit_to, job });
    }
    tb.sim.run();
    // Now a large legitimate command must still find buffer space.
    let job = D2dJob {
        id: 1000,
        ops: vec![
            D2dOp::SsdRead { ssd: 0, lba: 0, len: 4 << 20 },
            D2dOp::Process { function: NdpFunction::Crc32, aux: vec![] },
        ],
        reply_to: app,
        tag: "after-leak",
    };
    tb.sim.kickoff(app, Submit { to: tb.server.submit_to, job });
    tb.sim.run();
    let inbox = tb.sim.world().expect::<Inbox>();
    let last = inbox.0.last().expect("completion");
    assert_eq!(last.id, 1000);
    assert!(last.ok, "buffers must have been reclaimed");
}
