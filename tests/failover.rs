//! Node-failure tolerance, end to end: whole-node crashes and hangs
//! against the health layer (probe detection, circuit breaker, replica
//! failover, hedged GETs, PUT fallback, and re-replication), plus the
//! store layer's correctness-under-crash acceptance: cached reads must
//! never serve stale bytes across writes, crash or no crash, and the
//! full YCSB sweep must be byte-identical across double runs.
//!
//! Asserts the acceptance properties of the `repro cluster-failover`
//! sweep: detection within the suspicion-timeout bound, high availability
//! through the failure under queue-aware balancing, a strictly worse
//! ablation with the health layer disabled, deterministic failure
//! handling from the seed, and detection/repair figures that are
//! invariant across load-balancing policies.

use dcs_ctrl::cluster::{run_cluster, ClusterConfig, HealthConfig, LbPolicy, NodeFault};
use dcs_ctrl::sim::time;
use dcs_ctrl::store::cache::{Admission, CacheConfig};
use dcs_ctrl::store::qos::QosPolicy;
use dcs_ctrl::store::{run_store, Crash, StoreConfig, TenantSpec};
use dcs_ctrl::workloads::gen::SizeDistribution;
use dcs_ctrl::workloads::ycsb::YcsbWorkload;

/// N-1-survivable provisioning: 5 Gbps/node over 4 nodes leaves the three
/// survivors enough headroom to absorb a dead peer's share.
fn failover_cfg() -> ClusterConfig {
    ClusterConfig {
        nodes: 4,
        sizes: SizeDistribution {
            max: 256 * 1024,
            ..SizeDistribution::default()
        },
        objects: 1024,
        offered_gbps_per_node: 5.0,
        duration_ns: time::ms(28),
        warmup_ns: time::ms(5),
        seed: 0xFA11,
        node_faults: vec![NodeFault::Crash {
            node: 1,
            at_ns: time::ms(9),
            restart_at_ns: None,
        }],
        ..ClusterConfig::default()
    }
}

#[test]
fn crash_is_detected_failed_over_and_repaired() {
    let r = run_cluster(&failover_cfg());
    // Detection within the probe-schedule bound.
    let detect = r.detection_ns.expect("the crash must be detected");
    let bound = HealthConfig::default().detection_bound_ns();
    assert!(detect <= bound, "detected in {detect} ns, bound {bound} ns");
    // In-flight requests on the dead node were re-dispatched, not lost.
    assert!(r.retried > 0, "failover must retry stranded requests");
    assert!(
        r.lost <= r.retried,
        "losses ({}) must not dominate retries ({})",
        r.lost,
        r.retried
    );
    // The cluster keeps serving through the failure.
    assert!(
        r.get_availability() >= 0.99,
        "GET availability {:.4} under JSQ with failover+hedging",
        r.get_availability()
    );
    assert!(
        r.availability() >= 0.98,
        "overall availability {:.4}",
        r.availability()
    );
    // Re-replication ran and finished (possibly after the window).
    assert!(
        r.repair_bytes > 0,
        "the dead node's shards must be re-replicated"
    );
    assert!(r.repair_ns.is_some(), "repair must complete");
    // Phase split: healthy before, recovered after.
    let phases = r.phases.expect("node-fault runs report phases");
    assert!(phases[0].availability() >= 0.99, "before: {:?}", phases[0]);
    assert!(phases[2].availability() >= 0.99, "after: {:?}", phases[2]);
    assert!(phases[1].requests > 0, "the failure window saw traffic");
}

#[test]
fn failure_handling_is_deterministic_and_detection_is_policy_invariant() {
    let mut detections = Vec::new();
    let mut repair_bytes = Vec::new();
    for policy in LbPolicy::ALL {
        let cfg = ClusterConfig {
            policy,
            ..failover_cfg()
        };
        let a = run_cluster(&cfg);
        let b = run_cluster(&cfg);
        // Same seed ⇒ bit-identical failure handling, counters included.
        assert_eq!(a.render("run"), b.render("run"), "{policy:?}");
        assert_eq!(
            (a.hedged, a.hedge_wins, a.retried, a.lost, a.rejected),
            (b.hedged, b.hedge_wins, b.retried, b.lost, b.rejected),
            "{policy:?}"
        );
        assert_eq!(a.detection_ns, b.detection_ns, "{policy:?}");
        assert_eq!(a.repair_bytes, b.repair_bytes, "{policy:?}");
        assert_eq!(a.repair_ns, b.repair_ns, "{policy:?}");
        detections.push(a.detection_ns.expect("detected"));
        repair_bytes.push(a.repair_bytes);
    }
    // Probes ride the control lane and repair plans off the ring alone,
    // so neither depends on how data traffic was balanced.
    assert!(
        detections.windows(2).all(|w| w[0] == w[1]),
        "detection time must not depend on the LB policy: {detections:?}"
    );
    assert!(
        repair_bytes.windows(2).all(|w| w[0] == w[1]),
        "repair volume must not depend on the LB policy: {repair_bytes:?}"
    );
}

#[test]
fn ablation_disabling_health_is_strictly_worse() {
    let with = run_cluster(&failover_cfg());
    let without = run_cluster(&ClusterConfig {
        health: HealthConfig::disabled(),
        ..failover_cfg()
    });
    // No probes: the crash is never detected, nothing retries or repairs.
    assert!(without.detection_ns.is_none());
    assert_eq!(without.hedged, 0);
    assert_eq!(without.retried, 0);
    assert_eq!(without.repair_bytes, 0);
    // Requests stranded on the dead node surface as losses...
    assert!(without.lost > 0, "stranded requests must be counted lost");
    // ...and availability is strictly worse than the tolerant arm.
    assert!(
        without.availability() < with.availability(),
        "ablation {:.4} must trail health-on {:.4}",
        without.availability(),
        with.availability()
    );
    assert!(
        without.get_availability() < with.get_availability(),
        "GET ablation {:.4} vs {:.4}",
        without.get_availability(),
        with.get_availability()
    );
}

#[test]
fn hang_is_detected_hedged_around_and_survived() {
    // A deliberately sluggish detector (bound ~7 ms) against an 8 ms
    // hang: the node is declared Dead mid-hang and revived by its first
    // post-hang ack. Hedging earns its keep in exactly this gap — the
    // hedge ceiling sits below the detection bound, so requests frozen on
    // the hung node get a second leg out before failover sweeps them.
    let health = HealthConfig {
        dead_after: 10,
        probe_timeout_ns: 2_000_000,
        hedge_max_ns: 4_000_000,
        hedge_default_ns: 4_000_000,
        ..HealthConfig::default()
    };
    let cfg = ClusterConfig {
        node_faults: vec![NodeFault::Hang {
            node: 2,
            at_ns: time::ms(9),
            for_ns: time::ms(8),
        }],
        health: health.clone(),
        ..failover_cfg()
    };
    let r = run_cluster(&cfg);
    let detect = r.detection_ns.expect("the hang must be detected");
    assert!(detect <= health.detection_bound_ns());
    // Requests stuck behind the frozen node were hedged to other
    // replicas, and some hedges beat the primary leg.
    assert!(r.hedged > 0, "hedges must fire against the hung node");
    assert!(r.hedge_wins > 0, "some hedges must win");
    // Between hedging and failover retries, nothing is lost and
    // availability holds through the freeze.
    assert_eq!(r.lost, 0, "hang with failover must lose nothing");
    assert!(
        r.get_availability() >= 0.99,
        "GET availability {:.4} through the hang",
        r.get_availability()
    );
    // After the hang the revived node serves again.
    let phases = r.phases.expect("phases reported");
    assert!(phases[2].availability() >= 0.99, "after: {:?}", phases[2]);
    assert!(
        r.per_node[2].requests > 0,
        "the revived node must serve requests again"
    );
}

#[test]
fn fail_slow_is_detected_within_bound_and_never_declared_dead() {
    // A 10× fail-slow node acks every probe on time, so the timeout
    // detector is blind by construction; the differential arm must catch
    // it from completion latencies alone, within its hysteresis bound.
    let health = HealthConfig::default();
    let r = dcs_bench::cluster::run_fail_slow(10, health.clone(), true);
    let detect = r
        .slow_detection_ns
        .expect("a 10x fail-slow must be caught by the differential detector");
    let bound = health.slow_detection_bound_ns();
    assert!(detect <= bound, "detected in {detect} ns, bound {bound} ns");
    assert!(r.slow_evictions > 0, "the slow node must be deprioritized");
    assert!(
        r.detection_ns.is_none(),
        "probes still ack on time: the timeout detector must stay blind"
    );
    // Slow is routable-but-deprioritized, never ejected: nothing strands.
    assert_eq!(r.lost, 0, "fail-slow must lose nothing");
    assert!(
        r.get_availability() >= 0.99,
        "GET availability {:.4} through the slow window",
        r.get_availability()
    );
}

#[test]
fn recovered_fail_slow_node_is_readmitted() {
    // The fault ends halfway through the window; once the node runs fast
    // again its EWMA decays below the hysteresis floor and it earns its
    // full routing weight back — eviction without readmission would
    // permanently waste a healthy node on a transient brownout.
    let r = dcs_bench::cluster::run_fail_slow(4, HealthConfig::default(), true);
    assert!(r.slow_evictions > 0, "the 4x brownout must be caught");
    assert!(
        r.slow_readmissions > 0,
        "the recovered node must be readmitted ({} evictions)",
        r.slow_evictions
    );
    assert!(
        r.per_node[1].requests > 0,
        "the readmitted node must serve requests"
    );
}

#[test]
fn fail_slow_blind_ablation_has_strictly_worse_tail() {
    // `HealthConfig::blind()` keeps probes, hedging, and failover but
    // switches the differential detector off — isolating exactly the
    // mechanism under test. Without it the slow node keeps its full JSQ
    // share and the tail absorbs every 10×-stretched service time.
    let with = dcs_bench::cluster::run_fail_slow(10, HealthConfig::default(), true);
    let blind = dcs_bench::cluster::run_fail_slow(10, HealthConfig::blind(), true);
    assert!(
        blind.slow_detection_ns.is_none(),
        "blind arm must not detect"
    );
    assert_eq!(blind.slow_evictions, 0);
    assert!(
        with.latency_us(99.0) < blind.latency_us(99.0),
        "differential p99 {:.0} us must strictly beat blind {:.0} us",
        with.latency_us(99.0),
        blind.latency_us(99.0)
    );
}

#[test]
fn link_degrade_is_caught_by_the_differential_detector() {
    // A ToR port at 5% line rate stretches data transfers but control
    // frames still make the (generous) probe deadline — the second
    // timeout-blind gray failure. Same acceptance: differential detection
    // within bound, and a strictly worse tail without it.
    let health = HealthConfig::default();
    let r = dcs_bench::cluster::run_link_degrade(5, health.clone(), true);
    let detect = r
        .slow_detection_ns
        .expect("the degraded link must be caught");
    assert!(detect <= health.slow_detection_bound_ns());
    assert!(r.detection_ns.is_none(), "probes must keep acking");
    let blind = dcs_bench::cluster::run_link_degrade(5, HealthConfig::blind(), true);
    assert!(
        r.latency_us(99.0) < blind.latency_us(99.0),
        "differential p99 {:.0} us must beat blind {:.0} us",
        r.latency_us(99.0),
        blind.latency_us(99.0)
    );
}

#[test]
fn crashed_node_rejoins_repairs_and_serves_again() {
    // The full lifecycle: crash → Dead (probe detection) → failover +
    // re-replication → restart empty → bandwidth-capped anti-entropy
    // from survivors → back in the GET rotation.
    let r = dcs_bench::cluster::run_rejoin(true);
    let detect = r.detection_ns.expect("the crash must be detected");
    assert!(detect <= HealthConfig::default().detection_bound_ns());
    assert!(r.repair_bytes > 0, "survivors must re-replicate first");
    assert!(r.rejoin_bytes > 0, "the anti-entropy stream must run");
    assert!(r.rejoin_ns.is_some(), "rejoin must complete in-window");
    assert!(
        r.per_node[1].requests > 0,
        "the rejoined node must serve requests again"
    );
    assert!(r.lost <= r.retried, "losses bounded by failover retries");
    assert!(
        r.get_availability() >= 0.99,
        "GET availability {:.4} through crash and rejoin",
        r.get_availability()
    );
    // The post-detection phase spans N-1 operation plus the rejoin
    // window, where the ring's imbalance concentrates the dead node's
    // share on its successor — some shedding there is the honest cost.
    let phases = r.phases.expect("node-fault runs report phases");
    assert!(
        phases[2].availability() >= 0.9,
        "after rejoin: {:?}",
        phases[2]
    );
}

/// An update-heavy cached store with a mid-run node crash. Every PUT
/// commit bumps the object's version and invalidates every node's cache
/// entry; a crash additionally discards the dead node's cache wholesale
/// and fails its in-flight requests over to surviving replicas.
fn crashed_store_cfg() -> StoreConfig {
    let mut t = TenantSpec::new("ab", YcsbWorkload::A);
    t.keys = 256;
    t.offered_gbps = 8.0;
    StoreConfig {
        nodes: 4,
        tenants: vec![t],
        cache: CacheConfig {
            capacity_bytes: 64 << 20,
            admission: Admission::AdmitAll,
        },
        duration_ns: time::ms(12),
        warmup_ns: time::ms(2),
        crash: Some(Crash {
            node: 1,
            at_ns: time::ms(5),
            restart_at_ns: None,
        }),
        ..StoreConfig::default()
    }
}

#[test]
fn cached_store_never_serves_stale_bytes_through_a_crash() {
    let r = run_store(&crashed_store_cfg());
    // The run exercised the interesting paths: writes committed, cached
    // reads hit, and the crash actually disturbed in-flight traffic.
    assert!(r.requests > 0, "{}", r.render("crash"));
    assert!(r.put_ok > 0, "workload A writes must land");
    assert!(r.cache_hits > 0, "cached reads must hit between writes");
    assert!(
        r.retried + r.lost > 0,
        "the crash must strand some in-flight requests (retried {} lost {})",
        r.retried,
        r.lost
    );
    // The acceptance property: version-checked lookups plus invalidation
    // at commit mean a cached GET can never return bytes older than the
    // last committed PUT — the tripwire counts any would-be violation,
    // including reads that raced the crash.
    assert_eq!(
        r.stale_served,
        0,
        "stale cache bytes served: {}",
        r.render("crash")
    );
}

#[test]
fn restarted_store_node_rejoins_warm_and_serves_no_stale_bytes() {
    // Same crash, but the node comes back mid-window: it must re-enter
    // empty, stream its shards *and* a cache warm-up set from survivors,
    // and the staleness tripwire must stay at zero through all of it —
    // a warm-up entry admitted at a stale version would trip it on the
    // first version-checked GET.
    // (Shard anti-entropy — `rejoin_bytes` — is the cluster layer's
    // mechanism, covered above; the store layer's restart contribution
    // is the versioned cache warm-up.)
    let r = run_store(&StoreConfig {
        crash: Some(Crash {
            node: 1,
            at_ns: time::ms(5),
            restart_at_ns: Some(time::ms(8)),
        }),
        ..crashed_store_cfg()
    });
    assert!(r.warmup_bytes > 0, "the cache warm-up set must stream");
    assert!(
        r.per_node[1].requests > 0,
        "the rejoined node must serve requests again"
    );
    assert_eq!(
        r.stale_served,
        0,
        "stale bytes served after rejoin: {}",
        r.render("rejoin")
    );
}

#[test]
fn ycsb_sweep_is_byte_identical_across_double_runs() {
    // The acceptance determinism check for `repro store`: every YCSB
    // letter, run twice from the same seed, must render byte-identically
    // (latency histograms, cache counters, and per-tenant rows included).
    for w in YcsbWorkload::ALL {
        let a = dcs_bench::store::run_ycsb(w, true);
        let b = dcs_bench::store::run_ycsb(w, true);
        assert_eq!(
            a.render(w.label()),
            b.render(w.label()),
            "YCSB {} must replay byte-identically",
            w.letter()
        );
        assert_eq!(
            a.per_tenant[0].latency_us(99.9),
            b.per_tenant[0].latency_us(99.9)
        );
    }
}

#[test]
fn wfq_holds_the_compliant_tenant_slo_where_fifo_degrades_it() {
    // The noisy-neighbor acceptance: a compliant tenant's SLO attainment
    // under WFQ with a flooding neighbor must stay within 1% of its
    // no-noisy baseline, while the FIFO ablation visibly degrades it.
    let base = dcs_bench::store::run_noisy(false, QosPolicy::Wfq, true);
    let wfq = dcs_bench::store::run_noisy(true, QosPolicy::Wfq, true);
    let fifo = dcs_bench::store::run_noisy(true, QosPolicy::Fifo, true);
    let base_slo = base.per_tenant[0].slo_attainment();
    let wfq_slo = wfq.per_tenant[0].slo_attainment();
    let fifo_slo = fifo.per_tenant[0].slo_attainment();
    assert!(base_slo > 0.99, "baseline must be healthy: {base_slo:.4}");
    assert!(
        wfq_slo >= base_slo - 0.01,
        "WFQ must hold the compliant tenant at its baseline: {wfq_slo:.4} vs {base_slo:.4}"
    );
    assert!(
        fifo_slo < wfq_slo - 0.05,
        "FIFO must visibly degrade the compliant tenant: {fifo_slo:.4} vs WFQ {wfq_slo:.4}"
    );
    // The flood pays for fairness, not the compliant tenant.
    assert!(
        wfq.per_tenant[1].denied > 0,
        "WFQ must shed the flood, not the tenant"
    );
    assert_eq!(
        wfq.per_tenant[0].denied, 0,
        "the compliant tenant keeps its queue slots"
    );
}
