//! Property-style parity: [`DetMap`]/[`DetSet`] must behave exactly
//! like `std::collections::HashMap`/`HashSet` under the same randomized
//! operation sequence — same return values, same final contents — while
//! additionally iterating in a deterministic (insertion) order.
//!
//! The std collections appear here *only* as the behavioral oracle;
//! nothing in simulation code may use them (DESIGN.md §10).

// dcs-lint: allow-file(hash-collection) — std HashMap/HashSet are the parity oracle this test exists to compare against; no simulation state lives here

use std::collections::{HashMap, HashSet};

use dcs_ctrl::sim::{DetMap, DetSet, Rng};

const OPS: usize = 2_000;
const SEEDS: [u64; 5] = [1, 42, 0xDEAD, 0xC0FFEE, 9_999_999];

/// Keys drawn from a small space so inserts, hits, and removes all occur
/// frequently.
fn key(rng: &mut Rng) -> u64 {
    rng.gen_range(0..256)
}

#[test]
fn detmap_matches_hashmap_under_randomized_ops() {
    for seed in SEEDS {
        let mut rng = Rng::new(seed);
        let mut det: DetMap<u64, u64> = DetMap::new();
        let mut std_map: HashMap<u64, u64> = HashMap::new();
        for i in 0..OPS {
            let k = key(&mut rng);
            match rng.gen_range(0..6) {
                0 | 1 => {
                    // Plain insert: identical displaced values.
                    assert_eq!(det.insert(k, i as u64), std_map.insert(k, i as u64));
                }
                2 => {
                    assert_eq!(det.remove(&k), std_map.remove(&k));
                }
                3 => {
                    // Entry API: or_insert then in-place mutation.
                    let dv = det.entry(k).and_modify(|v| *v += 1).or_insert(7);
                    let sv = std_map.entry(k).and_modify(|v| *v += 1).or_insert(7);
                    assert_eq!(dv, sv);
                }
                4 => {
                    assert_eq!(det.get(&k), std_map.get(&k));
                    assert_eq!(det.contains_key(&k), std_map.contains_key(&k));
                }
                _ => {
                    assert_eq!(det.len(), std_map.len());
                    assert_eq!(det.is_empty(), std_map.is_empty());
                }
            }
        }
        // Identical final contents (checked key-by-key, never by the
        // oracle's iteration order).
        assert_eq!(det.len(), std_map.len(), "seed {seed}: lengths diverged");
        // dcs-lint: allow(hash-iter) — membership check per key; the assertion is order-independent
        for (k, v) in std_map.iter() {
            assert_eq!(det.get(k), Some(v), "seed {seed}: key {k} diverged");
        }
        // Deterministic iteration order: replaying the same seeded op
        // sequence on a fresh map yields the same order; the std oracle
        // makes no such promise.
        let replay = |seed: u64| -> Vec<(u64, u64)> {
            let mut rng = Rng::new(seed);
            let mut m: DetMap<u64, u64> = DetMap::new();
            for i in 0..OPS {
                let k = key(&mut rng);
                match rng.gen_range(0..6) {
                    0 | 1 => {
                        m.insert(k, i as u64);
                    }
                    2 => {
                        m.remove(&k);
                    }
                    3 => {
                        m.entry(k).and_modify(|v| *v += 1).or_insert(7);
                    }
                    _ => {}
                }
            }
            m.iter().map(|(k, v)| (*k, *v)).collect()
        };
        assert_eq!(
            replay(seed),
            replay(seed),
            "seed {seed}: iteration order unstable"
        );
        assert_eq!(
            replay(seed),
            det.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            "seed {seed}: replay disagrees with the checked map"
        );
    }
}

#[test]
fn detset_matches_hashset_under_randomized_ops() {
    for seed in SEEDS {
        let mut rng = Rng::new(seed);
        let mut det: DetSet<u64> = DetSet::new();
        let mut std_set: HashSet<u64> = HashSet::new();
        for _ in 0..OPS {
            let k = key(&mut rng);
            match rng.gen_range(0..4) {
                0 | 1 => assert_eq!(det.insert(k), std_set.insert(k)),
                2 => assert_eq!(det.remove(&k), std_set.remove(&k)),
                _ => {
                    assert_eq!(det.contains(&k), std_set.contains(&k));
                    assert_eq!(det.len(), std_set.len());
                }
            }
        }
        assert_eq!(det.len(), std_set.len(), "seed {seed}: lengths diverged");
        // dcs-lint: allow(hash-iter) — membership check per value; the assertion is order-independent
        for k in std_set.iter() {
            assert!(det.contains(k), "seed {seed}: value {k} missing");
        }
        // Insertion-order iteration is reproducible across runs.
        let order: Vec<u64> = det.iter().copied().collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            order.len(),
            "seed {seed}: duplicate in set iteration"
        );
    }
}
