//! Scale tests: the Figure 13 hardware configuration (six SSDs per node),
//! bounded memory under sustained load, and the cluster-64 gate the
//! timing-wheel scheduler rebuild (DESIGN.md §16) is held to.

use dcs_ctrl::cluster::{build_cluster, ClusterConfig, ClusterOutcome, LbPolicy};
use dcs_ctrl::host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ctrl::ndp::NdpFunction;
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::time;
use dcs_ctrl::sim::{Component, ComponentId, Ctx, Msg};
use dcs_ctrl::workloads::gen::SizeDistribution;
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

#[derive(Default, Debug)]
struct Inbox(Vec<D2dDone>);

struct App;

#[derive(Debug)]
struct Submit {
    to: ComponentId,
    job: D2dJob,
}

impl Component for App {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Submit>() {
            Ok(Submit { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg.downcast::<D2dDone>().expect("completions");
        ctx.world().stats.counter("app.done").add(1);
        if done.ok {
            ctx.world().stats.counter("app.ok").add(1);
        }
        if ctx.world().get::<Inbox>().is_none() {
            ctx.world().insert(Inbox::default());
        }
        ctx.world().expect_mut::<Inbox>().0.push(done);
    }
}

#[test]
fn six_ssd_node_reads_from_every_drive() {
    let cfg = TestbedConfig {
        ssds_per_node: 6,
        ..TestbedConfig::default()
    };
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::DcsCtrl] {
        let mut tb = Testbed::new(design, &cfg);
        let app = tb.sim.add("app", App);
        tb.sim.run();
        assert_eq!(tb.server.ssds.len(), 6);
        for (i, ssd) in tb.server.ssds.iter().enumerate() {
            let data = vec![i as u8 + 1; 8192];
            tb.sim
                .world_mut()
                .expect_mut::<PhysMemory>()
                .write(ssd.lba_addr(0), &data);
        }
        for i in 0..6u64 {
            let job = D2dJob {
                id: i,
                ops: vec![
                    D2dOp::SsdRead {
                        ssd: i as usize,
                        lba: 0,
                        len: 8192,
                    },
                    D2dOp::Process {
                        function: NdpFunction::Md5,
                        aux: vec![],
                    },
                ],
                reply_to: app,
                tag: "six-ssd",
            };
            tb.sim.kickoff(
                app,
                Submit {
                    to: tb.server.submit_to,
                    job,
                },
            );
        }
        tb.sim.run();
        assert_eq!(tb.sim.world().stats.counter_value("app.ok"), 6, "{design}");
        // Digests must differ per drive (distinct contents).
        let inbox = tb.sim.world().expect::<Inbox>();
        let mut digests: Vec<_> = inbox.0.iter().filter_map(|d| d.digest.clone()).collect();
        digests.sort();
        digests.dedup();
        assert_eq!(digests.len(), 6, "{design}");
    }
}

#[test]
fn sustained_stream_keeps_resident_memory_bounded() {
    let mut tb = Testbed::new(DesignUnderTest::DcsCtrl, &TestbedConfig::default());
    let app = tb.sim.add("app", App);
    tb.sim.run();
    let flow = TcpFlow::example(1, 2, 60_000, 9_600);
    // 200 x 64 KiB = 12.5 MiB through the engine.
    for i in 0..200u64 {
        let job = D2dJob {
            id: i,
            ops: vec![
                D2dOp::SsdRead {
                    ssd: 0,
                    lba: i * 16,
                    len: 64 * 1024,
                },
                D2dOp::NicSend {
                    flow,
                    seq: (i * 65536) as u32,
                },
            ],
            reply_to: app,
            tag: "stream",
        };
        tb.sim.kickoff(
            app,
            Submit {
                to: tb.server.submit_to,
                job,
            },
        );
    }
    tb.sim.run();
    assert_eq!(tb.sim.world().stats.counter_value("app.ok"), 200);
    // Sparse backing: resident bytes stay far below the address space
    // (< 256 MiB for a testbed whose regions span hundreds of GiB).
    let resident = tb.sim.world().expect::<PhysMemory>().resident_bytes();
    assert!(resident < 256 << 20, "resident {resident} bytes");
}

#[test]
fn wire_is_the_bottleneck_for_bulk_dcs_transfers() {
    // 64 MiB through the engine must take at least the wire time and not
    // much more (the control path adds microseconds, not milliseconds).
    let mut tb = Testbed::new(DesignUnderTest::DcsCtrl, &TestbedConfig::default());
    let app = tb.sim.add("app", App);
    tb.sim.run();
    let flow = TcpFlow::example(1, 2, 61_000, 9_700);
    let t0 = tb.sim.now();
    let total: usize = 64 << 20;
    let per = 1 << 20;
    for i in 0..(total / per) as u64 {
        let job = D2dJob {
            id: i,
            ops: vec![
                D2dOp::SsdRead {
                    ssd: 0,
                    lba: i * 256,
                    len: per,
                },
                D2dOp::NicSend {
                    flow,
                    seq: (i as u32).wrapping_mul(per as u32),
                },
            ],
            reply_to: app,
            tag: "bulk",
        };
        tb.sim.kickoff(
            app,
            Submit {
                to: tb.server.submit_to,
                job,
            },
        );
    }
    tb.sim.run();
    assert_eq!(
        tb.sim.world().stats.counter_value("app.ok"),
        (total / per) as u64
    );
    let elapsed = tb.sim.now() - t0;
    let wire_floor = dcs_ctrl::sim::Bandwidth::gbps(10.0).transfer_time(total);
    assert!(elapsed >= wire_floor, "{elapsed} >= {wire_floor}");
    assert!(
        elapsed < wire_floor * 2,
        "control overhead must not dominate bulk transfers: {elapsed} vs {wire_floor}"
    );
}

#[test]
fn cluster_64_open_loop_completes_inside_ci_time() {
    // The engine-speed gate: a 64-node rack — 64 full testbeds (PCIe
    // fabric, SSDs, NIC, HDC Engine each) plus the ToR switch and the
    // front end — under open-loop load, scaled down in duration so the
    // gate is CI-cheap. Before the timing wheel this exact shape is what
    // capped the sweeps at 8 nodes. The gate asserts completion, zero
    // wrong-payload/lost requests, and a conservative wall-clock floor
    // on delivered events/sec (the real trajectory numbers live in
    // BENCH_engine.json; this floor only catches order-of-magnitude
    // regressions on the slowest CI hardware).
    let cfg = ClusterConfig {
        nodes: 64,
        policy: LbPolicy::JoinShortestQueue,
        objects: 4096,
        sizes: SizeDistribution {
            mu: 9.2,
            sigma: 0.6,
            min: 4096,
            max: 64 * 1024,
        },
        offered_gbps_per_node: 2.0,
        duration_ns: time::ms(4),
        warmup_ns: time::ms(1),
        seed: 0x64C1,
        ..ClusterConfig::default()
    };
    let mut cluster = build_cluster(&cfg);
    let bringup_events = cluster.sim.delivered_events();
    // dcs-lint: allow(wall-clock) — measures host elapsed time of the gate itself; never feeds simulation state
    let wall_start = std::time::Instant::now();
    cluster.sim.run();
    let wall = wall_start.elapsed();
    assert!(cluster.sim.is_idle(), "cluster-64 must drain");
    let report = cluster
        .sim
        .world_mut()
        .remove::<ClusterOutcome>()
        .expect("cluster-64 run leaves a report")
        .0;
    let events = cluster.sim.delivered_events() - bringup_events;
    let events_per_sec = events as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "cluster-64 gate: {events} events in {:.2}s ({events_per_sec:.0} events/sec, \
         {} served requests, batched {})",
        wall.as_secs_f64(),
        report.requests,
        cluster.sim.batched_events(),
    );
    assert!(
        report.requests > 1_000,
        "open-loop window must serve real traffic: {} requests",
        report.requests
    );
    assert_eq!(report.failures, 0, "zero wrong-payload completions");
    assert_eq!(
        report.lost, 0,
        "no fault was configured; nothing may be lost"
    );
    assert!(
        report.latency.percentile(50.0).is_some(),
        "latency histogram must have signal"
    );
    // Floor chosen ~50× under the wheel's measured release-build rate so
    // debug builds and loaded CI runners pass; a heap-era regression at
    // this scale shows up as minutes, not seconds.
    assert!(
        events_per_sec > 20_000.0,
        "events/sec floor: {events_per_sec:.0}"
    );
    assert!(
        wall.as_secs() < 120,
        "cluster-64 gate must stay CI-cheap: {:.1}s",
        wall.as_secs_f64()
    );
}
