//! Integrity acceptance suite (DESIGN.md §12): under corruption storms
//! at the three corruption sites (DMA payloads, TLP headers, completion
//! entries), **no request may ever complete successfully with the wrong
//! payload** while ECRC is on. Corruption is either recovered
//! transparently (ECRC replay, refetch, command retry) or surfaces as a
//! contained error completion — and every injected corruption is
//! accounted for exactly once. The whole stack, shrinking chaos fuzzer
//! included, replays byte-identically from a seed.

use dcs_ctrl::bench::integrity::{fuzz_target, smoke_config};
use dcs_ctrl::host::job::{D2dDone, D2dOp};
use dcs_ctrl::ndp::{md5::md5, NdpFunction};
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::pcie::aer::AerLog;
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::fault::{self, FaultPlan};
use dcs_ctrl::sim::{fnv1a64, fuzz, FaultSpec, IntegrityAudit, RecoveryConfig};
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

const DESIGNS: [DesignUnderTest; 3] = [
    DesignUnderTest::SwOpt,
    DesignUnderTest::SwP2p,
    DesignUnderTest::DcsCtrl,
];

const LEN: usize = 16 * 1024;

fn pattern() -> Vec<u8> {
    (0..LEN)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

/// Settled testbed with the pattern on flash and the audit installed.
fn audit_testbed(design: DesignUnderTest, seed: u64, pat: &[u8]) -> Testbed {
    let mut tb = Testbed::new(
        design,
        &TestbedConfig {
            seed,
            ..Default::default()
        },
    );
    tb.sim.run();
    let addr = tb.server.ssds[0].lba_addr(0);
    tb.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(addr, pat);
    tb.sim.world_mut().insert(IntegrityAudit::default());
    tb
}

/// Enables only the corruption sites, at `rate` per TLP.
fn corruption_plan(tb: &mut Testbed, rate: f64) {
    tb.install_faults(|rng| {
        let mut plan = FaultPlan::new(rng);
        for site in FaultPlan::CORRUPTION_SITES {
            plan.enable(site, FaultSpec::Probability(rate));
        }
        plan
    });
}

/// One paired transfer: server reads + sends, client receives + MD5s.
fn transfer_round(tb: &mut Testbed, round: u16) -> Vec<D2dDone> {
    let flow = TcpFlow::example(1, 2, 46_000 + round, 8_000 + round);
    let server = tb.server.submit_to;
    let client = tb.client.submit_to;
    tb.run_job_batch(vec![
        (
            server,
            vec![
                D2dOp::SsdRead {
                    ssd: 0,
                    lba: 0,
                    len: LEN,
                },
                D2dOp::NicSend { flow, seq: 0 },
            ],
            "integrity-send",
        ),
        (
            client,
            vec![
                D2dOp::NicRecv {
                    flow: flow.reversed(),
                    len: LEN,
                },
                D2dOp::Process {
                    function: NdpFunction::Md5,
                    aux: vec![],
                },
            ],
            "integrity-recv",
        ),
    ])
}

#[test]
fn corruption_storm_never_delivers_wrong_bytes_as_success() {
    // The headline acceptance property: at a 1e-3 per-TLP corruption
    // rate, zero requests complete successfully with the wrong payload,
    // on every design.
    let pat = pattern();
    let expected_md5 = md5(&pat);
    let expected_fnv = fnv1a64(&pat);
    for design in DESIGNS {
        let mut tb = audit_testbed(design, 0x1_E3, &pat);
        corruption_plan(&mut tb, 0.001);
        for round in 0..10 {
            let done = transfer_round(&mut tb, round);
            for d in &done {
                if d.ok {
                    if let Some(digest) = d.digest.as_deref() {
                        assert_eq!(
                            digest,
                            expected_md5.as_slice(),
                            "{design}: job {} succeeded with wrong bytes",
                            d.id
                        );
                    }
                }
            }
        }
        let world = tb.sim.world();
        let injected: u64 = world
            .expect::<FaultPlan>()
            .tallies()
            .map(|(_, s)| s.injected)
            .sum();
        assert!(
            injected > 0,
            "{design}: a 1e-3 per-TLP storm over 10 rounds must fire"
        );
        let escapes = world.expect::<IntegrityAudit>().escapes(expected_fnv);
        assert!(
            escapes.is_empty(),
            "{design}: wrong-payload successes: {escapes:?}"
        );
    }
}

#[test]
fn every_injected_corruption_is_accounted() {
    // Conservation identity: per corruption site, every injected event
    // is attributed exactly once (recovered or exhausted), and the AER
    // log detected each one (no silent escapes while ECRC is on).
    let pat = pattern();
    let mut tb = audit_testbed(DesignUnderTest::DcsCtrl, 0xACC7, &pat);
    corruption_plan(&mut tb, 0.005);
    for round in 0..8 {
        let _ = transfer_round(&mut tb, round);
    }
    let world = tb.sim.world();
    let mut total_injected = 0;
    for (site, s) in world.expect::<FaultPlan>().tallies() {
        // Only the corruption sites obey strict per-site conservation:
        // loss-style attributions (a retransmit crediting `wire.drop`)
        // cannot tell a dropped frame from one poisoned in flight.
        if !FaultPlan::CORRUPTION_SITES.contains(&site) {
            continue;
        }
        assert_eq!(
            s.injected,
            s.recovered + s.exhausted,
            "{site}: injected {} != recovered {} + exhausted {}",
            s.injected,
            s.recovered,
            s.exhausted
        );
        total_injected += s.injected;
    }
    assert!(total_injected > 0, "storm must fire");
    assert_eq!(
        world.stats.counter_value("aer.detected"),
        total_injected,
        "every corruption must land in the AER log exactly once"
    );
    assert_eq!(
        world.stats.counter_value("aer.escape"),
        0,
        "ECRC on: no silent escapes"
    );
    let log = world.expect::<AerLog>();
    assert!(!log.entries().is_empty(), "AER entries must be retained");
    assert!(
        fault::contained_total(world) >= total_injected,
        "containment must cover at least the corruption storm"
    );
}

#[test]
fn forced_poison_fails_the_request_cleanly() {
    // Pin a single payload corruption with zero replay budget: the TLP
    // is delivered poisoned, and the request must surface as an error
    // completion — never as a success with bad bytes, never as a hang
    // (run_job_batch asserts the drain and exactly-once delivery).
    let pat = pattern();
    let expected_md5 = md5(&pat);
    let mut tb = audit_testbed(DesignUnderTest::DcsCtrl, 0xBAD, &pat);
    tb.install_faults(|rng| {
        let mut plan = FaultPlan::new(rng);
        plan.enable(fault::DMA_CORRUPT, FaultSpec::Nth(vec![0]));
        plan.recovery = RecoveryConfig::no_retries();
        plan
    });
    let done = transfer_round(&mut tb, 0);
    for d in &done {
        if d.ok {
            if let Some(digest) = d.digest.as_deref() {
                assert_eq!(
                    digest,
                    expected_md5.as_slice(),
                    "poison escaped into a success"
                );
            }
        }
    }
    let world = tb.sim.world();
    let tallies: std::collections::BTreeMap<_, _> = world.expect::<FaultPlan>().tallies().collect();
    let t = tallies[fault::DMA_CORRUPT];
    assert_eq!(t.injected, 1, "the pinned corruption must fire");
    assert_eq!(
        t.exhausted, 1,
        "no budget: the corruption is delivered poisoned"
    );
    assert!(
        world.stats.counter_value("aer.poisoned") >= 1,
        "the poisoned TLP must be logged"
    );
    assert!(
        done.iter().any(|d| !d.ok),
        "a poisoned transfer without retries must surface as an error completion"
    );
    let escapes = world.expect::<IntegrityAudit>().escapes(fnv1a64(&pat));
    assert!(escapes.is_empty(), "wrong-payload successes: {escapes:?}");
}

/// Serialized view of one storm run: completions, digests, and every
/// stats counter.
fn storm_trace(seed: u64) -> String {
    let pat = pattern();
    let mut tb = audit_testbed(DesignUnderTest::DcsCtrl, seed, &pat);
    corruption_plan(&mut tb, 0.001);
    let mut out = String::new();
    for round in 0..5 {
        let mut done = transfer_round(&mut tb, round);
        done.sort_by_key(|d| d.id);
        for d in &done {
            out.push_str(&format!(
                "job id={} ok={} len={} digest={:?}\n",
                d.id, d.ok, d.payload_len, d.digest
            ));
        }
    }
    for (name, value) in tb.sim.world().stats.iter() {
        out.push_str(&format!("stat {name}={value}\n"));
    }
    out
}

#[test]
fn double_run_same_seed_is_byte_identical_fuzzer_included() {
    // Storm runs replay byte for byte...
    let a = storm_trace(0x2EED);
    let b = storm_trace(0x2EED);
    assert!(a.contains("stat fault.injected"), "storm must fire:\n{a}");
    assert_eq!(a, b, "same-seed storm trace diverged");

    // ...and so does the whole fuzzer: same config, same search path,
    // same (absent or identical) counterexample.
    let cfg = smoke_config(true);
    let x = fuzz::fuzz(&cfg, fuzz_target);
    let y = fuzz::fuzz(&cfg, fuzz_target);
    assert_eq!(x.cases_run, y.cases_run);
    assert_eq!(x.runs, y.runs);
    match (&x.counterexample, &y.counterexample) {
        (None, None) => {}
        (Some(cx), Some(cy)) => {
            assert_eq!(cx.repro(), cy.repro(), "fuzzer counterexamples diverged");
        }
        _ => panic!("fuzzer found a counterexample in only one of two identical runs"),
    }
    assert!(
        x.counterexample.is_none(),
        "the containment stack must survive the smoke budget:\n{}",
        x.counterexample.map(|c| c.repro()).unwrap_or_default()
    );
}
