//! Cross-design integration tests through the facade crate: the same job
//! must produce identical *results* on every design, with the latency and
//! CPU ordering the paper claims.

use dcs_ctrl::host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ctrl::ndp::{md5::md5, NdpFunction};
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::{Component, ComponentId, Ctx, Msg};
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

#[derive(Default, Debug)]
struct Inbox(Vec<D2dDone>);

struct App;

#[derive(Debug)]
struct Submit {
    to: ComponentId,
    job: D2dJob,
}

impl Component for App {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Submit>() {
            Ok(Submit { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg.downcast::<D2dDone>().expect("completions");
        if ctx.world().get::<Inbox>().is_none() {
            ctx.world().insert(Inbox::default());
        }
        ctx.world().expect_mut::<Inbox>().0.push(done);
    }
}

const ALL: [DesignUnderTest; 4] = [
    DesignUnderTest::Linux,
    DesignUnderTest::SwOpt,
    DesignUnderTest::SwP2p,
    DesignUnderTest::DcsCtrl,
];

/// Runs `SSD read -> MD5 -> NIC send` on one design; returns the result
/// and total simulated latency in ns.
fn run_once(design: DesignUnderTest, payload: &[u8]) -> (D2dDone, u64) {
    let mut tb = Testbed::new(design, &TestbedConfig::default());
    let app = tb.sim.add("app", App);
    tb.sim.run();
    let addr = tb.server.ssds[0].lba_addr(0);
    tb.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(addr, payload);
    let t0 = tb.sim.now();
    let job = D2dJob {
        id: 1,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len: payload.len(),
            },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 40_000, 9_000),
                seq: 0,
            },
        ],
        reply_to: app,
        tag: "cross",
    };
    tb.sim.kickoff(
        app,
        Submit {
            to: tb.server.submit_to,
            job,
        },
    );
    tb.sim.run();
    let done = tb.sim.world().expect::<Inbox>().0[0].clone();
    (done, tb.sim.now() - t0)
}

#[test]
fn every_design_computes_the_same_digest() {
    let payload: Vec<u8> = (0..16 * 1024).map(|i| (i * 17 % 253) as u8).collect();
    let expected = md5(&payload);
    for design in ALL {
        let (done, _) = run_once(design, &payload);
        assert!(done.ok, "{design}");
        assert_eq!(
            done.digest.as_deref(),
            Some(expected.as_slice()),
            "{design} digest mismatch"
        );
    }
}

#[test]
fn latency_ordering_matches_table1() {
    let payload = vec![0xA5u8; 4096];
    let mut totals = Vec::new();
    for design in ALL {
        let (_, elapsed) = run_once(design, &payload);
        totals.push((design, elapsed));
    }
    let of = |d: DesignUnderTest| totals.iter().find(|(x, _)| *x == d).unwrap().1;
    assert!(
        of(DesignUnderTest::DcsCtrl) < of(DesignUnderTest::SwP2p),
        "{totals:?}"
    );
    assert!(
        of(DesignUnderTest::SwP2p) <= of(DesignUnderTest::SwOpt),
        "{totals:?}"
    );
    assert!(
        of(DesignUnderTest::SwOpt) < of(DesignUnderTest::Linux),
        "{totals:?}"
    );
}

#[test]
fn cache_hit_fast_path_completes_and_beats_flash_everywhere() {
    // A cache-hit GET is a `MemRead -> NicSend` pipeline: the payload
    // comes from host DRAM and the flash path is skipped entirely. On
    // every design it must complete ok with the full payload length and
    // be at least as fast as the equivalent flash read.
    let len = 64 * 1024;
    for design in ALL {
        let mut tb = Testbed::new(design, &TestbedConfig::default());
        let t0 = tb.sim.now();
        let hit = tb.run_one_job(vec![
            D2dOp::MemRead { len },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 40_000, 9_000),
                seq: 0,
            },
        ]);
        let hit_ns = tb.sim.now() - t0;
        assert!(hit.ok, "{design} cache hit must complete");
        assert_eq!(hit.payload_len, len, "{design} payload length");

        let mut tb = Testbed::new(design, &TestbedConfig::default());
        let t0 = tb.sim.now();
        let miss = tb.run_one_job(vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len,
            },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 40_000, 9_000),
                seq: 0,
            },
        ]);
        let miss_ns = tb.sim.now() - t0;
        assert!(miss.ok, "{design} flash read must complete");
        assert!(
            hit_ns < miss_ns,
            "{design}: cache hit {hit_ns} ns must beat flash {miss_ns} ns"
        );
    }
}

#[test]
fn simulation_is_deterministic_per_design() {
    let payload = vec![3u8; 8192];
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::DcsCtrl] {
        let (a, ta) = run_once(design, &payload);
        let (b, tb) = run_once(design, &payload);
        assert_eq!(ta, tb, "{design} must be deterministic");
        assert_eq!(a.breakdown, b.breakdown, "{design}");
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The facade's module structure is part of the public API surface.
    let _ = dcs_ctrl::sim::SimTime::ZERO;
    let _ = dcs_ctrl::pcie::PhysAddr::ZERO;
    let _ = dcs_ctrl::ndp::NdpFunction::Md5;
    let _ = dcs_ctrl::core::resources::TABLE4_ENGINE;
    assert_eq!(dcs_ctrl::nvme::LBA_SIZE, 4096);
}
