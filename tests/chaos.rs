//! Chaos suite: randomized fault storms across every injection site
//! (wire drops, wire bit-corruption, NVMe media errors, PCIe replays,
//! MSI loss) must leave all three designs live — the simulation drains,
//! every job completes exactly once (ok or error, never neither),
//! payload integrity holds on successful transfers, and no engine
//! buffer chunks leak. With retries disabled, faults surface as error
//! completions rather than panics or hangs.

use dcs_ctrl::host::job::{D2dDone, D2dOp};
use dcs_ctrl::ndp::{md5::md5, NdpFunction};
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::{FaultPlan, RecoveryConfig, SimTime};
use dcs_ctrl::workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

const DESIGNS: [DesignUnderTest; 3] = [
    DesignUnderTest::SwOpt,
    DesignUnderTest::SwP2p,
    DesignUnderTest::DcsCtrl,
];

/// Small enough that a 1 %/frame drop rate leaves each attempt a good
/// chance of landing clean (go-back-N retransmits whole sends).
const LEN: usize = 16 * 1024;

fn pattern() -> Vec<u8> {
    (0..LEN)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

fn storm_testbed(design: DesignUnderTest, seed: u64, pat: &[u8]) -> Testbed {
    let mut tb = Testbed::new(
        design,
        &TestbedConfig {
            seed,
            ..Default::default()
        },
    );
    tb.sim.run(); // settle bring-up before touching flash
    let addr = tb.server.ssds[0].lba_addr(0);
    tb.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(addr, pat);
    tb
}

/// One round: the server reads the pattern off flash and sends it; the
/// client receives and hashes it. Fresh ports per round keep the rounds'
/// reliability streams independent. Returns `(server_done, client_done)`.
fn transfer_round(tb: &mut Testbed, round: u16) -> (D2dDone, D2dDone) {
    let flow = TcpFlow::example(1, 2, 41_000 + round, 9_000 + round);
    let server = tb.server.submit_to;
    let client = tb.client.submit_to;
    let mut done = tb.run_job_batch(vec![
        (
            server,
            vec![
                D2dOp::SsdRead {
                    ssd: 0,
                    lba: 0,
                    len: LEN,
                },
                D2dOp::NicSend { flow, seq: 0 },
            ],
            "chaos-send",
        ),
        (
            client,
            vec![
                D2dOp::NicRecv {
                    flow: flow.reversed(),
                    len: LEN,
                },
                D2dOp::Process {
                    function: NdpFunction::Md5,
                    aux: vec![],
                },
            ],
            "chaos-recv",
        ),
    ]);
    // Batch ids are sequential: the lower id is the server job.
    done.sort_by_key(|d| d.id);
    let client_done = done.pop().expect("two completions");
    let server_done = done.pop().expect("two completions");
    (server_done, client_done)
}

#[test]
fn chaos_storm_recovers_on_every_design() {
    let pat = pattern();
    let expected = md5(&pat);
    for design in DESIGNS {
        let mut tb = storm_testbed(design, 0xC4A05, &pat);
        tb.install_faults(|rng| FaultPlan::uniform(0.01, rng));
        let mut ok_rounds = 0;
        for round in 0..8 {
            let (s, c) = transfer_round(&mut tb, round);
            if s.ok && c.ok {
                ok_rounds += 1;
                assert_eq!(
                    c.digest.as_deref(),
                    Some(expected.as_slice()),
                    "{design}: payload corrupted in transit"
                );
            }
        }
        let injected = tb.sim.world().stats.counter_value("fault.injected");
        assert!(injected > 0, "{design}: the storm must actually fire");
        assert!(
            ok_rounds >= 4,
            "{design}: recovery must save most rounds ({ok_rounds}/8 ok, {injected} faults)"
        );
    }
}

#[test]
fn with_retries_disabled_faults_surface_as_error_completions() {
    // run_job_batch asserts the drain and exactly-once properties; the
    // rounds themselves may fail (that is the point) but must never
    // panic or wedge the simulation.
    let pat = pattern();
    for design in DESIGNS {
        let mut tb = storm_testbed(design, 0x99B1, &pat);
        tb.install_faults(|rng| {
            let mut plan = FaultPlan::uniform(0.02, rng);
            plan.recovery = RecoveryConfig::no_retries();
            plan
        });
        for round in 0..6 {
            let _ = transfer_round(&mut tb, round);
        }
        let injected = tb.sim.world().stats.counter_value("fault.injected");
        assert!(injected > 0, "{design}: the storm must actually fire");
    }
}

#[test]
fn chaos_does_not_leak_engine_buffers() {
    let pat = pattern();
    let mut tb = storm_testbed(DesignUnderTest::DcsCtrl, 5, &pat);
    tb.install_faults(|rng| FaultPlan::uniform(0.01, rng));
    for round in 0..6 {
        let _ = transfer_round(&mut tb, round);
    }
    // Retire the storm before the probe: ECRC draws per TLP, so a 4 MiB
    // read under a live 1% storm would fail on corruption alone and mask
    // what this test is about. An empty plan keeps recovery timers armed
    // but fires nothing.
    tb.install_faults(FaultPlan::new);
    // Every chunk must have come back to the allocator: a command that
    // needs a large slice of the pool still succeeds.
    let done = tb.run_one_job(vec![
        D2dOp::SsdRead {
            ssd: 0,
            lba: 0,
            len: 4 << 20,
        },
        D2dOp::Process {
            function: NdpFunction::Crc32,
            aux: vec![],
        },
    ]);
    assert!(done.ok, "chunks leaked under the storm");
}

/// Completion sequence, fault tallies, and final simulated time of a
/// fixed storm on DCS-ctrl.
fn storm_trace(seed: u64) -> (Vec<(u64, bool)>, Vec<u64>, u64) {
    let pat = pattern();
    let mut tb = storm_testbed(DesignUnderTest::DcsCtrl, seed, &pat);
    tb.install_faults(|rng| FaultPlan::uniform(0.02, rng));
    let mut seq = Vec::new();
    for round in 0..5 {
        let (s, c) = transfer_round(&mut tb, round);
        seq.push((s.id, s.ok));
        seq.push((c.id, c.ok));
    }
    let tallies = [
        "fault.injected",
        "fault.recovered",
        "fault.exhausted",
        "retry.count",
    ]
    .iter()
    .map(|k| tb.sim.world().stats.counter_value(k))
    .collect();
    (seq, tallies, tb.sim.now() - SimTime::ZERO)
}

#[test]
fn fault_storms_are_seed_reproducible() {
    let a = storm_trace(42);
    let b = storm_trace(42);
    assert_eq!(
        a, b,
        "same seed + plan must reproduce the identical outcome"
    );
    let c = storm_trace(43);
    assert_ne!(
        a, c,
        "a different seed must draw a different fault sequence"
    );
}
