(function() {
    const implementors = Object.fromEntries([["dcs_pcie",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"dcs_pcie/addr/struct.PhysAddr.html\" title=\"struct dcs_pcie::addr::PhysAddr\">PhysAddr</a>",0]]],["dcs_sim",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"dcs_sim/time/struct.SimTime.html\" title=\"struct dcs_sim::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[285,280]}