(function() {
    const implementors = Object.fromEntries([["dcs_pcie",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/fmt/trait.LowerHex.html\" title=\"trait core::fmt::LowerHex\">LowerHex</a> for <a class=\"struct\" href=\"dcs_pcie/addr/struct.PhysAddr.html\" title=\"struct dcs_pcie::addr::PhysAddr\">PhysAddr</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[287]}