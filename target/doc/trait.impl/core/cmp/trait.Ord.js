(function() {
    const implementors = Object.fromEntries([["dcs_pcie",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"dcs_pcie/addr/struct.PhysAddr.html\" title=\"struct dcs_pcie::addr::PhysAddr\">PhysAddr</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"dcs_pcie/mem/struct.PortId.html\" title=\"struct dcs_pcie::mem::PortId\">PortId</a>",0]]],["dcs_sim",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"enum\" href=\"dcs_sim/trace/enum.Category.html\" title=\"enum dcs_sim::trace::Category\">Category</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"dcs_sim/component/struct.ComponentId.html\" title=\"struct dcs_sim::component::ComponentId\">ComponentId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"dcs_sim/time/struct.SimTime.html\" title=\"struct dcs_sim::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[522,794]}