/root/repo/target/release/deps/dcs_sim-f716bf235103e28c.d: crates/sim/src/lib.rs crates/sim/src/component.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/world.rs

/root/repo/target/release/deps/dcs_sim-f716bf235103e28c: crates/sim/src/lib.rs crates/sim/src/component.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/component.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
crates/sim/src/world.rs:
