/root/repo/target/release/deps/dcs_pcie-96102d586c233108.d: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/release/deps/dcs_pcie-96102d586c233108: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

crates/pcie/src/lib.rs:
crates/pcie/src/addr.rs:
crates/pcie/src/config.rs:
crates/pcie/src/fabric.rs:
crates/pcie/src/mem.rs:
crates/pcie/src/routing.rs:
