/root/repo/target/release/deps/dcs_pcie-471226d6c3920a6e.d: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/release/deps/libdcs_pcie-471226d6c3920a6e.rlib: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/release/deps/libdcs_pcie-471226d6c3920a6e.rmeta: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

crates/pcie/src/lib.rs:
crates/pcie/src/addr.rs:
crates/pcie/src/config.rs:
crates/pcie/src/fabric.rs:
crates/pcie/src/mem.rs:
crates/pcie/src/routing.rs:
