/root/repo/target/release/deps/dcs_ndp-0a7e307b61b7c9da.d: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs

/root/repo/target/release/deps/libdcs_ndp-0a7e307b61b7c9da.rlib: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs

/root/repo/target/release/deps/libdcs_ndp-0a7e307b61b7c9da.rmeta: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs

crates/ndp/src/lib.rs:
crates/ndp/src/aes.rs:
crates/ndp/src/crc32.rs:
crates/ndp/src/deflate.rs:
crates/ndp/src/function.rs:
crates/ndp/src/md5.rs:
crates/ndp/src/sha1.rs:
crates/ndp/src/sha256.rs:
