/root/repo/target/release/deps/dcs_nic-ce30df9282521f40.d: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/release/deps/libdcs_nic-ce30df9282521f40.rlib: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/release/deps/libdcs_nic-ce30df9282521f40.rmeta: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

crates/nic/src/lib.rs:
crates/nic/src/device.rs:
crates/nic/src/headers.rs:
crates/nic/src/ring.rs:
crates/nic/src/wire.rs:
