/root/repo/target/release/deps/dcs_nvme-ed7431320b756ede.d: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/release/deps/libdcs_nvme-ed7431320b756ede.rlib: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/release/deps/libdcs_nvme-ed7431320b756ede.rmeta: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

crates/nvme/src/lib.rs:
crates/nvme/src/device.rs:
crates/nvme/src/queue.rs:
crates/nvme/src/spec.rs:
