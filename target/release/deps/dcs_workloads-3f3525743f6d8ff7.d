/root/repo/target/release/deps/dcs_workloads-3f3525743f6d8ff7.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

/root/repo/target/release/deps/libdcs_workloads-3f3525743f6d8ff7.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

/root/repo/target/release/deps/libdcs_workloads-3f3525743f6d8ff7.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/hdfs.rs:
crates/workloads/src/projection.rs:
crates/workloads/src/report.rs:
crates/workloads/src/scenario.rs:
crates/workloads/src/swift.rs:
