/root/repo/target/release/deps/properties-adf9ad3acaad0031.d: crates/ndp/tests/properties.rs

/root/repo/target/release/deps/properties-adf9ad3acaad0031: crates/ndp/tests/properties.rs

crates/ndp/tests/properties.rs:
