/root/repo/target/release/deps/dcs_host-33573bad0bdefd48.d: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs

/root/repo/target/release/deps/libdcs_host-33573bad0bdefd48.rlib: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs

/root/repo/target/release/deps/libdcs_host-33573bad0bdefd48.rmeta: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs

crates/host/src/lib.rs:
crates/host/src/costs.rs:
crates/host/src/cpu.rs:
crates/host/src/executor.rs:
crates/host/src/gpu_driver.rs:
crates/host/src/integration.rs:
crates/host/src/job.rs:
crates/host/src/nic_driver.rs:
crates/host/src/node.rs:
crates/host/src/nvme_driver.rs:
