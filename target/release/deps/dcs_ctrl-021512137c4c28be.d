/root/repo/target/release/deps/dcs_ctrl-021512137c4c28be.d: src/lib.rs

/root/repo/target/release/deps/libdcs_ctrl-021512137c4c28be.rlib: src/lib.rs

/root/repo/target/release/deps/libdcs_ctrl-021512137c4c28be.rmeta: src/lib.rs

src/lib.rs:
