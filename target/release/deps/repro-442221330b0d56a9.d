/root/repo/target/release/deps/repro-442221330b0d56a9.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-442221330b0d56a9: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
