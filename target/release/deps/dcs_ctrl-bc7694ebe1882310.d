/root/repo/target/release/deps/dcs_ctrl-bc7694ebe1882310.d: src/lib.rs

/root/repo/target/release/deps/dcs_ctrl-bc7694ebe1882310: src/lib.rs

src/lib.rs:
