/root/repo/target/release/deps/dcs_core-87f71f0d98ac6b46.d: crates/core/src/lib.rs crates/core/src/buffers.rs crates/core/src/command.rs crates/core/src/driver.rs crates/core/src/engine.rs crates/core/src/lib_api.rs crates/core/src/ndp_unit.rs crates/core/src/node.rs crates/core/src/resources.rs crates/core/src/scoreboard.rs

/root/repo/target/release/deps/dcs_core-87f71f0d98ac6b46: crates/core/src/lib.rs crates/core/src/buffers.rs crates/core/src/command.rs crates/core/src/driver.rs crates/core/src/engine.rs crates/core/src/lib_api.rs crates/core/src/ndp_unit.rs crates/core/src/node.rs crates/core/src/resources.rs crates/core/src/scoreboard.rs

crates/core/src/lib.rs:
crates/core/src/buffers.rs:
crates/core/src/command.rs:
crates/core/src/driver.rs:
crates/core/src/engine.rs:
crates/core/src/lib_api.rs:
crates/core/src/ndp_unit.rs:
crates/core/src/node.rs:
crates/core/src/resources.rs:
crates/core/src/scoreboard.rs:
