/root/repo/target/release/deps/repro-b7dc9dc5f2234f94.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-b7dc9dc5f2234f94: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
