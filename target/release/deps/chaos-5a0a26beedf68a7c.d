/root/repo/target/release/deps/chaos-5a0a26beedf68a7c.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-5a0a26beedf68a7c: tests/chaos.rs

tests/chaos.rs:
