/root/repo/target/release/deps/dcs_gpu-f3674338b5b3fd89.d: crates/gpu/src/lib.rs

/root/repo/target/release/deps/dcs_gpu-f3674338b5b3fd89: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
