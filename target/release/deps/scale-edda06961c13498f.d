/root/repo/target/release/deps/scale-edda06961c13498f.d: tests/scale.rs

/root/repo/target/release/deps/scale-edda06961c13498f: tests/scale.rs

tests/scale.rs:
