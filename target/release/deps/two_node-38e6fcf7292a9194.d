/root/repo/target/release/deps/two_node-38e6fcf7292a9194.d: crates/nic/tests/two_node.rs

/root/repo/target/release/deps/two_node-38e6fcf7292a9194: crates/nic/tests/two_node.rs

crates/nic/tests/two_node.rs:
