/root/repo/target/release/deps/dcs_nvme-15838bc1df90f974.d: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/release/deps/dcs_nvme-15838bc1df90f974: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

crates/nvme/src/lib.rs:
crates/nvme/src/device.rs:
crates/nvme/src/queue.rs:
crates/nvme/src/spec.rs:
