/root/repo/target/release/deps/fault_injection-8edacdf5c04f9f2b.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-8edacdf5c04f9f2b: tests/fault_injection.rs

tests/fault_injection.rs:
