/root/repo/target/release/deps/dcs_cluster-35b93ba266f18a20.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/release/deps/libdcs_cluster-35b93ba266f18a20.rlib: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/release/deps/libdcs_cluster-35b93ba266f18a20.rmeta: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/report.rs:
crates/cluster/src/shard.rs:
crates/cluster/src/switch.rs:
