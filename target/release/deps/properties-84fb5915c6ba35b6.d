/root/repo/target/release/deps/properties-84fb5915c6ba35b6.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-84fb5915c6ba35b6: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
