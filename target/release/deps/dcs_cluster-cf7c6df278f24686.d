/root/repo/target/release/deps/dcs_cluster-cf7c6df278f24686.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/release/deps/dcs_cluster-cf7c6df278f24686: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/report.rs:
crates/cluster/src/shard.rs:
crates/cluster/src/switch.rs:
