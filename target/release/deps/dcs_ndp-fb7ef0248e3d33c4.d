/root/repo/target/release/deps/dcs_ndp-fb7ef0248e3d33c4.d: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs crates/ndp/src/../tests/data/dynamic.deflate crates/ndp/src/../tests/data/dynamic.raw crates/ndp/src/../tests/data/lorem.gz

/root/repo/target/release/deps/dcs_ndp-fb7ef0248e3d33c4: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs crates/ndp/src/../tests/data/dynamic.deflate crates/ndp/src/../tests/data/dynamic.raw crates/ndp/src/../tests/data/lorem.gz

crates/ndp/src/lib.rs:
crates/ndp/src/aes.rs:
crates/ndp/src/crc32.rs:
crates/ndp/src/deflate.rs:
crates/ndp/src/function.rs:
crates/ndp/src/md5.rs:
crates/ndp/src/sha1.rs:
crates/ndp/src/sha256.rs:
crates/ndp/src/../tests/data/dynamic.deflate:
crates/ndp/src/../tests/data/dynamic.raw:
crates/ndp/src/../tests/data/lorem.gz:
