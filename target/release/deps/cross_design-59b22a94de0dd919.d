/root/repo/target/release/deps/cross_design-59b22a94de0dd919.d: tests/cross_design.rs

/root/repo/target/release/deps/cross_design-59b22a94de0dd919: tests/cross_design.rs

tests/cross_design.rs:
