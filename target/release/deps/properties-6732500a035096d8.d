/root/repo/target/release/deps/properties-6732500a035096d8.d: crates/nic/tests/properties.rs

/root/repo/target/release/deps/properties-6732500a035096d8: crates/nic/tests/properties.rs

crates/nic/tests/properties.rs:
