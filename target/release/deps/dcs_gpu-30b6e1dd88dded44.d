/root/repo/target/release/deps/dcs_gpu-30b6e1dd88dded44.d: crates/gpu/src/lib.rs

/root/repo/target/release/deps/libdcs_gpu-30b6e1dd88dded44.rlib: crates/gpu/src/lib.rs

/root/repo/target/release/deps/libdcs_gpu-30b6e1dd88dded44.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
