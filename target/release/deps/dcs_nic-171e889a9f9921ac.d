/root/repo/target/release/deps/dcs_nic-171e889a9f9921ac.d: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/release/deps/dcs_nic-171e889a9f9921ac: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

crates/nic/src/lib.rs:
crates/nic/src/device.rs:
crates/nic/src/headers.rs:
crates/nic/src/ring.rs:
crates/nic/src/wire.rs:
