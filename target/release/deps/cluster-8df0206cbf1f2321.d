/root/repo/target/release/deps/cluster-8df0206cbf1f2321.d: tests/cluster.rs

/root/repo/target/release/deps/cluster-8df0206cbf1f2321: tests/cluster.rs

tests/cluster.rs:
