/root/repo/target/release/deps/baselines-fdab620da88b59bd.d: crates/host/tests/baselines.rs

/root/repo/target/release/deps/baselines-fdab620da88b59bd: crates/host/tests/baselines.rs

crates/host/tests/baselines.rs:
