/root/repo/target/release/deps/dcs_host-0e24064351ec2793.d: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs

/root/repo/target/release/deps/dcs_host-0e24064351ec2793: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs

crates/host/src/lib.rs:
crates/host/src/costs.rs:
crates/host/src/cpu.rs:
crates/host/src/executor.rs:
crates/host/src/gpu_driver.rs:
crates/host/src/integration.rs:
crates/host/src/job.rs:
crates/host/src/nic_driver.rs:
crates/host/src/node.rs:
crates/host/src/nvme_driver.rs:
