/root/repo/target/release/deps/dcs_workloads-0de66465a873f182.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

/root/repo/target/release/deps/dcs_workloads-0de66465a873f182: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/hdfs.rs:
crates/workloads/src/projection.rs:
crates/workloads/src/report.rs:
crates/workloads/src/scenario.rs:
crates/workloads/src/swift.rs:
