/root/repo/target/release/deps/dcs_ctrl-e542cd2f520657bc.d: src/lib.rs

/root/repo/target/release/deps/libdcs_ctrl-e542cd2f520657bc.rlib: src/lib.rs

/root/repo/target/release/deps/libdcs_ctrl-e542cd2f520657bc.rmeta: src/lib.rs

src/lib.rs:
