/root/repo/target/release/deps/repro-dff50bcbb5681ead.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-dff50bcbb5681ead: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
