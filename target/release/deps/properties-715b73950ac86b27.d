/root/repo/target/release/deps/properties-715b73950ac86b27.d: crates/sim/tests/properties.rs

/root/repo/target/release/deps/properties-715b73950ac86b27: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
