/root/repo/target/release/deps/engine_e2e-eabc43bf1872ea28.d: crates/core/tests/engine_e2e.rs

/root/repo/target/release/deps/engine_e2e-eabc43bf1872ea28: crates/core/tests/engine_e2e.rs

crates/core/tests/engine_e2e.rs:
