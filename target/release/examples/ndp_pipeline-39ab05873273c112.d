/root/repo/target/release/examples/ndp_pipeline-39ab05873273c112.d: examples/ndp_pipeline.rs

/root/repo/target/release/examples/ndp_pipeline-39ab05873273c112: examples/ndp_pipeline.rs

examples/ndp_pipeline.rs:
