/root/repo/target/release/examples/quickstart-44d9f40f766bc730.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-44d9f40f766bc730: examples/quickstart.rs

examples/quickstart.rs:
