/root/repo/target/release/examples/latency_anatomy-085bfa8db9d31570.d: examples/latency_anatomy.rs

/root/repo/target/release/examples/latency_anatomy-085bfa8db9d31570: examples/latency_anatomy.rs

examples/latency_anatomy.rs:
