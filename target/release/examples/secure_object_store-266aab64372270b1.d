/root/repo/target/release/examples/secure_object_store-266aab64372270b1.d: examples/secure_object_store.rs

/root/repo/target/release/examples/secure_object_store-266aab64372270b1: examples/secure_object_store.rs

examples/secure_object_store.rs:
