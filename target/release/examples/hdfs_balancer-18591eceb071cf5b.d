/root/repo/target/release/examples/hdfs_balancer-18591eceb071cf5b.d: examples/hdfs_balancer.rs

/root/repo/target/release/examples/hdfs_balancer-18591eceb071cf5b: examples/hdfs_balancer.rs

examples/hdfs_balancer.rs:
