/root/repo/target/release/examples/probe-4cbdc53482342d88.d: crates/cluster/examples/probe.rs

/root/repo/target/release/examples/probe-4cbdc53482342d88: crates/cluster/examples/probe.rs

crates/cluster/examples/probe.rs:
