/root/repo/target/debug/deps/dcs_sim-0f65c3424a48a594.d: crates/sim/src/lib.rs crates/sim/src/component.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/libdcs_sim-0f65c3424a48a594.rmeta: crates/sim/src/lib.rs crates/sim/src/component.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/component.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
crates/sim/src/world.rs:
