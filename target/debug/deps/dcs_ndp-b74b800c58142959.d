/root/repo/target/debug/deps/dcs_ndp-b74b800c58142959.d: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_ndp-b74b800c58142959.rmeta: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs Cargo.toml

crates/ndp/src/lib.rs:
crates/ndp/src/aes.rs:
crates/ndp/src/crc32.rs:
crates/ndp/src/deflate.rs:
crates/ndp/src/function.rs:
crates/ndp/src/md5.rs:
crates/ndp/src/sha1.rs:
crates/ndp/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
