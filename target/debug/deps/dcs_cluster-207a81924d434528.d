/root/repo/target/debug/deps/dcs_cluster-207a81924d434528.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_cluster-207a81924d434528.rmeta: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/report.rs:
crates/cluster/src/shard.rs:
crates/cluster/src/switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
