/root/repo/target/debug/deps/dcs_gpu-63a9c949ce0c3198.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libdcs_gpu-63a9c949ce0c3198.rlib: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libdcs_gpu-63a9c949ce0c3198.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
