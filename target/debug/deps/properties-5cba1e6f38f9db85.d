/root/repo/target/debug/deps/properties-5cba1e6f38f9db85.d: crates/ndp/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5cba1e6f38f9db85.rmeta: crates/ndp/tests/properties.rs Cargo.toml

crates/ndp/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
