/root/repo/target/debug/deps/dcs_core-1772073d5eec8f70.d: crates/core/src/lib.rs crates/core/src/buffers.rs crates/core/src/command.rs crates/core/src/driver.rs crates/core/src/engine.rs crates/core/src/lib_api.rs crates/core/src/ndp_unit.rs crates/core/src/node.rs crates/core/src/resources.rs crates/core/src/scoreboard.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_core-1772073d5eec8f70.rmeta: crates/core/src/lib.rs crates/core/src/buffers.rs crates/core/src/command.rs crates/core/src/driver.rs crates/core/src/engine.rs crates/core/src/lib_api.rs crates/core/src/ndp_unit.rs crates/core/src/node.rs crates/core/src/resources.rs crates/core/src/scoreboard.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/buffers.rs:
crates/core/src/command.rs:
crates/core/src/driver.rs:
crates/core/src/engine.rs:
crates/core/src/lib_api.rs:
crates/core/src/ndp_unit.rs:
crates/core/src/node.rs:
crates/core/src/resources.rs:
crates/core/src/scoreboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
