/root/repo/target/debug/deps/dcs_gpu-3fe996362e596a5a.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libdcs_gpu-3fe996362e596a5a.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
