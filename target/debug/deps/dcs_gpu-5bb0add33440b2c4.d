/root/repo/target/debug/deps/dcs_gpu-5bb0add33440b2c4.d: crates/gpu/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_gpu-5bb0add33440b2c4.rmeta: crates/gpu/src/lib.rs Cargo.toml

crates/gpu/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
