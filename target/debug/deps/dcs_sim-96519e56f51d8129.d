/root/repo/target/debug/deps/dcs_sim-96519e56f51d8129.d: crates/sim/src/lib.rs crates/sim/src/component.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_sim-96519e56f51d8129.rmeta: crates/sim/src/lib.rs crates/sim/src/component.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs crates/sim/src/world.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/component.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
crates/sim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
