/root/repo/target/debug/deps/baselines-5503362236129851.d: crates/host/tests/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-5503362236129851.rmeta: crates/host/tests/baselines.rs Cargo.toml

crates/host/tests/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
