/root/repo/target/debug/deps/dcs_workloads-861e4084a7beccea.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

/root/repo/target/debug/deps/dcs_workloads-861e4084a7beccea: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/hdfs.rs:
crates/workloads/src/projection.rs:
crates/workloads/src/report.rs:
crates/workloads/src/scenario.rs:
crates/workloads/src/swift.rs:
