/root/repo/target/debug/deps/dcs_host-1725460321f85b32.d: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_host-1725460321f85b32.rmeta: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs Cargo.toml

crates/host/src/lib.rs:
crates/host/src/costs.rs:
crates/host/src/cpu.rs:
crates/host/src/executor.rs:
crates/host/src/gpu_driver.rs:
crates/host/src/integration.rs:
crates/host/src/job.rs:
crates/host/src/nic_driver.rs:
crates/host/src/node.rs:
crates/host/src/nvme_driver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
