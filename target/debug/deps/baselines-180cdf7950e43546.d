/root/repo/target/debug/deps/baselines-180cdf7950e43546.d: crates/host/tests/baselines.rs

/root/repo/target/debug/deps/baselines-180cdf7950e43546: crates/host/tests/baselines.rs

crates/host/tests/baselines.rs:
