/root/repo/target/debug/deps/properties-7b3718233f67d13d.d: crates/nic/tests/properties.rs

/root/repo/target/debug/deps/properties-7b3718233f67d13d: crates/nic/tests/properties.rs

crates/nic/tests/properties.rs:
