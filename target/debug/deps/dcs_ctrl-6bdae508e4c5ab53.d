/root/repo/target/debug/deps/dcs_ctrl-6bdae508e4c5ab53.d: src/lib.rs

/root/repo/target/debug/deps/dcs_ctrl-6bdae508e4c5ab53: src/lib.rs

src/lib.rs:
