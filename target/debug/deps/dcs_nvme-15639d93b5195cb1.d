/root/repo/target/debug/deps/dcs_nvme-15639d93b5195cb1.d: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_nvme-15639d93b5195cb1.rmeta: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs Cargo.toml

crates/nvme/src/lib.rs:
crates/nvme/src/device.rs:
crates/nvme/src/queue.rs:
crates/nvme/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
