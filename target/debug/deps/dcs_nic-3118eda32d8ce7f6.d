/root/repo/target/debug/deps/dcs_nic-3118eda32d8ce7f6.d: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/debug/deps/dcs_nic-3118eda32d8ce7f6: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

crates/nic/src/lib.rs:
crates/nic/src/device.rs:
crates/nic/src/headers.rs:
crates/nic/src/ring.rs:
crates/nic/src/wire.rs:
