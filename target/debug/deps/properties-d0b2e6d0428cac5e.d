/root/repo/target/debug/deps/properties-d0b2e6d0428cac5e.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-d0b2e6d0428cac5e: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
