/root/repo/target/debug/deps/fault_injection-5555ad393bd16d3b.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-5555ad393bd16d3b: tests/fault_injection.rs

tests/fault_injection.rs:
