/root/repo/target/debug/deps/properties-5199048990fe2d31.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-5199048990fe2d31: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
