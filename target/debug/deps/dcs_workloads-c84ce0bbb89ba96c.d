/root/repo/target/debug/deps/dcs_workloads-c84ce0bbb89ba96c.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_workloads-c84ce0bbb89ba96c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/hdfs.rs:
crates/workloads/src/projection.rs:
crates/workloads/src/report.rs:
crates/workloads/src/scenario.rs:
crates/workloads/src/swift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
