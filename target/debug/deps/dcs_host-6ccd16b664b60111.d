/root/repo/target/debug/deps/dcs_host-6ccd16b664b60111.d: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs

/root/repo/target/debug/deps/libdcs_host-6ccd16b664b60111.rmeta: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs

crates/host/src/lib.rs:
crates/host/src/costs.rs:
crates/host/src/cpu.rs:
crates/host/src/executor.rs:
crates/host/src/gpu_driver.rs:
crates/host/src/integration.rs:
crates/host/src/job.rs:
crates/host/src/nic_driver.rs:
crates/host/src/node.rs:
crates/host/src/nvme_driver.rs:
