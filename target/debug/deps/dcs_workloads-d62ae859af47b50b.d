/root/repo/target/debug/deps/dcs_workloads-d62ae859af47b50b.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

/root/repo/target/debug/deps/libdcs_workloads-d62ae859af47b50b.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

/root/repo/target/debug/deps/libdcs_workloads-d62ae859af47b50b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/hdfs.rs:
crates/workloads/src/projection.rs:
crates/workloads/src/report.rs:
crates/workloads/src/scenario.rs:
crates/workloads/src/swift.rs:
