/root/repo/target/debug/deps/properties-5614be9afb31bcf4.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5614be9afb31bcf4.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
