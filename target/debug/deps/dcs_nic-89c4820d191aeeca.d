/root/repo/target/debug/deps/dcs_nic-89c4820d191aeeca.d: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/debug/deps/libdcs_nic-89c4820d191aeeca.rmeta: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

crates/nic/src/lib.rs:
crates/nic/src/device.rs:
crates/nic/src/headers.rs:
crates/nic/src/ring.rs:
crates/nic/src/wire.rs:
