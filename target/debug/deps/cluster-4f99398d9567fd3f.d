/root/repo/target/debug/deps/cluster-4f99398d9567fd3f.d: tests/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-4f99398d9567fd3f.rmeta: tests/cluster.rs Cargo.toml

tests/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
