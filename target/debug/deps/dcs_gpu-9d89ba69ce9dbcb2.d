/root/repo/target/debug/deps/dcs_gpu-9d89ba69ce9dbcb2.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/dcs_gpu-9d89ba69ce9dbcb2: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
