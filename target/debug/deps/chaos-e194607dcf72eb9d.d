/root/repo/target/debug/deps/chaos-e194607dcf72eb9d.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-e194607dcf72eb9d: tests/chaos.rs

tests/chaos.rs:
