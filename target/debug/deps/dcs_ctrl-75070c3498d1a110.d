/root/repo/target/debug/deps/dcs_ctrl-75070c3498d1a110.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_ctrl-75070c3498d1a110.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
