/root/repo/target/debug/deps/dcs_ctrl-60b1a044e770ecfb.d: src/lib.rs

/root/repo/target/debug/deps/libdcs_ctrl-60b1a044e770ecfb.rlib: src/lib.rs

/root/repo/target/debug/deps/libdcs_ctrl-60b1a044e770ecfb.rmeta: src/lib.rs

src/lib.rs:
