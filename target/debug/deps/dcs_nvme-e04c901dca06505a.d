/root/repo/target/debug/deps/dcs_nvme-e04c901dca06505a.d: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/debug/deps/dcs_nvme-e04c901dca06505a: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

crates/nvme/src/lib.rs:
crates/nvme/src/device.rs:
crates/nvme/src/queue.rs:
crates/nvme/src/spec.rs:
