/root/repo/target/debug/deps/dcs_nic-10735753061cac59.d: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_nic-10735753061cac59.rmeta: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs Cargo.toml

crates/nic/src/lib.rs:
crates/nic/src/device.rs:
crates/nic/src/headers.rs:
crates/nic/src/ring.rs:
crates/nic/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
