/root/repo/target/debug/deps/two_node-66ec26bf3749bfa2.d: crates/nic/tests/two_node.rs Cargo.toml

/root/repo/target/debug/deps/libtwo_node-66ec26bf3749bfa2.rmeta: crates/nic/tests/two_node.rs Cargo.toml

crates/nic/tests/two_node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
