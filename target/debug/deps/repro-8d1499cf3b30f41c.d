/root/repo/target/debug/deps/repro-8d1499cf3b30f41c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-8d1499cf3b30f41c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
