/root/repo/target/debug/deps/dcs_nvme-941f3cc30924c123.d: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/debug/deps/libdcs_nvme-941f3cc30924c123.rlib: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/debug/deps/libdcs_nvme-941f3cc30924c123.rmeta: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

crates/nvme/src/lib.rs:
crates/nvme/src/device.rs:
crates/nvme/src/queue.rs:
crates/nvme/src/spec.rs:
