/root/repo/target/debug/deps/dcs_pcie-d7b173201c4482b2.d: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/debug/deps/dcs_pcie-d7b173201c4482b2: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

crates/pcie/src/lib.rs:
crates/pcie/src/addr.rs:
crates/pcie/src/config.rs:
crates/pcie/src/fabric.rs:
crates/pcie/src/mem.rs:
crates/pcie/src/routing.rs:
