/root/repo/target/debug/deps/dcs_ndp-cbd71197ee91efcd.d: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs crates/ndp/src/../tests/data/dynamic.deflate crates/ndp/src/../tests/data/dynamic.raw crates/ndp/src/../tests/data/lorem.gz Cargo.toml

/root/repo/target/debug/deps/libdcs_ndp-cbd71197ee91efcd.rmeta: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs crates/ndp/src/../tests/data/dynamic.deflate crates/ndp/src/../tests/data/dynamic.raw crates/ndp/src/../tests/data/lorem.gz Cargo.toml

crates/ndp/src/lib.rs:
crates/ndp/src/aes.rs:
crates/ndp/src/crc32.rs:
crates/ndp/src/deflate.rs:
crates/ndp/src/function.rs:
crates/ndp/src/md5.rs:
crates/ndp/src/sha1.rs:
crates/ndp/src/sha256.rs:
crates/ndp/src/../tests/data/dynamic.deflate:
crates/ndp/src/../tests/data/dynamic.raw:
crates/ndp/src/../tests/data/lorem.gz:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
