/root/repo/target/debug/deps/chaos-003e428efad49ec2.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-003e428efad49ec2.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
