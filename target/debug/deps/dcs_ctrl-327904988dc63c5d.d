/root/repo/target/debug/deps/dcs_ctrl-327904988dc63c5d.d: src/lib.rs

/root/repo/target/debug/deps/dcs_ctrl-327904988dc63c5d: src/lib.rs

src/lib.rs:
