/root/repo/target/debug/deps/dcs_workloads-797b21d57544f200.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

/root/repo/target/debug/deps/libdcs_workloads-797b21d57544f200.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/hdfs.rs crates/workloads/src/projection.rs crates/workloads/src/report.rs crates/workloads/src/scenario.rs crates/workloads/src/swift.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/hdfs.rs:
crates/workloads/src/projection.rs:
crates/workloads/src/report.rs:
crates/workloads/src/scenario.rs:
crates/workloads/src/swift.rs:
