/root/repo/target/debug/deps/engine_e2e-f1ecd4d264f6d3eb.d: crates/core/tests/engine_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libengine_e2e-f1ecd4d264f6d3eb.rmeta: crates/core/tests/engine_e2e.rs Cargo.toml

crates/core/tests/engine_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
