/root/repo/target/debug/deps/engine_e2e-8a6eddba01470558.d: crates/core/tests/engine_e2e.rs

/root/repo/target/debug/deps/engine_e2e-8a6eddba01470558: crates/core/tests/engine_e2e.rs

crates/core/tests/engine_e2e.rs:
