/root/repo/target/debug/deps/dcs_cluster-7e7c6bf30907e248.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_cluster-7e7c6bf30907e248.rmeta: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/report.rs:
crates/cluster/src/shard.rs:
crates/cluster/src/switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
