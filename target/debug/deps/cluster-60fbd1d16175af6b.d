/root/repo/target/debug/deps/cluster-60fbd1d16175af6b.d: tests/cluster.rs

/root/repo/target/debug/deps/cluster-60fbd1d16175af6b: tests/cluster.rs

tests/cluster.rs:
