/root/repo/target/debug/deps/scale-ca66e09f2103c8fe.d: tests/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-ca66e09f2103c8fe.rmeta: tests/scale.rs Cargo.toml

tests/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
