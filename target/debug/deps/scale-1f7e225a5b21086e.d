/root/repo/target/debug/deps/scale-1f7e225a5b21086e.d: tests/scale.rs

/root/repo/target/debug/deps/scale-1f7e225a5b21086e: tests/scale.rs

tests/scale.rs:
