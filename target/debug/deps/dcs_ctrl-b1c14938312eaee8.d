/root/repo/target/debug/deps/dcs_ctrl-b1c14938312eaee8.d: src/lib.rs

/root/repo/target/debug/deps/libdcs_ctrl-b1c14938312eaee8.rlib: src/lib.rs

/root/repo/target/debug/deps/libdcs_ctrl-b1c14938312eaee8.rmeta: src/lib.rs

src/lib.rs:
