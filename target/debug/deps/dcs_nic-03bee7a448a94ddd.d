/root/repo/target/debug/deps/dcs_nic-03bee7a448a94ddd.d: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/debug/deps/libdcs_nic-03bee7a448a94ddd.rlib: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/debug/deps/libdcs_nic-03bee7a448a94ddd.rmeta: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

crates/nic/src/lib.rs:
crates/nic/src/device.rs:
crates/nic/src/headers.rs:
crates/nic/src/ring.rs:
crates/nic/src/wire.rs:
