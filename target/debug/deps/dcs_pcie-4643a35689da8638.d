/root/repo/target/debug/deps/dcs_pcie-4643a35689da8638.d: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/debug/deps/libdcs_pcie-4643a35689da8638.rlib: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/debug/deps/libdcs_pcie-4643a35689da8638.rmeta: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

crates/pcie/src/lib.rs:
crates/pcie/src/addr.rs:
crates/pcie/src/config.rs:
crates/pcie/src/fabric.rs:
crates/pcie/src/mem.rs:
crates/pcie/src/routing.rs:
