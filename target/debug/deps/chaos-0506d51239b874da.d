/root/repo/target/debug/deps/chaos-0506d51239b874da.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-0506d51239b874da.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
