/root/repo/target/debug/deps/dcs_cluster-24f731c6e1284d4f.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/debug/deps/libdcs_cluster-24f731c6e1284d4f.rmeta: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/report.rs:
crates/cluster/src/shard.rs:
crates/cluster/src/switch.rs:
