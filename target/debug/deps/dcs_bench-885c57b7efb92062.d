/root/repo/target/debug/deps/dcs_bench-885c57b7efb92062.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cluster.rs crates/bench/src/faults.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig8.rs crates/bench/src/probe.rs crates/bench/src/table3.rs crates/bench/src/table4.rs

/root/repo/target/debug/deps/libdcs_bench-885c57b7efb92062.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cluster.rs crates/bench/src/faults.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig8.rs crates/bench/src/probe.rs crates/bench/src/table3.rs crates/bench/src/table4.rs

/root/repo/target/debug/deps/libdcs_bench-885c57b7efb92062.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cluster.rs crates/bench/src/faults.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig8.rs crates/bench/src/probe.rs crates/bench/src/table3.rs crates/bench/src/table4.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/cluster.rs:
crates/bench/src/faults.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig8.rs:
crates/bench/src/probe.rs:
crates/bench/src/table3.rs:
crates/bench/src/table4.rs:
