/root/repo/target/debug/deps/dcs_bench-b33c128a1a832b26.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cluster.rs crates/bench/src/faults.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig8.rs crates/bench/src/probe.rs crates/bench/src/table3.rs crates/bench/src/table4.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_bench-b33c128a1a832b26.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cluster.rs crates/bench/src/faults.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig8.rs crates/bench/src/probe.rs crates/bench/src/table3.rs crates/bench/src/table4.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/cluster.rs:
crates/bench/src/faults.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig8.rs:
crates/bench/src/probe.rs:
crates/bench/src/table3.rs:
crates/bench/src/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
