/root/repo/target/debug/deps/fault_injection-1f42b80c003f616e.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-1f42b80c003f616e.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
