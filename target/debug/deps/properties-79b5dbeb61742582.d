/root/repo/target/debug/deps/properties-79b5dbeb61742582.d: crates/ndp/tests/properties.rs

/root/repo/target/debug/deps/properties-79b5dbeb61742582: crates/ndp/tests/properties.rs

crates/ndp/tests/properties.rs:
