/root/repo/target/debug/deps/scale-ab0a1e683b857ab3.d: tests/scale.rs

/root/repo/target/debug/deps/scale-ab0a1e683b857ab3: tests/scale.rs

tests/scale.rs:
