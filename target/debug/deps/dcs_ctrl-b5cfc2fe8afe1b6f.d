/root/repo/target/debug/deps/dcs_ctrl-b5cfc2fe8afe1b6f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_ctrl-b5cfc2fe8afe1b6f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
