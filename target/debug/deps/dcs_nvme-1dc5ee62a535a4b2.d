/root/repo/target/debug/deps/dcs_nvme-1dc5ee62a535a4b2.d: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/debug/deps/libdcs_nvme-1dc5ee62a535a4b2.rmeta: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

crates/nvme/src/lib.rs:
crates/nvme/src/device.rs:
crates/nvme/src/queue.rs:
crates/nvme/src/spec.rs:
