/root/repo/target/debug/deps/dcs_ctrl-c0101ffa61ba2b9a.d: src/lib.rs

/root/repo/target/debug/deps/libdcs_ctrl-c0101ffa61ba2b9a.rlib: src/lib.rs

/root/repo/target/debug/deps/libdcs_ctrl-c0101ffa61ba2b9a.rmeta: src/lib.rs

src/lib.rs:
