/root/repo/target/debug/deps/dcs_nvme-e6e7a32e2839d32d.d: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/debug/deps/libdcs_nvme-e6e7a32e2839d32d.rlib: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

/root/repo/target/debug/deps/libdcs_nvme-e6e7a32e2839d32d.rmeta: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs

crates/nvme/src/lib.rs:
crates/nvme/src/device.rs:
crates/nvme/src/queue.rs:
crates/nvme/src/spec.rs:
