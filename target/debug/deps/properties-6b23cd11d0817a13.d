/root/repo/target/debug/deps/properties-6b23cd11d0817a13.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6b23cd11d0817a13.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
