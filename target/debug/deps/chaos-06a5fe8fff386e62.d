/root/repo/target/debug/deps/chaos-06a5fe8fff386e62.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-06a5fe8fff386e62: tests/chaos.rs

tests/chaos.rs:
