/root/repo/target/debug/deps/dcs_pcie-4edd44c18055ebf3.d: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_pcie-4edd44c18055ebf3.rmeta: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs Cargo.toml

crates/pcie/src/lib.rs:
crates/pcie/src/addr.rs:
crates/pcie/src/config.rs:
crates/pcie/src/fabric.rs:
crates/pcie/src/mem.rs:
crates/pcie/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
