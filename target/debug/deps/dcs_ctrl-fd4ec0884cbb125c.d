/root/repo/target/debug/deps/dcs_ctrl-fd4ec0884cbb125c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_ctrl-fd4ec0884cbb125c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
