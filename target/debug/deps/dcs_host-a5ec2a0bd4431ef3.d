/root/repo/target/debug/deps/dcs_host-a5ec2a0bd4431ef3.d: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_host-a5ec2a0bd4431ef3.rmeta: crates/host/src/lib.rs crates/host/src/costs.rs crates/host/src/cpu.rs crates/host/src/executor.rs crates/host/src/gpu_driver.rs crates/host/src/integration.rs crates/host/src/job.rs crates/host/src/nic_driver.rs crates/host/src/node.rs crates/host/src/nvme_driver.rs Cargo.toml

crates/host/src/lib.rs:
crates/host/src/costs.rs:
crates/host/src/cpu.rs:
crates/host/src/executor.rs:
crates/host/src/gpu_driver.rs:
crates/host/src/integration.rs:
crates/host/src/job.rs:
crates/host/src/nic_driver.rs:
crates/host/src/node.rs:
crates/host/src/nvme_driver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
