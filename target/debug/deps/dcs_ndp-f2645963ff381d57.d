/root/repo/target/debug/deps/dcs_ndp-f2645963ff381d57.d: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs

/root/repo/target/debug/deps/libdcs_ndp-f2645963ff381d57.rmeta: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs

crates/ndp/src/lib.rs:
crates/ndp/src/aes.rs:
crates/ndp/src/crc32.rs:
crates/ndp/src/deflate.rs:
crates/ndp/src/function.rs:
crates/ndp/src/md5.rs:
crates/ndp/src/sha1.rs:
crates/ndp/src/sha256.rs:
