/root/repo/target/debug/deps/dcs_cluster-e09b5f118dcd6674.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/debug/deps/dcs_cluster-e09b5f118dcd6674: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/report.rs:
crates/cluster/src/shard.rs:
crates/cluster/src/switch.rs:
