/root/repo/target/debug/deps/cross_design-810f5c0f281c22d6.d: tests/cross_design.rs Cargo.toml

/root/repo/target/debug/deps/libcross_design-810f5c0f281c22d6.rmeta: tests/cross_design.rs Cargo.toml

tests/cross_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
