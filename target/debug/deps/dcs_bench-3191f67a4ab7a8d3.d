/root/repo/target/debug/deps/dcs_bench-3191f67a4ab7a8d3.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/faults.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig8.rs crates/bench/src/probe.rs crates/bench/src/table3.rs crates/bench/src/table4.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_bench-3191f67a4ab7a8d3.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/faults.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig8.rs crates/bench/src/probe.rs crates/bench/src/table3.rs crates/bench/src/table4.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/faults.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig8.rs:
crates/bench/src/probe.rs:
crates/bench/src/table3.rs:
crates/bench/src/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
