/root/repo/target/debug/deps/repro-c4e878145b32f124.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-c4e878145b32f124.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
