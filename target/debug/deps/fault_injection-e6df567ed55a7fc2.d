/root/repo/target/debug/deps/fault_injection-e6df567ed55a7fc2.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-e6df567ed55a7fc2: tests/fault_injection.rs

tests/fault_injection.rs:
