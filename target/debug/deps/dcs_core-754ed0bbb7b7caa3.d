/root/repo/target/debug/deps/dcs_core-754ed0bbb7b7caa3.d: crates/core/src/lib.rs crates/core/src/buffers.rs crates/core/src/command.rs crates/core/src/driver.rs crates/core/src/engine.rs crates/core/src/lib_api.rs crates/core/src/ndp_unit.rs crates/core/src/node.rs crates/core/src/resources.rs crates/core/src/scoreboard.rs

/root/repo/target/debug/deps/libdcs_core-754ed0bbb7b7caa3.rmeta: crates/core/src/lib.rs crates/core/src/buffers.rs crates/core/src/command.rs crates/core/src/driver.rs crates/core/src/engine.rs crates/core/src/lib_api.rs crates/core/src/ndp_unit.rs crates/core/src/node.rs crates/core/src/resources.rs crates/core/src/scoreboard.rs

crates/core/src/lib.rs:
crates/core/src/buffers.rs:
crates/core/src/command.rs:
crates/core/src/driver.rs:
crates/core/src/engine.rs:
crates/core/src/lib_api.rs:
crates/core/src/ndp_unit.rs:
crates/core/src/node.rs:
crates/core/src/resources.rs:
crates/core/src/scoreboard.rs:
