/root/repo/target/debug/deps/dcs_nic-5797a665a6487a79.d: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/debug/deps/libdcs_nic-5797a665a6487a79.rlib: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

/root/repo/target/debug/deps/libdcs_nic-5797a665a6487a79.rmeta: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs

crates/nic/src/lib.rs:
crates/nic/src/device.rs:
crates/nic/src/headers.rs:
crates/nic/src/ring.rs:
crates/nic/src/wire.rs:
