/root/repo/target/debug/deps/scale-e46adb45509913bb.d: tests/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-e46adb45509913bb.rmeta: tests/scale.rs Cargo.toml

tests/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
