/root/repo/target/debug/deps/dcs_nic-53b0ae1cf938cfa3.d: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_nic-53b0ae1cf938cfa3.rmeta: crates/nic/src/lib.rs crates/nic/src/device.rs crates/nic/src/headers.rs crates/nic/src/ring.rs crates/nic/src/wire.rs Cargo.toml

crates/nic/src/lib.rs:
crates/nic/src/device.rs:
crates/nic/src/headers.rs:
crates/nic/src/ring.rs:
crates/nic/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
