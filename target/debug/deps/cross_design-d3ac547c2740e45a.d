/root/repo/target/debug/deps/cross_design-d3ac547c2740e45a.d: tests/cross_design.rs

/root/repo/target/debug/deps/cross_design-d3ac547c2740e45a: tests/cross_design.rs

tests/cross_design.rs:
