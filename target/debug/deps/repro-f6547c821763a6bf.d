/root/repo/target/debug/deps/repro-f6547c821763a6bf.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-f6547c821763a6bf.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
