/root/repo/target/debug/deps/cross_design-a27df8ddd8e9a8e8.d: tests/cross_design.rs

/root/repo/target/debug/deps/cross_design-a27df8ddd8e9a8e8: tests/cross_design.rs

tests/cross_design.rs:
