/root/repo/target/debug/deps/dcs_nvme-e6a33998ae5fb49b.d: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_nvme-e6a33998ae5fb49b.rmeta: crates/nvme/src/lib.rs crates/nvme/src/device.rs crates/nvme/src/queue.rs crates/nvme/src/spec.rs Cargo.toml

crates/nvme/src/lib.rs:
crates/nvme/src/device.rs:
crates/nvme/src/queue.rs:
crates/nvme/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
