/root/repo/target/debug/deps/dcs_cluster-810f473b8472bb69.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/debug/deps/libdcs_cluster-810f473b8472bb69.rlib: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/debug/deps/libdcs_cluster-810f473b8472bb69.rmeta: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/report.rs:
crates/cluster/src/shard.rs:
crates/cluster/src/switch.rs:
