/root/repo/target/debug/deps/dcs_ndp-4b8647585d82fcb1.d: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs

/root/repo/target/debug/deps/libdcs_ndp-4b8647585d82fcb1.rlib: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs

/root/repo/target/debug/deps/libdcs_ndp-4b8647585d82fcb1.rmeta: crates/ndp/src/lib.rs crates/ndp/src/aes.rs crates/ndp/src/crc32.rs crates/ndp/src/deflate.rs crates/ndp/src/function.rs crates/ndp/src/md5.rs crates/ndp/src/sha1.rs crates/ndp/src/sha256.rs

crates/ndp/src/lib.rs:
crates/ndp/src/aes.rs:
crates/ndp/src/crc32.rs:
crates/ndp/src/deflate.rs:
crates/ndp/src/function.rs:
crates/ndp/src/md5.rs:
crates/ndp/src/sha1.rs:
crates/ndp/src/sha256.rs:
