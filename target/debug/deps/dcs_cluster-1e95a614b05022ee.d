/root/repo/target/debug/deps/dcs_cluster-1e95a614b05022ee.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/debug/deps/libdcs_cluster-1e95a614b05022ee.rlib: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

/root/repo/target/debug/deps/libdcs_cluster-1e95a614b05022ee.rmeta: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/policy.rs crates/cluster/src/report.rs crates/cluster/src/shard.rs crates/cluster/src/switch.rs

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/report.rs:
crates/cluster/src/shard.rs:
crates/cluster/src/switch.rs:
