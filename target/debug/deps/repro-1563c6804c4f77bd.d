/root/repo/target/debug/deps/repro-1563c6804c4f77bd.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-1563c6804c4f77bd.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
