/root/repo/target/debug/deps/dcs_pcie-c64ee0b2b32e2f7d.d: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/debug/deps/libdcs_pcie-c64ee0b2b32e2f7d.rmeta: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

crates/pcie/src/lib.rs:
crates/pcie/src/addr.rs:
crates/pcie/src/config.rs:
crates/pcie/src/fabric.rs:
crates/pcie/src/mem.rs:
crates/pcie/src/routing.rs:
