/root/repo/target/debug/deps/properties-4463dbfca1fefdcb.d: crates/nic/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4463dbfca1fefdcb.rmeta: crates/nic/tests/properties.rs Cargo.toml

crates/nic/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
