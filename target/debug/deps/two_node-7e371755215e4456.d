/root/repo/target/debug/deps/two_node-7e371755215e4456.d: crates/nic/tests/two_node.rs

/root/repo/target/debug/deps/two_node-7e371755215e4456: crates/nic/tests/two_node.rs

crates/nic/tests/two_node.rs:
