/root/repo/target/debug/deps/dcs_gpu-ce77323144c284b7.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libdcs_gpu-ce77323144c284b7.rlib: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libdcs_gpu-ce77323144c284b7.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
