/root/repo/target/debug/deps/repro-b2e8b7083b611fa6.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-b2e8b7083b611fa6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
