/root/repo/target/debug/deps/dcs_ctrl-51a0eb9deae55f87.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_ctrl-51a0eb9deae55f87.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
