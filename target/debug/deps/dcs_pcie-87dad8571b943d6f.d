/root/repo/target/debug/deps/dcs_pcie-87dad8571b943d6f.d: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/debug/deps/libdcs_pcie-87dad8571b943d6f.rlib: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

/root/repo/target/debug/deps/libdcs_pcie-87dad8571b943d6f.rmeta: crates/pcie/src/lib.rs crates/pcie/src/addr.rs crates/pcie/src/config.rs crates/pcie/src/fabric.rs crates/pcie/src/mem.rs crates/pcie/src/routing.rs

crates/pcie/src/lib.rs:
crates/pcie/src/addr.rs:
crates/pcie/src/config.rs:
crates/pcie/src/fabric.rs:
crates/pcie/src/mem.rs:
crates/pcie/src/routing.rs:
