/root/repo/target/debug/deps/dcs_gpu-9ee4278feb52880b.d: crates/gpu/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcs_gpu-9ee4278feb52880b.rmeta: crates/gpu/src/lib.rs Cargo.toml

crates/gpu/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
