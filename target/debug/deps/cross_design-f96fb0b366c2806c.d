/root/repo/target/debug/deps/cross_design-f96fb0b366c2806c.d: tests/cross_design.rs Cargo.toml

/root/repo/target/debug/deps/libcross_design-f96fb0b366c2806c.rmeta: tests/cross_design.rs Cargo.toml

tests/cross_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
