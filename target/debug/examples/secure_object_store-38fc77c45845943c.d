/root/repo/target/debug/examples/secure_object_store-38fc77c45845943c.d: examples/secure_object_store.rs

/root/repo/target/debug/examples/secure_object_store-38fc77c45845943c: examples/secure_object_store.rs

examples/secure_object_store.rs:
