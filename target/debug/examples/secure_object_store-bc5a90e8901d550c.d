/root/repo/target/debug/examples/secure_object_store-bc5a90e8901d550c.d: examples/secure_object_store.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_object_store-bc5a90e8901d550c.rmeta: examples/secure_object_store.rs Cargo.toml

examples/secure_object_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
