/root/repo/target/debug/examples/hdfs_balancer-31d33b42376c5c18.d: examples/hdfs_balancer.rs Cargo.toml

/root/repo/target/debug/examples/libhdfs_balancer-31d33b42376c5c18.rmeta: examples/hdfs_balancer.rs Cargo.toml

examples/hdfs_balancer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
