/root/repo/target/debug/examples/quickstart-b2662867dabc43d2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b2662867dabc43d2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
