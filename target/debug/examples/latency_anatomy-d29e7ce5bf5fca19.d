/root/repo/target/debug/examples/latency_anatomy-d29e7ce5bf5fca19.d: examples/latency_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_anatomy-d29e7ce5bf5fca19.rmeta: examples/latency_anatomy.rs Cargo.toml

examples/latency_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
