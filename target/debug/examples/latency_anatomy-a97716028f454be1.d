/root/repo/target/debug/examples/latency_anatomy-a97716028f454be1.d: examples/latency_anatomy.rs

/root/repo/target/debug/examples/latency_anatomy-a97716028f454be1: examples/latency_anatomy.rs

examples/latency_anatomy.rs:
