/root/repo/target/debug/examples/hdfs_balancer-486aec939630179e.d: examples/hdfs_balancer.rs Cargo.toml

/root/repo/target/debug/examples/libhdfs_balancer-486aec939630179e.rmeta: examples/hdfs_balancer.rs Cargo.toml

examples/hdfs_balancer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
