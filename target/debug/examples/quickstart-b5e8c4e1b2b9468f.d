/root/repo/target/debug/examples/quickstart-b5e8c4e1b2b9468f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b5e8c4e1b2b9468f: examples/quickstart.rs

examples/quickstart.rs:
