/root/repo/target/debug/examples/quickstart-4691394df35ab33c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4691394df35ab33c: examples/quickstart.rs

examples/quickstart.rs:
