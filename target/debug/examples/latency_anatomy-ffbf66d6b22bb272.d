/root/repo/target/debug/examples/latency_anatomy-ffbf66d6b22bb272.d: examples/latency_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_anatomy-ffbf66d6b22bb272.rmeta: examples/latency_anatomy.rs Cargo.toml

examples/latency_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
