/root/repo/target/debug/examples/hdfs_balancer-39bd1a005d872e6d.d: examples/hdfs_balancer.rs

/root/repo/target/debug/examples/hdfs_balancer-39bd1a005d872e6d: examples/hdfs_balancer.rs

examples/hdfs_balancer.rs:
