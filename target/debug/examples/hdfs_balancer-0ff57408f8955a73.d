/root/repo/target/debug/examples/hdfs_balancer-0ff57408f8955a73.d: examples/hdfs_balancer.rs

/root/repo/target/debug/examples/hdfs_balancer-0ff57408f8955a73: examples/hdfs_balancer.rs

examples/hdfs_balancer.rs:
