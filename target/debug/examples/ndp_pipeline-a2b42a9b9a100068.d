/root/repo/target/debug/examples/ndp_pipeline-a2b42a9b9a100068.d: examples/ndp_pipeline.rs

/root/repo/target/debug/examples/ndp_pipeline-a2b42a9b9a100068: examples/ndp_pipeline.rs

examples/ndp_pipeline.rs:
