/root/repo/target/debug/examples/secure_object_store-3dd2f959cbc206f1.d: examples/secure_object_store.rs

/root/repo/target/debug/examples/secure_object_store-3dd2f959cbc206f1: examples/secure_object_store.rs

examples/secure_object_store.rs:
