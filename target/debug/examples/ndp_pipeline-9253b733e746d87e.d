/root/repo/target/debug/examples/ndp_pipeline-9253b733e746d87e.d: examples/ndp_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libndp_pipeline-9253b733e746d87e.rmeta: examples/ndp_pipeline.rs Cargo.toml

examples/ndp_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
