/root/repo/target/debug/examples/ndp_pipeline-d9c21d66c7c73cc2.d: examples/ndp_pipeline.rs

/root/repo/target/debug/examples/ndp_pipeline-d9c21d66c7c73cc2: examples/ndp_pipeline.rs

examples/ndp_pipeline.rs:
