/root/repo/target/debug/examples/ndp_pipeline-d6255536d63de792.d: examples/ndp_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libndp_pipeline-d6255536d63de792.rmeta: examples/ndp_pipeline.rs Cargo.toml

examples/ndp_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
