/root/repo/target/debug/examples/latency_anatomy-ad81e50ff3bed89c.d: examples/latency_anatomy.rs

/root/repo/target/debug/examples/latency_anatomy-ad81e50ff3bed89c: examples/latency_anatomy.rs

examples/latency_anatomy.rs:
