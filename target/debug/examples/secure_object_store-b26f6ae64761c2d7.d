/root/repo/target/debug/examples/secure_object_store-b26f6ae64761c2d7.d: examples/secure_object_store.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_object_store-b26f6ae64761c2d7.rmeta: examples/secure_object_store.rs Cargo.toml

examples/secure_object_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
