//! SLO-aware admission queueing: weighted fair queueing per tenant, with
//! FIFO as the ablation arm.
//!
//! When a node's service slots are full, arriving requests park in a
//! per-node queue. *Which* parked request gets the next free slot is the
//! QoS decision:
//!
//! * [`QosPolicy::Fifo`] — one shared queue in arrival order. A noisy
//!   tenant that floods the node owns the whole queue: every other
//!   tenant's requests sit behind its backlog (and get shed once the
//!   shared cap fills). This is the arm the noisy-neighbor ablation
//!   degrades.
//! * [`QosPolicy::Wfq`] — start-time fair queueing (SFQ): each request is
//!   stamped `start = max(V, last_finish(tenant))`,
//!   `finish = start + cost / weight`, and the queue dispatches the
//!   smallest finish tag. Each tenant also gets its *own* queue bound, so
//!   a flood can neither crowd out a compliant tenant's queue space nor
//!   delay its dispatch beyond its weighted share.
//!
//! Costs are in bytes (the store charges a request its payload), so
//! weights divide *bandwidth*, not request counts — a tenant of small
//! GETs is not starved by a tenant of huge scans at equal weight.
//!
//! Everything is deterministic: ties on finish tags break toward the
//! lower tenant index, and virtual time only advances with dispatches.

use std::collections::VecDeque;

/// How a node's admission queue orders parked requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QosPolicy {
    /// One shared arrival-order queue (the ablation arm).
    Fifo,
    /// Start-time weighted fair queueing with per-tenant queue bounds.
    #[default]
    Wfq,
}

impl QosPolicy {
    /// Render label.
    pub fn label(self) -> &'static str {
        match self {
            QosPolicy::Fifo => "fifo",
            QosPolicy::Wfq => "wfq",
        }
    }
}

/// Start-time fair queue over a fixed tenant set.
#[derive(Debug)]
pub struct FairQueue<T> {
    // dcs-lint: allow(float-in-sim-state) — per-tenant config weights, frozen at construction
    weights: Vec<f64>,
    // dcs-lint: allow(float-in-sim-state) — WFQ virtual time is fractional by construction; single-threaded IEEE-754 evaluation order makes it seed-stable
    vtime: f64,
    // dcs-lint: allow(float-in-sim-state) — same virtual-time clock as `vtime`
    last_finish: Vec<f64>,
    /// Per-tenant FIFO of `(start, finish, item)`.
    // dcs-lint: allow(float-in-sim-state) — virtual-time tags on queued items, same clock as `vtime`
    queues: Vec<VecDeque<(f64, f64, T)>>,
    len: usize,
}

impl<T> FairQueue<T> {
    /// Creates the queue; one strictly positive weight per tenant.
    pub fn new(weights: &[f64]) -> FairQueue<T> {
        assert!(!weights.is_empty(), "fair queue needs at least one tenant");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        FairQueue {
            weights: weights.to_vec(),
            vtime: 0.0,
            last_finish: vec![0.0; weights.len()],
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            len: 0,
        }
    }

    /// Parks `item` for `tenant` with service demand `cost` (bytes).
    pub fn push(&mut self, tenant: usize, cost: f64, item: T) {
        let start = self.vtime.max(self.last_finish[tenant]);
        let finish = start + cost.max(1.0) / self.weights[tenant];
        self.last_finish[tenant] = finish;
        self.queues[tenant].push_back((start, finish, item));
        self.len += 1;
    }

    /// Dispatches the parked item with the smallest finish tag (ties to
    /// the lowest tenant index). Advances virtual time to its start tag.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        let tenant = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(t, q)| q.front().map(|&(_, finish, _)| (t, finish)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))?
            .0;
        let (start, _, item) = self.queues[tenant].pop_front().expect("head just observed");
        self.vtime = self.vtime.max(start);
        self.len -= 1;
        Some((tenant, item))
    }

    /// Parked items for one tenant.
    pub fn tenant_len(&self, tenant: usize) -> usize {
        self.queues[tenant].len()
    }

    /// Parked items in total.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A node's admission queue under either policy, with shedding bounds.
///
/// Under FIFO the bound is shared (`per_tenant_cap × tenants`); under WFQ
/// each tenant owns `per_tenant_cap` slots of queue space. Total capacity
/// is identical — only its ownership differs, which is exactly the
/// isolation the ablation measures.
#[derive(Debug)]
pub enum QosQueue<T> {
    /// Shared arrival-order queue of `(tenant, item)`.
    Fifo {
        /// The queue.
        queue: VecDeque<(usize, T)>,
        /// Shared bound.
        cap: usize,
    },
    /// Weighted fair queue with per-tenant bounds.
    Wfq {
        /// The queue.
        fq: FairQueue<T>,
        /// Per-tenant bound.
        cap: usize,
    },
}

impl<T> QosQueue<T> {
    /// Creates the queue for `policy` with `per_tenant_cap` queue slots
    /// per tenant.
    pub fn new(policy: QosPolicy, weights: &[f64], per_tenant_cap: usize) -> QosQueue<T> {
        match policy {
            QosPolicy::Fifo => QosQueue::Fifo {
                queue: VecDeque::new(),
                cap: per_tenant_cap * weights.len(),
            },
            QosPolicy::Wfq => QosQueue::Wfq {
                fq: FairQueue::new(weights),
                cap: per_tenant_cap,
            },
        }
    }

    /// Parks `item`, or returns it when the applicable bound is full (the
    /// caller sheds it).
    pub fn try_push(&mut self, tenant: usize, cost: f64, item: T) -> Result<(), T> {
        match self {
            QosQueue::Fifo { queue, cap } => {
                if queue.len() >= *cap {
                    return Err(item);
                }
                queue.push_back((tenant, item));
                Ok(())
            }
            QosQueue::Wfq { fq, cap } => {
                if fq.tenant_len(tenant) >= *cap {
                    return Err(item);
                }
                fq.push(tenant, cost, item);
                Ok(())
            }
        }
    }

    /// Dispatches the next item per the policy.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        match self {
            QosQueue::Fifo { queue, .. } => queue.pop_front(),
            QosQueue::Wfq { fq, .. } => fq.pop(),
        }
    }

    /// Parked items in total.
    pub fn len(&self) -> usize {
        match self {
            QosQueue::Fifo { queue, .. } => queue.len(),
            QosQueue::Wfq { fq, .. } => fq.len(),
        }
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every parked item in dispatch order (crash reroute, window
    /// close).
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(x) = self.pop() {
            out.push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wfq_splits_dispatches_by_weight() {
        // Tenant 0 at weight 2, tenant 1 at weight 1, equal costs: the
        // dispatch stream gives tenant 0 two slots per tenant-1 slot.
        let mut fq = FairQueue::new(&[2.0, 1.0]);
        for i in 0..12 {
            fq.push(0, 1000.0, ("a", i));
            fq.push(1, 1000.0, ("b", i));
        }
        let first_nine: Vec<usize> = (0..9).map(|_| fq.pop().unwrap().0).collect();
        let t0 = first_nine.iter().filter(|&&t| t == 0).count();
        assert_eq!(t0, 6, "weight-2 tenant gets 2/3 of slots: {first_nine:?}");
    }

    #[test]
    fn wfq_charges_bytes_not_requests() {
        // Equal weights, but tenant 1's requests are 10x the size: tenant
        // 0 should get ~10 dispatches per tenant-1 dispatch.
        let mut fq = FairQueue::new(&[1.0, 1.0]);
        for i in 0..40 {
            fq.push(0, 1000.0, i);
        }
        for i in 0..4 {
            fq.push(1, 10_000.0, 100 + i);
        }
        let first: Vec<usize> = (0..22).map(|_| fq.pop().unwrap().0).collect();
        let t1 = first.iter().filter(|&&t| t == 1).count();
        assert!(
            (1..=3).contains(&t1),
            "big requests pay their bytes: {first:?}"
        );
    }

    #[test]
    fn wfq_preserves_per_tenant_fifo_order_and_is_work_conserving() {
        let mut fq = FairQueue::new(&[1.0, 1.0]);
        fq.push(0, 10.0, 1);
        fq.push(0, 10.0, 2);
        fq.push(0, 10.0, 3);
        // Tenant 1 idle: tenant 0 drains back-to-back in order.
        let order: Vec<(usize, i32)> = (0..3).map(|_| fq.pop().unwrap()).collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (0, 3)]);
        assert!(fq.pop().is_none());
    }

    #[test]
    fn late_arriving_tenant_is_not_starved_by_backlog() {
        // Tenant 0 parks a deep backlog; tenant 1 arrives later. SFQ
        // stamps tenant 1 from current virtual time, so it interleaves
        // immediately instead of waiting out the backlog.
        let mut fq = FairQueue::new(&[1.0, 1.0]);
        for i in 0..50 {
            fq.push(0, 1000.0, i);
        }
        for _ in 0..5 {
            fq.pop();
        }
        fq.push(1, 1000.0, 999);
        let next_four: Vec<usize> = (0..4).map(|_| fq.pop().unwrap().0).collect();
        assert!(
            next_four.contains(&1),
            "late tenant dispatches promptly: {next_four:?}"
        );
    }

    #[test]
    fn fifo_queue_is_arrival_ordered_with_shared_cap() {
        let mut q: QosQueue<i32> = QosQueue::new(QosPolicy::Fifo, &[1.0, 1.0], 2);
        assert!(q.try_push(0, 1.0, 10).is_ok());
        assert!(q.try_push(1, 1.0, 11).is_ok());
        assert!(q.try_push(0, 1.0, 12).is_ok());
        assert!(q.try_push(0, 1.0, 13).is_ok());
        // Shared cap 4 is full — even the idle tenant is refused.
        assert_eq!(q.try_push(1, 1.0, 14), Err(14));
        assert_eq!(q.pop(), Some((0, 10)));
        assert_eq!(q.pop(), Some((1, 11)));
    }

    #[test]
    fn wfq_queue_bounds_are_per_tenant() {
        let mut q: QosQueue<i32> = QosQueue::new(QosPolicy::Wfq, &[1.0, 1.0], 2);
        assert!(q.try_push(0, 1.0, 1).is_ok());
        assert!(q.try_push(0, 1.0, 2).is_ok());
        // Tenant 0's own bound is full...
        assert_eq!(q.try_push(0, 1.0, 3), Err(3));
        // ...but tenant 1's space is untouchable by the flood.
        assert!(q.try_push(1, 1.0, 4).is_ok());
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn dispatch_order_is_deterministic_across_runs() {
        let run = || {
            let mut fq = FairQueue::new(&[3.0, 1.0, 1.0]);
            for i in 0..30 {
                fq.push((i % 3) as usize, 500.0 + (i as f64) * 7.0, i);
            }
            let mut order = Vec::new();
            while let Some((t, i)) = fq.pop() {
                order.push((t, i));
            }
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn drain_empties_in_dispatch_order() {
        let mut q: QosQueue<i32> = QosQueue::new(QosPolicy::Wfq, &[1.0, 2.0], 8);
        q.try_push(0, 100.0, 1).unwrap();
        q.try_push(1, 100.0, 2).unwrap();
        q.try_push(1, 100.0, 3).unwrap();
        let drained = q.drain();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
        // Weight-2 tenant's first item finishes first.
        assert_eq!(drained[0], (1, 2));
    }
}
