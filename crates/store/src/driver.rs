//! The store front end: per-tenant YCSB traffic, cache-aware routing,
//! QoS admission, and per-tenant SLO measurement.
//!
//! One [`StoreDriver`] component plays the serving tier in front of the
//! rack. Per tenant, it draws open-loop Poisson arrivals at the tenant's
//! offered load and walks the tenant's YCSB op stream
//! ([`YcsbGenerator`]); each op resolves through the cluster's
//! consistent-hash ring and runs as real simulated [`D2dJob`]s on the
//! chosen node's devices:
//!
//! * **GET, cache miss / SCAN** — `SsdRead → MD5 → NicSend` on the
//!   server (the Swift GET shape), received at the rack-side access node.
//! * **GET, cache hit** — `MemRead → NicSend`: the value comes from the
//!   node's DRAM read cache ([`ReadCache`]) and the NVMe path is skipped
//!   entirely. The front end owns the caches, so it routes a GET to a
//!   replica that holds the key (cache-affinity) before consulting the
//!   load balancer.
//! * **PUT / INSERT / RMW / DELETE** — `NicRecv → MD5 → SsdWrite` on the
//!   server while the access node streams the body (the Swift PUT shape).
//!   On completion the write *commits*: the object's version is bumped
//!   and every node cache invalidates its copy — before the ack is even
//!   on the wire, so no later cache decision can see the old bytes.
//!
//! Consistency is enforced by version, not by hope: every cache entry
//! records the version it was admitted at, a hit is only served when that
//! version equals the committed version, and any mismatch at decision
//! time counts into the report's `stale_served` tripwire (asserted zero
//! by the failover suite — including across a node crash with writes in
//! flight).
//!
//! Overload is shaped per tenant: each node serves `max_outstanding`
//! requests; beyond that, requests park in the node's [`QosQueue`] —
//! weighted-fair (SFQ, per-tenant bounds) or FIFO (shared bound, the
//! ablation arm) — and shed when their bound fills. Tenants may also ride
//! the ToR's strict-priority lane ([`Lane::Priority`]), the same
//! machinery the health layer's probes use.

use std::collections::BTreeMap;

use dcs_cluster::{ClusterNode, ClusterReport, HashRing, Lane, NodePerf, TenantPerf, TorSwitch};
use dcs_host::cpu::{CpuJob, CpuJobDone, CpuStats};
use dcs_host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::{Bandwidth, Component, Ctx, DetMap, DetSet, Histogram, Msg, Rng, SimTime};
use dcs_workloads::ycsb::{StoreOp, StoreOpKind, YcsbGenerator};

use crate::api::{object_id, StoreConfig};
use crate::cache::ReadCache;
use crate::qos::QosQueue;

/// Bytes of a read request on the wire (headers only).
const READ_REQ_BYTES: usize = 512;
/// Header overhead on a write request (the payload rides along).
const WRITE_REQ_OVERHEAD: usize = 512;
/// Response overhead on a read (headers + integrity digest).
const READ_RESP_OVERHEAD: usize = 256;
/// Bytes of a write acknowledgement.
const WRITE_ACK_BYTES: usize = 128;
/// Payload bytes of a DELETE (a tombstone record).
const TOMBSTONE_BYTES: usize = 512;
/// Bandwidth of the cache warm-up stream to a rejoining node, Gbps —
/// capped like re-replication so the transfer cannot starve foreground
/// traffic.
const WARMUP_GBPS: f64 = 2.0;

/// The finished report, left in the world when the window closes.
#[derive(Debug)]
pub struct StoreOutcome(pub ClusterReport);

/// Kickoff event for the front end (sent once by
/// [`build_store`](crate::build_store)).
#[derive(Debug)]
pub struct Start;
#[derive(Debug)]
struct Arrival {
    tenant: usize,
}
#[derive(Debug)]
struct WarmupOver;
#[derive(Debug)]
struct WindowOver;
#[derive(Debug)]
struct CrashNow;
/// The crashed node's configured restart time arrived.
#[derive(Debug)]
struct RestartNow;
/// The cache warm-up transfer to the rejoining node finished streaming.
#[derive(Debug)]
struct CacheWarmDone {
    node: usize,
}
/// The request's bytes finished arriving at the node port: submit its jobs.
#[derive(Debug)]
struct Delivered {
    req: u64,
}
/// The response's bytes finished arriving back at the front end.
#[derive(Debug)]
struct Response {
    req: u64,
}

/// A generated op not yet dispatched (parked at admission).
#[derive(Debug)]
struct Pending {
    tenant: usize,
    op: StoreOp,
    len: usize,
    arrival: SimTime,
    retries_left: u32,
}

/// A dispatched request.
#[derive(Debug)]
struct InFlight {
    tenant: usize,
    node: usize,
    slot: usize,
    op: StoreOp,
    len: usize,
    arrival: SimTime,
    pending_jobs: usize,
    failed: bool,
    /// Served from the node's read cache (NVMe path skipped).
    cache_hit: bool,
    /// Committed version of the object at the cache decision.
    decision_version: u64,
    retries_left: u32,
}

/// The store front-end component.
pub struct StoreDriver {
    cfg: StoreConfig,
    nodes: Vec<ClusterNode>,
    switch: TorSwitch,
    ring: HashRing,
    gens: Vec<YcsbGenerator>,
    tenant_rngs: Vec<Rng>,
    // dcs-lint: allow(float-in-sim-state) — derived once from per-tenant offered load at build; read-only thereafter
    mean_gap_ns: Vec<f64>,
    // Admission state, indexed by node.
    outstanding: Vec<usize>,
    free_slots: Vec<Vec<usize>>,
    queues: Vec<QosQueue<Pending>>,
    rr_cursor: usize,
    // Caching and consistency.
    caches: Vec<ReadCache>,
    /// Committed version per global object id (absent = 0, never written).
    committed: DetMap<u64, u64>,
    // Request tracking.
    inflight: BTreeMap<u64, InFlight>,
    job_to_req: BTreeMap<u64, u64>,
    next_req: u64,
    next_job_id: u64,
    crashed: Vec<bool>,
    /// Restarted but not yet routable: the cache warm-up is streaming.
    joining: Vec<bool>,
    /// Entries gathered from survivors at restart, admitted when the
    /// modeled transfer completes: `(object, len, version)`.
    warm_plan: Vec<(u64, u64, u64)>,
    warmup_bytes: u64,
    // Measurement.
    measuring: bool,
    window_closed: bool,
    measure_start: SimTime,
    latency: Histogram,
    requests: u64,
    bytes: u64,
    rejected: u64,
    failures: u64,
    get_ok: u64,
    get_denied: u64,
    put_ok: u64,
    put_denied: u64,
    retried: u64,
    lost: u64,
    cache_hits: u64,
    cache_misses: u64,
    stale_served: u64,
    per_node: Vec<NodePerf>,
    tenants: Vec<TenantPerf>,
}

impl StoreDriver {
    /// Creates the front end over `nodes` (one entry per store node).
    pub fn new(cfg: StoreConfig, nodes: Vec<ClusterNode>, mut rng: Rng) -> StoreDriver {
        assert_eq!(cfg.nodes, nodes.len(), "node list must match config");
        assert!(!cfg.tenants.is_empty(), "a store needs at least one tenant");
        assert!(cfg.tenants.len() < 1 << 16, "tenant id must fit 16 bits");
        assert!(cfg.max_outstanding > 0, "admission needs at least one slot");
        assert!(
            cfg.tenants.iter().all(|t| t.value_bytes > 0),
            "tenant values must be non-empty"
        );
        let n = nodes.len();
        let switch = TorSwitch::new(n, cfg.switch.clone());
        let ring = HashRing::new(n, cfg.vnodes_per_node, cfg.replication);
        let gens: Vec<YcsbGenerator> = cfg
            .tenants
            .iter()
            .map(|t| YcsbGenerator::new(t.workload, t.keys, t.theta))
            .collect();
        let tenant_rngs: Vec<Rng> = cfg.tenants.iter().map(|_| rng.fork()).collect();
        let mean_gap_ns: Vec<f64> = cfg
            .tenants
            .iter()
            .map(|t| {
                // Scans move (1 + max)/2 values per op on average; fold
                // that into the per-op payload so `offered_gbps` is the
                // tenant's *byte* rate, not its op rate.
                let scan_factor = (1.0 + YcsbGenerator::DEFAULT_MAX_SCAN as f64) / 2.0 - 1.0;
                let mean_bytes = t.value_bytes as f64 * (1.0 + t.workload.mix().scan * scan_factor);
                mean_bytes * 8.0 / t.offered_gbps
            })
            .collect();
        let weights: Vec<f64> = cfg.tenants.iter().map(|t| t.weight).collect();
        let tenants = cfg
            .tenants
            .iter()
            .map(|t| TenantPerf {
                name: t.name.clone(),
                slo_ns: t.slo_ns,
                ..Default::default()
            })
            .collect();
        StoreDriver {
            switch,
            ring,
            gens,
            tenant_rngs,
            mean_gap_ns,
            outstanding: vec![0; n],
            free_slots: (0..n)
                .map(|_| (0..cfg.max_outstanding).rev().collect())
                .collect(),
            queues: (0..n)
                .map(|_| QosQueue::new(cfg.qos, &weights, cfg.queue_cap))
                .collect(),
            rr_cursor: 0,
            caches: (0..n).map(|_| ReadCache::new(&cfg.cache)).collect(),
            committed: DetMap::new(),
            inflight: BTreeMap::new(),
            job_to_req: BTreeMap::new(),
            next_req: 1,
            next_job_id: 1,
            crashed: vec![false; n],
            joining: vec![false; n],
            warm_plan: vec![],
            warmup_bytes: 0,
            measuring: false,
            window_closed: false,
            measure_start: SimTime::ZERO,
            latency: Histogram::new(),
            requests: 0,
            bytes: 0,
            rejected: 0,
            failures: 0,
            get_ok: 0,
            get_denied: 0,
            put_ok: 0,
            put_denied: 0,
            retried: 0,
            lost: 0,
            cache_hits: 0,
            cache_misses: 0,
            stale_served: 0,
            per_node: vec![NodePerf::default(); n],
            tenants,
            cfg,
            nodes,
        }
    }

    /// Committed version of a global object (0 = never written).
    fn committed(&self, object: u64) -> u64 {
        self.committed.get(&object).copied().unwrap_or(0)
    }

    /// Maps a global object to its LBA inside a node's flash window, in
    /// the cluster's disjoint GET/PUT window layout. Slot size comes from
    /// the *largest* tenant value so every tenant shares one layout.
    fn lba_for(&self, object: u64, is_read: bool) -> u64 {
        let max_value = self
            .cfg
            .tenants
            .iter()
            .map(|t| t.value_bytes)
            .max()
            .expect("tenants checked non-empty");
        let blocks_per_object = (max_value.div_ceil(4096)) as u64;
        let window_blocks = (4u64 << 30) / 4096;
        let slots = (window_blocks / blocks_per_object).max(1);
        let base = if is_read { 0 } else { window_blocks };
        base + (object % slots) * blocks_per_object
    }

    /// Largest flash read that fits the GET window starting at `object`'s
    /// LBA (a long scan must not run off the window's edge).
    fn clamp_read_len(&self, object: u64, len: usize) -> usize {
        let lba = self.lba_for(object, true);
        let window_blocks = (4u64 << 30) / 4096;
        let room = (window_blocks - lba) * 4096;
        len.min(room as usize)
    }

    fn loads(&self) -> Vec<dcs_cluster::NodeLoad> {
        self.outstanding
            .iter()
            .zip(&self.queues)
            .map(|(&o, q)| dcs_cluster::NodeLoad {
                outstanding: o,
                queued: q.len(),
                penalty: 0,
            })
            .collect()
    }

    fn tally_active(&self) -> bool {
        self.measuring && !self.window_closed
    }

    /// Per-node routing exclusion: crashed nodes and nodes still in their
    /// joining (warm-up) window take no traffic.
    fn unroutable(&self) -> Vec<bool> {
        self.crashed
            .iter()
            .zip(&self.joining)
            .map(|(&c, &j)| c || j)
            .collect()
    }

    fn lane_for(&self, tenant: usize) -> Lane {
        if self.cfg.tenants[tenant].priority {
            Lane::Priority
        } else {
            Lane::Bulk
        }
    }

    /// A request resolved without being served: shed/unroutable (`lost ==
    /// false`) or gone down with the crashed node (`lost == true`).
    fn note_denied(&mut self, tenant: usize, is_write: bool, node: Option<usize>, lost: bool) {
        if !self.tally_active() {
            return;
        }
        if is_write {
            self.put_denied += 1;
        } else {
            self.get_denied += 1;
        }
        self.tenants[tenant].denied += 1;
        if lost {
            self.lost += 1;
            if let Some(n) = node {
                self.per_node[n].lost += 1;
            }
        } else {
            self.rejected += 1;
            if let Some(n) = node {
                self.per_node[n].rejected += 1;
            }
        }
    }

    /// One open-loop arrival for `tenant`: draw the op and route it.
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, tenant: usize) {
        let op = self.gens[tenant].next_op(&mut self.tenant_rngs[tenant]);
        let value = self.cfg.tenants[tenant].value_bytes;
        let len = match op.kind {
            StoreOpKind::Scan { keys } => {
                self.clamp_read_len(object_id(tenant, op.key), keys as usize * value)
            }
            StoreOpKind::Delete => TOMBSTONE_BYTES.min(value),
            _ => value,
        };
        let pend = Pending {
            tenant,
            op,
            len,
            arrival: ctx.now(),
            retries_left: 1,
        };
        self.route_and_admit(ctx, pend);
    }

    /// Picks a node for `pend` (cache affinity for point reads, the LB
    /// policy otherwise, primary-pinned writes), then admits, queues, or
    /// sheds it.
    fn route_and_admit(&mut self, ctx: &mut Ctx<'_>, pend: Pending) {
        let object = object_id(pend.tenant, pend.op.key);
        let is_write = pend.op.kind.is_write();
        let excluded = self.unroutable();
        let node = if is_write {
            // Writes pin to the primary; with the primary crashed (or
            // still joining) they fall back to the next routable replica
            // in ring order.
            let replicas = self.ring.replicas(object);
            let Some(&node) = replicas.iter().find(|&&n| !excluded[n]) else {
                ctx.world().stats.counter("store.unroutable").add(1);
                self.note_denied(pend.tenant, true, None, false);
                return;
            };
            node
        } else {
            let candidates = self.ring.replicas_excluding(object, &excluded);
            if candidates.is_empty() {
                ctx.world().stats.counter("store.unroutable").add(1);
                self.note_denied(pend.tenant, false, None, false);
                return;
            }
            // Cache affinity: a point read goes to a replica already
            // holding the current version, if any.
            let cur = self.committed(object);
            let affine = matches!(pend.op.kind, StoreOpKind::Get)
                .then(|| {
                    candidates
                        .iter()
                        .copied()
                        .find(|&n| self.caches[n].peek(object) == Some(cur))
                })
                .flatten();
            match affine {
                Some(n) => n,
                None => {
                    let loads = self.loads();
                    self.cfg
                        .policy
                        .choose(&candidates, &loads, &mut self.rr_cursor)
                }
            }
        };
        if self.outstanding[node] < self.cfg.max_outstanding {
            self.dispatch(ctx, node, pend);
        } else {
            let tenant = pend.tenant;
            let cost = pend.len as f64;
            match self.queues[node].try_push(tenant, cost, pend) {
                Ok(()) => ctx.world().obs.count("store", "queued", 1),
                Err(shed) => {
                    // The tenant's queue bound is full: shed at the front
                    // end, graceful overload.
                    ctx.world().stats.counter("store.shed").add(1);
                    ctx.world().obs.count("store", "shed", 1);
                    self.note_denied(shed.tenant, is_write, Some(node), false);
                }
            }
        }
    }

    /// Takes the cache decision for `pend` on `node` and sends the
    /// request's bytes through the switch; its jobs are submitted when
    /// the transfer completes.
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, node: usize, pend: Pending) {
        let slot = self.free_slots[node]
            .pop()
            .expect("outstanding < max implies a free slot");
        self.outstanding[node] += 1;
        let req = self.next_req;
        self.next_req += 1;
        let object = object_id(pend.tenant, pend.op.key);
        let cur = self.committed(object);
        // The cache decision: only point reads are eligible, and only a
        // version-current entry may be served. A version mismatch here is
        // the `stale_served` tripwire — it means an invalidation was
        // missed and the old bytes *would* have been served.
        let mut cache_hit = false;
        if matches!(pend.op.kind, StoreOpKind::Get) {
            if let Some(v) = self.caches[node].lookup(object) {
                if v == cur {
                    cache_hit = true;
                } else {
                    self.stale_served += 1;
                    self.caches[node].evict_stale(object);
                    ctx.world().stats.counter("store.stale_lookup").add(1);
                }
            }
        }
        {
            let obs = &mut ctx.world().obs;
            if matches!(pend.op.kind, StoreOpKind::Get) {
                if cache_hit {
                    obs.count("store", "cache.hit", 1);
                } else {
                    obs.count("store", "cache.miss", 1);
                }
            }
        }
        let is_write = pend.op.kind.is_write();
        self.inflight.insert(
            req,
            InFlight {
                tenant: pend.tenant,
                node,
                slot,
                op: pend.op,
                len: pend.len,
                arrival: pend.arrival,
                pending_jobs: 0,
                failed: false,
                cache_hit,
                decision_version: cur,
                retries_left: pend.retries_left,
            },
        );
        let wire_bytes = if is_write {
            pend.len + WRITE_REQ_OVERHEAD
        } else {
            READ_REQ_BYTES
        };
        let lane = self.lane_for(pend.tenant);
        let deliver = self.switch.to_node_lane(ctx.now(), node, wire_bytes, lane);
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.span("store", "uplink", req, now, deliver);
            obs.count("store", "dispatched", 1);
        }
        ctx.send_at(deliver, ctx.self_id(), Delivered { req });
    }

    /// The request reached the node port: run it as real device jobs
    /// (unless the node crashed while the bytes were in flight).
    fn on_delivered(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let Some(r) = self.inflight.get(&req) else {
            // Swept by the crash handler while the bytes were in flight.
            assert!(self.cfg.crash.is_some(), "delivered request is in flight");
            return;
        };
        if self.crashed[r.node] {
            return;
        }
        self.submit_jobs(ctx, req);
    }

    /// Runs the request as real device jobs on its node.
    fn submit_jobs(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let (node, slot, len, op, tenant, cache_hit) = {
            let r = self
                .inflight
                .get(&req)
                .expect("submitted request is in flight");
            (r.node, r.slot, r.len, r.op, r.tenant, r.cache_hit)
        };
        let object = object_id(tenant, op.key);
        let is_write = op.kind.is_write();
        let lba = self.lba_for(object, !is_write);
        let server = &self.nodes[node].server;
        let access = &self.nodes[node].access;
        let reply_to = ctx.self_id();
        let mut id = || {
            let i = self.next_job_id;
            self.next_job_id += 1;
            i
        };
        let slot16 = u16::try_from(slot).expect("slot fits a port");
        let jobs: Vec<(dcs_sim::ComponentId, D2dJob)> = if is_write {
            // Access streams the body down the node link; server receives,
            // verifies, persists.
            let flow = TcpFlow::example(2, 1, 30_000 + slot16, 8_100 + slot16);
            vec![
                (
                    server.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![
                            D2dOp::NicRecv {
                                flow: flow.reversed(),
                                len,
                            },
                            D2dOp::Process {
                                function: NdpFunction::Md5,
                                aux: vec![],
                            },
                            D2dOp::SsdWrite { ssd: 0, lba },
                        ],
                        reply_to,
                        tag: "store-write",
                    },
                ),
                (
                    access.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![
                            D2dOp::SsdRead { ssd: 0, lba, len },
                            D2dOp::NicSend { flow, seq: 0 },
                        ],
                        reply_to,
                        tag: "access",
                    },
                ),
            ]
        } else {
            let flow = TcpFlow::example(1, 2, 20_000 + slot16, 8_000 + slot16);
            let server_ops = if cache_hit {
                // Cache hit: the value comes straight from host DRAM;
                // flash and the integrity hash are skipped (hashed at
                // admission).
                vec![D2dOp::MemRead { len }, D2dOp::NicSend { flow, seq: 0 }]
            } else {
                vec![
                    D2dOp::SsdRead { ssd: 0, lba, len },
                    D2dOp::Process {
                        function: NdpFunction::Md5,
                        aux: vec![],
                    },
                    D2dOp::NicSend { flow, seq: 0 },
                ]
            };
            vec![
                (
                    access.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![D2dOp::NicRecv {
                            flow: flow.reversed(),
                            len,
                        }],
                        reply_to,
                        tag: "access",
                    },
                ),
                (
                    server.submit_to,
                    D2dJob {
                        id: id(),
                        ops: server_ops,
                        reply_to,
                        tag: if cache_hit {
                            "store-read-hit"
                        } else {
                            "store-read"
                        },
                    },
                ),
            ]
        };
        // Front-end/application CPU work on the server (request parsing,
        // HTTP), identical across designs.
        ctx.send_now(
            server.cpu,
            CpuJob {
                token: u64::MAX - req,
                cost_ns: 80_000 + (len / 10) as u64,
                tag: if is_write {
                    "store-app-write"
                } else {
                    "store-app-read"
                },
                reply_to,
            },
        );
        let r = self.inflight.get_mut(&req).expect("still in flight");
        r.pending_jobs = jobs.len();
        {
            let now = ctx.now();
            ctx.world().obs.span_begin("store", "node-serve", req, now);
        }
        for (target, job) in jobs {
            self.job_to_req.insert(job.id, req);
            ctx.send_now(target, job);
        }
    }

    fn on_job_done(&mut self, ctx: &mut Ctx<'_>, done: D2dDone) {
        let Some(req) = self.job_to_req.remove(&done.id) else {
            // Jobs of a failed-over request: swept at the crash already.
            assert!(
                self.cfg.crash.is_some(),
                "completion for unknown job {}",
                done.id
            );
            return;
        };
        let finished = {
            let r = self.inflight.get_mut(&req).expect("live request");
            r.pending_jobs -= 1;
            r.failed |= !done.ok;
            r.pending_jobs == 0
        };
        if !finished {
            return;
        }
        if self.crashed[self.inflight[&req].node] {
            // The response dies with the node.
            return;
        }
        self.ship_response(ctx, req);
    }

    /// All jobs done: ship the response back up through the switch.
    fn ship_response(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let (node, len, is_write, tenant) = {
            let r = &self.inflight[&req];
            (r.node, r.len, r.op.kind.is_write(), r.tenant)
        };
        let resp_bytes = if is_write {
            WRITE_ACK_BYTES
        } else {
            len + READ_RESP_OVERHEAD
        };
        let lane = self.lane_for(tenant);
        let arrive = self
            .switch
            .to_frontend_lane(ctx.now(), node, resp_bytes, lane);
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.span_end("store", "node-serve", req, now);
            obs.span("store", "downlink", req, now, arrive);
        }
        ctx.send_at(arrive, ctx.self_id(), Response { req });
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let Some(r) = self.inflight.remove(&req) else {
            // Swept by the crash handler between completion and arrival.
            assert!(self.cfg.crash.is_some(), "responding request is in flight");
            return;
        };
        self.outstanding[r.node] -= 1;
        self.free_slots[r.node].push(r.slot);
        {
            let now = ctx.now();
            let e2e = now - r.arrival;
            let obs = &mut ctx.world().obs;
            obs.count("store", "responses", 1);
            obs.observe("store", "req.e2e_ns", e2e);
        }
        // The freed slot admits the QoS queue's next pick.
        if !self.window_closed {
            if let Some((_, pend)) = self.queues[r.node].pop() {
                let now = ctx.now();
                let waited = now - pend.arrival;
                ctx.world()
                    .obs
                    .observe("store", "qos.queue_wait_ns", waited);
                self.dispatch(ctx, r.node, pend);
            }
        }
        if !r.failed {
            self.commit_effects(ctx, &r);
        }
        if self.tally_active() {
            let perf = &mut self.per_node[r.node];
            let is_write = r.op.kind.is_write();
            if r.failed {
                self.failures += 1;
                perf.failures += 1;
                if is_write {
                    self.put_denied += 1;
                } else {
                    self.get_denied += 1;
                }
                self.tenants[r.tenant].denied += 1;
            } else {
                self.requests += 1;
                self.bytes += r.len as u64;
                perf.requests += 1;
                perf.bytes += r.len as u64;
                let lat = ctx.now() - r.arrival;
                self.latency.record(lat);
                if is_write {
                    self.put_ok += 1;
                } else {
                    self.get_ok += 1;
                }
                let spec_slo = self.cfg.tenants[r.tenant].slo_ns;
                let t = &mut self.tenants[r.tenant];
                t.ok += 1;
                t.bytes += r.len as u64;
                t.latency.record(lat);
                if spec_slo == 0 || lat <= spec_slo {
                    t.slo_met += 1;
                }
                if matches!(r.op.kind, StoreOpKind::Get) {
                    if r.cache_hit {
                        self.cache_hits += 1;
                        t.cache_hits += 1;
                    } else {
                        self.cache_misses += 1;
                        t.cache_misses += 1;
                    }
                }
            }
        }
    }

    /// State effects of a *successful* response: writes commit (version
    /// bump + cache invalidation everywhere), reads feed the serving
    /// node's cache. Runs regardless of the measurement window — cache
    /// and version state must never depend on when we happen to measure.
    fn commit_effects(&mut self, ctx: &mut Ctx<'_>, r: &InFlight) {
        let object = object_id(r.tenant, r.op.key);
        match r.op.kind {
            StoreOpKind::Put
            | StoreOpKind::Insert
            | StoreOpKind::ReadModifyWrite
            | StoreOpKind::Delete => {
                let v = self.committed(object) + 1;
                self.committed.insert(object, v);
                let mut dropped = 0u64;
                for cache in &mut self.caches {
                    if cache.invalidate(object) {
                        dropped += 1;
                    }
                }
                if dropped > 0 {
                    ctx.world().obs.count("store", "cache.invalidated", dropped);
                }
            }
            StoreOpKind::Get => {
                if !r.cache_hit && self.committed(object) == r.decision_version {
                    // The flash bytes are still current: offer them.
                    self.caches[r.node].admit(object, r.len as u64, r.decision_version, false);
                }
            }
            StoreOpKind::Scan { keys } => {
                // Scan traffic is offered too — AdmitAll lets it flush
                // the hot set (the pollution ablation), ScanResistant
                // refuses it wholesale.
                let value = self.cfg.tenants[r.tenant].value_bytes as u64;
                for i in 0..keys {
                    let Some(key) = r.op.key.checked_add(i) else {
                        break;
                    };
                    if key >= 1 << crate::api::KEY_BITS {
                        break;
                    }
                    let obj = object_id(r.tenant, key);
                    let cur = self.committed(obj);
                    self.caches[r.node].admit(obj, value, cur, true);
                }
            }
        }
    }

    /// The configured fail-stop crash: the node stops dead. In-flight
    /// requests there fail over (one retry each), its parked queue
    /// re-routes, and its read cache is gone.
    fn on_crash(&mut self, ctx: &mut Ctx<'_>) {
        let node = self
            .cfg
            .crash
            .expect("CrashNow only fires when configured")
            .node;
        assert!(node < self.nodes.len(), "crashed node out of range");
        self.crashed[node] = true;
        self.caches[node].clear();
        ctx.world().stats.counter("store.node_crashed").add(1);
        let swept: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, r)| r.node == node)
            .map(|(&k, _)| k)
            .collect();
        for req in swept {
            let r = self
                .inflight
                .remove(&req)
                .expect("swept request is in flight");
            self.outstanding[r.node] -= 1;
            self.free_slots[r.node].push(r.slot);
            self.job_to_req.retain(|_, v| *v != req);
            if r.retries_left > 0 {
                if self.tally_active() {
                    self.retried += 1;
                }
                ctx.world().stats.counter("store.retried").add(1);
                let pend = Pending {
                    tenant: r.tenant,
                    op: r.op,
                    len: r.len,
                    arrival: r.arrival,
                    retries_left: r.retries_left - 1,
                };
                self.route_and_admit(ctx, pend);
            } else {
                self.note_denied(r.tenant, r.op.kind.is_write(), Some(node), true);
            }
        }
        // Parked work re-routes to survivors.
        for (_, pend) in self.queues[node].drain() {
            self.route_and_admit(ctx, pend);
        }
    }

    /// The restart: the node un-crashes with a cold cache and enters its
    /// joining window — excluded from routing — while survivors stream
    /// it a cache warm-up. The warm set is every resident entry a
    /// survivor holds for an object the node replicates, at the version
    /// committed *now*; the transfer is modeled at [`WARMUP_GBPS`] and
    /// the node takes traffic only once it lands.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>, node: usize) {
        assert!(self.crashed[node], "restart of a node that never crashed");
        self.crashed[node] = false;
        self.joining[node] = true;
        ctx.world().stats.counter("store.node_restart").add(1);
        // Gather the warm set in donor order (deterministic: DetMap
        // insertion order per cache, nodes ascending), deduped by object.
        let mut seen: DetSet<u64> = DetSet::new();
        let mut plan: Vec<(u64, u64, u64)> = vec![];
        let mut bytes = 0u64;
        for donor in 0..self.nodes.len() {
            if donor == node || self.crashed[donor] || self.joining[donor] {
                continue;
            }
            for (object, len, version) in self.caches[donor].warm_set() {
                if !self.ring.replicas(object).contains(&node) {
                    continue;
                }
                if version != self.committed(object) {
                    continue;
                }
                if !seen.insert(object) {
                    continue;
                }
                bytes += len;
                plan.push((object, len, version));
            }
        }
        self.warm_plan = plan;
        let delay = if bytes == 0 {
            1
        } else {
            Bandwidth::gbps(WARMUP_GBPS)
                .transfer_time(bytes as usize)
                .max(1)
        };
        ctx.world().obs.count("store", "warmup.bytes", bytes);
        ctx.send_self_in(delay, CacheWarmDone { node });
    }

    /// The warm-up stream landed: admit every entry still at its
    /// committed version (writes during the stream invalidate by simply
    /// not being admitted) and open the node for traffic.
    fn on_cache_warm_done(&mut self, ctx: &mut Ctx<'_>, node: usize) {
        assert!(self.joining[node], "warm-up completion for a routable node");
        let plan = std::mem::take(&mut self.warm_plan);
        for (object, len, version) in plan {
            if version != self.committed(object) {
                continue;
            }
            self.warmup_bytes += len;
            self.caches[node].admit_warm(object, len, version);
        }
        self.joining[node] = false;
        ctx.world().stats.counter("store.node_warmed").add(1);
    }

    fn close_window(&mut self, ctx: &mut Ctx<'_>) {
        self.window_closed = true;
        // Parked requests are abandoned: nothing was submitted for them.
        for q in &mut self.queues {
            q.drain();
        }
        let span = ctx.now() - self.measure_start;
        let stats = ctx.world_ref().get::<CpuStats>();
        for (i, node) in self.nodes.iter().enumerate() {
            self.per_node[i].cpu_utilization = stats
                .map(|s| s.utilization(&node.server.cpu_key, span))
                .unwrap_or(0.0);
        }
        let report = ClusterReport {
            span_ns: span,
            requests: self.requests,
            bytes: self.bytes,
            rejected: self.rejected,
            failures: self.failures,
            get_ok: self.get_ok,
            get_denied: self.get_denied,
            put_ok: self.put_ok,
            put_denied: self.put_denied,
            retried: self.retried,
            lost: self.lost,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            stale_served: self.stale_served,
            warmup_bytes: self.warmup_bytes,
            latency: self.latency.clone(),
            per_node: self.per_node.clone(),
            per_tenant: self.tenants.clone(),
            ..ClusterReport::default()
        };
        ctx.world().insert(StoreOutcome(report));
    }
}

impl Component for StoreDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Start>() {
            Ok(Start) => {
                for t in 0..self.cfg.tenants.len() {
                    let gap = (self.tenant_rngs[t].gen_exp(self.mean_gap_ns[t]) as u64).max(1);
                    ctx.send_self_in(gap, Arrival { tenant: t });
                }
                ctx.send_self_in(self.cfg.warmup_ns, WarmupOver);
                ctx.send_self_in(self.cfg.duration_ns, WindowOver);
                if let Some(c) = self.cfg.crash {
                    assert!(c.node < self.nodes.len(), "crashed node out of range");
                    ctx.send_self_in(c.at_ns, CrashNow);
                    if let Some(restart) = c.restart_at_ns {
                        assert!(restart > c.at_ns, "restart must follow the crash");
                        ctx.send_self_in(restart, RestartNow);
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Arrival>() {
            Ok(Arrival { tenant }) => {
                if !self.window_closed {
                    self.on_arrival(ctx, tenant);
                    let gap =
                        (self.tenant_rngs[tenant].gen_exp(self.mean_gap_ns[tenant]) as u64).max(1);
                    ctx.send_self_in(gap, Arrival { tenant });
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WarmupOver>() {
            Ok(WarmupOver) => {
                self.measuring = true;
                self.measure_start = ctx.now();
                if let Some(stats) = ctx.world().get_mut::<CpuStats>() {
                    stats.reset();
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WindowOver>() {
            Ok(WindowOver) => {
                self.close_window(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CrashNow>() {
            Ok(CrashNow) => {
                self.on_crash(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RestartNow>() {
            Ok(RestartNow) => {
                let node = self
                    .cfg
                    .crash
                    .expect("RestartNow only fires when configured")
                    .node;
                self.on_restart(ctx, node);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CacheWarmDone>() {
            Ok(CacheWarmDone { node }) => {
                self.on_cache_warm_done(ctx, node);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Delivered>() {
            Ok(Delivered { req }) => {
                self.on_delivered(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Response>() {
            Ok(Response { req }) => {
                self.on_response(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(_) => return, // application-charge completion: nothing to do
            Err(m) => m,
        };
        match msg.downcast::<D2dDone>() {
            Ok(done) => self.on_job_done(ctx, done),
            Err(other) => panic!("StoreDriver received unexpected message: {other:?}"),
        }
    }
}
