//! The per-node read cache: bounded bytes, deterministic LRU, and a
//! scan-resistant admission policy.
//!
//! Each node of the store keeps a front-end-owned cache of recently
//! served values. A hit short-circuits the NVMe path entirely — the GET
//! runs as a `MemRead → NicSend` pipeline instead of
//! `SsdRead → MD5 → NicSend` — so a skewed read mix serves its hot head
//! at DRAM speed while the flash stays free for the cold tail.
//!
//! Two properties matter more than raw hit rate:
//!
//! * **Determinism.** Recency is a monotonic stamp per entry over a
//!   [`DetMap`], and eviction scans for the minimum stamp (ties broken by
//!   insertion order). No wall clock, no hash-order iteration — the same
//!   request stream always produces the same evictions.
//! * **Scan resistance.** A YCSB-E scan touches a long run of keys
//!   exactly once; admitting them would flush the hot head for bytes that
//!   will never be re-read. Under [`Admission::ScanResistant`], scan
//!   traffic is never admitted and point reads must prove themselves on a
//!   small *ghost list* (key-only, no bytes) before their second touch
//!   earns residency. [`Admission::AdmitAll`] is the ablation arm that
//!   shows the pollution.
//!
//! Versions are the *caller's* concern: the cache stores the version each
//! value was admitted at, [`ReadCache::lookup`] returns it, and the store
//! driver compares it against the committed version before serving — the
//! `stale_served` tripwire in the cluster report counts any mismatch that
//! would have been served.

use dcs_sim::DetMap;

/// What gets admitted into the cache on a successful flash read.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Admission {
    /// Admit every read, scans included (the pollution ablation).
    AdmitAll,
    /// Never admit scan traffic; point reads are admitted on their second
    /// touch (first touch only records the key on the ghost list).
    #[default]
    ScanResistant,
}

/// Cache provisioning for every node of the store.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Value-byte budget per node; 0 disables the cache entirely.
    pub capacity_bytes: u64,
    /// Admission policy.
    pub admission: Admission,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 0,
            admission: Admission::ScanResistant,
        }
    }
}

/// A resident value (metadata only — the simulation never stores the
/// actual bytes, the node's flash model owns them).
#[derive(Clone, Copy, Debug)]
struct Entry {
    len: u64,
    version: u64,
    stamp: u64,
}

/// One node's read cache. See the module docs for the policy.
#[derive(Debug)]
pub struct ReadCache {
    capacity: u64,
    admission: Admission,
    bytes: u64,
    clock: u64,
    entries: DetMap<u64, Entry>,
    /// Keys seen exactly once (no bytes held), stamped for LRU trimming.
    ghost: DetMap<u64, u64>,
    ghost_cap: usize,
    /// Entries dropped because their version no longer matched.
    pub stale_evicted: u64,
    /// Admissions refused because the read came from a scan.
    pub scan_rejected: u64,
}

impl ReadCache {
    /// Creates an empty cache with `cfg`'s budget and policy.
    pub fn new(cfg: &CacheConfig) -> ReadCache {
        // The ghost list holds keys, not bytes; give it room proportional
        // to the cache (as if entries were 4 KiB) so a hot set larger than
        // one touch can still prove itself, but bounded.
        let ghost_cap = (cfg.capacity_bytes / 4096).clamp(64, 4096) as usize;
        ReadCache {
            capacity: cfg.capacity_bytes,
            admission: cfg.admission,
            bytes: 0,
            clock: 0,
            entries: DetMap::new(),
            ghost: DetMap::new(),
            ghost_cap,
            stale_evicted: 0,
            scan_rejected: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks `key` up, bumping its recency. Returns the version the value
    /// was admitted at; the caller decides whether that version is still
    /// servable.
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        let stamp = self.tick();
        let e = self.entries.get_mut(&key)?;
        e.stamp = stamp;
        Some(e.version)
    }

    /// Non-mutating probe (no recency bump): the version `key` is cached
    /// at, if resident. Used for cache-affinity routing.
    pub fn peek(&self, key: u64) -> Option<u64> {
        self.entries.get(&key).map(|e| e.version)
    }

    /// Offers a successfully read value for residency. `from_scan` marks
    /// bytes produced by a range scan.
    pub fn admit(&mut self, key: u64, len: u64, version: u64, from_scan: bool) {
        if self.capacity == 0 || len == 0 || len > self.capacity {
            return;
        }
        let stamp = self.tick();
        if let Some(e) = self.entries.get_mut(&key) {
            // Already resident: refresh version and recency in place.
            let old = e.len;
            e.len = len;
            e.version = version;
            e.stamp = stamp;
            self.bytes = self.bytes - old + len;
            self.evict_to_fit(0);
            return;
        }
        if self.admission == Admission::ScanResistant {
            if from_scan {
                self.scan_rejected += 1;
                return;
            }
            if self.ghost.remove(&key).is_none() {
                // First touch: remember the key, hold no bytes.
                let stamp = self.tick();
                self.ghost.insert(key, stamp);
                self.trim_ghost();
                return;
            }
            // Second touch: fall through and admit.
        }
        self.evict_to_fit(len);
        let stamp = self.tick();
        self.entries.insert(
            key,
            Entry {
                len,
                version,
                stamp,
            },
        );
        self.bytes += len;
    }

    /// Snapshot of the resident set, insertion-ordered: `(key, len,
    /// version)` per entry. Feeds the warm-up transfer to a rejoining
    /// node — the caller filters by ring membership and version currency.
    pub fn warm_set(&self) -> Vec<(u64, u64, u64)> {
        self.entries
            .iter()
            .map(|(&k, e)| (k, e.len, e.version))
            .collect()
    }

    /// Admits a warm-up entry directly: no ghost-list probation (the
    /// value already proved itself hot on the donor node) and no scan
    /// gate. The byte budget still holds.
    pub fn admit_warm(&mut self, key: u64, len: u64, version: u64) {
        if self.capacity == 0 || len == 0 || len > self.capacity {
            return;
        }
        let stamp = self.tick();
        if let Some(e) = self.entries.get_mut(&key) {
            let old = e.len;
            e.len = len;
            e.version = version;
            e.stamp = stamp;
            self.bytes = self.bytes - old + len;
            self.evict_to_fit(0);
            return;
        }
        self.evict_to_fit(len);
        self.entries.insert(
            key,
            Entry {
                len,
                version,
                stamp,
            },
        );
        self.bytes += len;
    }

    /// Drops `key` if resident (a write committed a newer version).
    /// Returns whether anything was dropped.
    pub fn invalidate(&mut self, key: u64) -> bool {
        self.ghost.remove(&key);
        match self.entries.remove(&key) {
            Some(e) => {
                self.bytes -= e.len;
                true
            }
            None => false,
        }
    }

    /// Drops a value whose cached version went stale at lookup time.
    pub fn evict_stale(&mut self, key: u64) {
        if self.invalidate(key) {
            self.stale_evicted += 1;
        }
    }

    /// Empties the cache (the node crashed or was drained).
    pub fn clear(&mut self) {
        self.entries = DetMap::new();
        self.ghost = DetMap::new();
        self.bytes = 0;
    }

    /// Evicts least-recently-used entries until `incoming` more bytes fit.
    fn evict_to_fit(&mut self, incoming: u64) {
        while self.bytes + incoming > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k)
                .expect("over budget implies a resident entry");
            let e = self.entries.remove(&victim).expect("victim resident");
            self.bytes -= e.len;
        }
    }

    fn trim_ghost(&mut self) {
        while self.ghost.len() > self.ghost_cap {
            let victim = self
                .ghost
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&k, _)| k)
                .expect("non-empty ghost");
            self.ghost.remove(&victim);
        }
    }

    /// Resident value bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: u64, admission: Admission) -> ReadCache {
        ReadCache::new(&CacheConfig {
            capacity_bytes: capacity,
            admission,
        })
    }

    /// Admit under AdmitAll (single touch suffices).
    fn put(c: &mut ReadCache, key: u64, len: u64) {
        c.admit(key, len, 1, false);
    }

    #[test]
    fn byte_budget_evicts_lru_deterministically() {
        let mut c = cache(10_000, Admission::AdmitAll);
        put(&mut c, 1, 4000);
        put(&mut c, 2, 4000);
        assert_eq!(c.lookup(1), Some(1), "touch key 1 so key 2 is the LRU");
        put(&mut c, 3, 4000); // must evict key 2
        assert_eq!(c.lookup(2), None);
        assert_eq!(c.lookup(1), Some(1));
        assert_eq!(c.lookup(3), Some(1));
        assert!(c.bytes() <= 10_000);
    }

    #[test]
    fn scan_resistant_needs_two_touches_and_never_admits_scans() {
        let mut c = cache(1 << 20, Admission::ScanResistant);
        c.admit(7, 4096, 1, false);
        assert_eq!(c.lookup(7), None, "first touch only ghosts the key");
        c.admit(7, 4096, 1, false);
        assert_eq!(c.lookup(7), Some(1), "second touch earns residency");
        for k in 100..200 {
            c.admit(k, 4096, 1, true);
            c.admit(k, 4096, 1, true);
        }
        assert_eq!(c.len(), 1, "scan bytes never enter, even on re-touch");
        assert_eq!(c.scan_rejected, 200);
        // AdmitAll is the pollution arm: the same scan floods it.
        let mut all = cache(1 << 20, Admission::AdmitAll);
        for k in 100..200 {
            all.admit(k, 4096, 1, true);
        }
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn invalidate_and_clear_release_bytes() {
        let mut c = cache(1 << 20, Admission::AdmitAll);
        put(&mut c, 1, 1000);
        put(&mut c, 2, 2000);
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1), "second invalidate is a no-op");
        assert_eq!(c.bytes(), 2000);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.lookup(2), None);
    }

    #[test]
    fn versions_round_trip_and_stale_eviction_counts() {
        let mut c = cache(1 << 20, Admission::AdmitAll);
        c.admit(9, 512, 3, false);
        assert_eq!(c.lookup(9), Some(3));
        assert_eq!(c.peek(9), Some(3));
        c.evict_stale(9);
        assert_eq!(c.stale_evicted, 1);
        assert_eq!(c.lookup(9), None);
    }

    #[test]
    fn warm_set_round_trips_without_probation() {
        let mut donor = cache(1 << 20, Admission::AdmitAll);
        donor.admit(1, 1000, 3, false);
        donor.admit(2, 2000, 5, false);
        let warm = donor.warm_set();
        assert_eq!(warm, vec![(1, 1000, 3), (2, 2000, 5)]);
        // A scan-resistant receiver admits warm entries on first touch.
        let mut joiner = cache(1 << 20, Admission::ScanResistant);
        for (k, len, v) in warm {
            joiner.admit_warm(k, len, v);
        }
        assert_eq!(joiner.lookup(1), Some(3));
        assert_eq!(joiner.lookup(2), Some(5));
        assert_eq!(joiner.bytes(), 3000);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let mut c = cache(0, Admission::AdmitAll);
        put(&mut c, 1, 1);
        assert_eq!(c.lookup(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn oversized_values_are_refused_not_thrashed() {
        let mut c = cache(4096, Admission::AdmitAll);
        put(&mut c, 1, 4096);
        put(&mut c, 2, 8192); // bigger than the whole cache
        assert_eq!(c.lookup(1), Some(1), "resident set untouched");
        assert_eq!(c.lookup(2), None);
    }

    #[test]
    fn ghost_list_is_bounded() {
        let mut c = cache(1 << 20, Admission::ScanResistant);
        // Far more one-touch keys than the ghost can hold.
        for k in 0..100_000u64 {
            c.admit(k, 4096, 1, false);
        }
        assert!(c.ghost.len() <= c.ghost_cap);
        assert!(c.is_empty());
    }
}
