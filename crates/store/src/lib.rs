//! # dcs-store — a multi-tenant object-store service layer over the DCS rack
//!
//! `dcs-cluster` answers *what does the HDC Engine buy a rack*; this crate
//! answers the next question up the stack: *what does it buy a serving
//! system with real tenants?* It layers a typed object-store service —
//! GET/PUT/DELETE/SCAN over per-tenant namespaces — on top of the cluster
//! substrate (consistent-hash sharding, ToR switch, per-node admission),
//! and adds the three mechanisms a shared store lives or dies by:
//!
//! * **Workloads** — each tenant runs one of the YCSB A–F mixes
//!   ([`dcs_workloads::ycsb`]) over its own keyspace with its own zipfian
//!   skew, offered load, and arrival process.
//! * **Read caching** — every node fronts its flash with a byte-bounded,
//!   deterministic-LRU read cache ([`ReadCache`]); a hit serves the value
//!   from host DRAM as a `MemRead → NicSend` pipeline, skipping NVMe and
//!   the integrity hash entirely. A scan-resistant admission policy keeps
//!   YCSB-E range scans from flushing the hot set, and version-checked
//!   lookups (invalidated at write commit) keep every hit current — the
//!   report's `stale_served` tripwire counts any would-be violation.
//! * **QoS** — when a node saturates, parked requests are ordered by
//!   start-time weighted fair queueing with per-tenant bounds
//!   ([`FairQueue`]), so a noisy neighbor cannot starve a compliant
//!   tenant of queue space or dispatch share; FIFO is the ablation arm.
//!   Latency-critical tenants may additionally ride the ToR's
//!   strict-priority lane ([`Lane::Priority`](dcs_cluster::Lane)). Each
//!   tenant's p50/p99/p999 and SLO attainment land in the
//!   [`ClusterReport`]'s per-tenant rows.
//!
//! ```
//! use dcs_store::{run_store, StoreConfig, TenantSpec};
//! use dcs_store::cache::{Admission, CacheConfig};
//! use dcs_workloads::ycsb::YcsbWorkload;
//!
//! let report = run_store(&StoreConfig {
//!     nodes: 2,
//!     tenants: vec![TenantSpec::new("hot", YcsbWorkload::C)],
//!     cache: CacheConfig { capacity_bytes: 64 << 20, admission: Admission::ScanResistant },
//!     duration_ns: dcs_sim::time::ms(3),
//!     warmup_ns: dcs_sim::time::ms(1),
//!     ..StoreConfig::default()
//! });
//! assert_eq!(report.stale_served, 0);
//! ```

pub mod api;
pub mod cache;
pub mod driver;
pub mod qos;

pub use api::{object_id, Crash, StoreConfig, TenantSpec};
pub use cache::{Admission, CacheConfig, ReadCache};
pub use driver::{StoreDriver, StoreOutcome};
pub use qos::{FairQueue, QosPolicy, QosQueue};

use dcs_cluster::{ClusterNode, ClusterReport};
use dcs_sim::{ComponentId, Simulator};
use dcs_workloads::build_testbed_nodes;

/// A built (but not yet run) store.
pub struct Store {
    /// The simulator holding every node and the front end.
    pub sim: Simulator,
    /// The front-end driver component.
    pub frontend: ComponentId,
    /// The nodes, indexed consistently with the shard map and report.
    pub nodes: Vec<ClusterNode>,
}

/// Builds the store: N server/access node pairs (named `s{i}` / `s{i}-fe`,
/// which keys their CPU-stats pools) and the started front end. Device
/// bring-up is settled before traffic begins.
///
/// # Panics
///
/// Panics if `cfg.nodes` is zero or `cfg.tenants` is empty.
pub fn build_store(cfg: &StoreConfig) -> Store {
    assert!(cfg.nodes > 0, "a store needs at least one node");
    let mut sim = Simulator::new(cfg.seed);
    let mut nodes = Vec::with_capacity(cfg.nodes);
    for i in 0..cfg.nodes {
        let (server, access) = build_testbed_nodes(
            &mut sim,
            cfg.design,
            &cfg.testbed,
            &format!("s{i}"),
            &format!("s{i}-fe"),
        );
        nodes.push(ClusterNode { server, access });
    }
    // Settle bring-up (queue attach, ring config) before traffic starts.
    sim.run();
    let rng = sim.world_mut().rng.fork();
    let frontend = sim.add(
        "store-frontend",
        StoreDriver::new(cfg.clone(), nodes.clone(), rng),
    );
    sim.kickoff(frontend, driver::Start);
    Store {
        sim,
        frontend,
        nodes,
    }
}

/// Builds the store, runs it to completion, and returns the measured
/// report (per-tenant rows populated).
///
/// # Panics
///
/// Panics if the simulation fails to drain or no report was produced.
pub fn run_store(cfg: &StoreConfig) -> ClusterReport {
    let mut store = build_store(cfg);
    store.sim.run();
    assert!(store.sim.is_idle(), "store simulation must drain");
    store
        .sim
        .world_mut()
        .remove::<StoreOutcome>()
        .expect("store run leaves a report in the world")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_workloads::ycsb::YcsbWorkload;

    fn quick_cfg(tenants: Vec<TenantSpec>) -> StoreConfig {
        StoreConfig {
            nodes: 2,
            tenants,
            duration_ns: dcs_sim::time::ms(4),
            warmup_ns: dcs_sim::time::ms(1),
            ..StoreConfig::default()
        }
    }

    #[test]
    fn two_tenant_smoke_populates_per_tenant_rows() {
        let mut gold = TenantSpec::new("gold", YcsbWorkload::C);
        gold.offered_gbps = 1.5;
        let mut mixed = TenantSpec::new("mixed", YcsbWorkload::A);
        mixed.offered_gbps = 1.0;
        let r = run_store(&quick_cfg(vec![gold, mixed]));
        assert!(r.requests > 0, "{}", r.render("smoke"));
        assert_eq!(r.per_tenant.len(), 2);
        assert_eq!(r.per_tenant[0].name, "gold");
        assert!(r.per_tenant[0].ok > 0, "gold saw traffic");
        assert!(r.per_tenant[1].ok > 0, "mixed saw traffic");
        assert_eq!(r.stale_served, 0);
        // Workload C issues no writes; A is half writes.
        assert!(r.put_ok > 0, "workload A writes landed");
        assert!(r.get_ok > r.put_ok, "reads dominate the combined mix");
        // The render includes the tenant rows.
        let text = r.render("store");
        assert!(text.contains("tenant gold"), "{text}");
    }

    #[test]
    fn read_cache_serves_hits_and_cuts_latency() {
        let mut hot = TenantSpec::new("hot", YcsbWorkload::C);
        hot.keys = 64;
        hot.theta = 0.99;
        hot.offered_gbps = 4.0;
        let base = StoreConfig {
            duration_ns: dcs_sim::time::ms(6),
            warmup_ns: dcs_sim::time::ms(2),
            ..quick_cfg(vec![hot])
        };
        let cold = run_store(&base);
        let warm = run_store(&StoreConfig {
            cache: CacheConfig {
                capacity_bytes: 256 << 20,
                admission: Admission::AdmitAll,
            },
            ..base
        });
        assert_eq!(cold.cache_hits, 0, "no cache, no hits");
        assert!(
            warm.cache_hit_rate() > 0.5,
            "zipfian C over 512 keys should mostly hit: {:.2}",
            warm.cache_hit_rate()
        );
        assert_eq!(warm.stale_served, 0);
        assert!(
            warm.latency_us(50.0) < cold.latency_us(50.0),
            "hits skip flash: p50 {} vs {} us",
            warm.latency_us(50.0),
            cold.latency_us(50.0)
        );
    }

    #[test]
    fn writes_invalidate_and_never_serve_stale() {
        // Update-heavy A with a cache: every PUT must invalidate, and the
        // version tripwire must stay silent.
        let mut t = TenantSpec::new("ab", YcsbWorkload::A);
        t.keys = 256;
        t.offered_gbps = 1.5;
        let r = run_store(&StoreConfig {
            cache: CacheConfig {
                capacity_bytes: 64 << 20,
                admission: Admission::AdmitAll,
            },
            ..quick_cfg(vec![t])
        });
        assert!(r.put_ok > 0);
        assert!(r.cache_hits > 0, "the read half still hits between writes");
        assert_eq!(
            r.stale_served, 0,
            "invalidation on commit keeps hits current"
        );
    }

    #[test]
    fn store_run_is_deterministic() {
        let mut t = TenantSpec::new("det", YcsbWorkload::B);
        t.offered_gbps = 1.2;
        let cfg = StoreConfig {
            cache: CacheConfig {
                capacity_bytes: 32 << 20,
                admission: Admission::ScanResistant,
            },
            ..quick_cfg(vec![t])
        };
        let a = run_store(&cfg);
        let b = run_store(&cfg);
        assert_eq!(a.render("x"), b.render("x"), "byte-identical reports");
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.cache_hits, b.cache_hits);
    }

    #[test]
    fn priority_lane_tenant_runs_end_to_end() {
        let mut prio = TenantSpec::new("prio", YcsbWorkload::C);
        prio.priority = true;
        prio.offered_gbps = 0.5;
        let r = run_store(&quick_cfg(vec![prio]));
        assert!(r.requests > 0);
        assert_eq!(r.stale_served, 0);
    }
}
