//! The store's typed surface: tenants, namespaces, and experiment
//! configuration.
//!
//! A *tenant* is a named keyspace with its own YCSB workload, offered
//! load, fair-queueing weight, latency SLO, and (optionally) a seat on the
//! ToR's strict-priority lane. Keys are per-tenant; the store maps
//! `(tenant, key)` onto one global object id (tenant in the top 16 bits)
//! so the cluster's consistent-hash ring, replication, and flash layout
//! apply unchanged while namespaces stay disjoint by construction.

use dcs_cluster::SwitchConfig;
use dcs_workloads::ycsb::YcsbWorkload;
use dcs_workloads::{DesignUnderTest, TestbedConfig};

use crate::cache::CacheConfig;
use crate::qos::QosPolicy;

use dcs_cluster::LbPolicy;

/// Bits of the global object id holding the per-tenant key.
pub const KEY_BITS: u32 = 48;

/// Packs a tenant's key into the global object-id space.
///
/// # Panics
///
/// Panics if `key` overflows the 48-bit per-tenant keyspace.
pub fn object_id(tenant: usize, key: u64) -> u64 {
    assert!(
        key < 1 << KEY_BITS,
        "key {key} overflows the tenant keyspace"
    );
    ((tenant as u64) << KEY_BITS) | key
}

/// One tenant of the store.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Namespace name (report label).
    pub name: String,
    /// The tenant's YCSB workload letter.
    pub workload: YcsbWorkload,
    /// Initial keyspace size (inserts grow it).
    pub keys: u64,
    /// Zipfian skew of the tenant's key popularity.
    pub theta: f64,
    /// Value size, bytes (YCSB uses fixed-size values).
    pub value_bytes: usize,
    /// The tenant's offered load, Gbps of value payload.
    pub offered_gbps: f64,
    /// Fair-queueing weight (share of a contended node's service).
    pub weight: f64,
    /// Latency objective for the SLO-attainment tally, ns (0 = no SLO).
    pub slo_ns: u64,
    /// Ride the ToR's strict-priority lane instead of the bulk queues.
    pub priority: bool,
}

impl TenantSpec {
    /// A tenant with defaults matching the standard YCSB shape: 16 Ki
    /// keys, theta 0.99, 16 KiB values, 1 Gbps offered, weight 1, a 10 ms
    /// SLO, bulk lane.
    pub fn new(name: &str, workload: YcsbWorkload) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            workload,
            keys: 16 * 1024,
            theta: 0.99,
            value_bytes: 16 * 1024,
            offered_gbps: 1.0,
            weight: 1.0,
            slo_ns: dcs_sim::time::ms(10),
            priority: false,
        }
    }
}

/// Full description of a store experiment.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of store nodes.
    pub nodes: usize,
    /// Design each node runs (the HDC Engine, or a software baseline).
    pub design: DesignUnderTest,
    /// Load-balancing policy for reads without cache affinity.
    pub policy: LbPolicy,
    /// Replica count per object.
    pub replication: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes_per_node: usize,
    /// The tenants sharing the store.
    pub tenants: Vec<TenantSpec>,
    /// Per-node read-cache provisioning.
    pub cache: CacheConfig,
    /// Admission-queue ordering on contended nodes.
    pub qos: QosPolicy,
    /// Total run length.
    pub duration_ns: u64,
    /// Warm-up trimmed from measurements.
    pub warmup_ns: u64,
    /// Per-node concurrent request limit (admission control).
    pub max_outstanding: usize,
    /// Per-tenant admission-queue bound per node (FIFO shares
    /// `queue_cap × tenants`; WFQ gives each tenant its own `queue_cap`).
    pub queue_cap: usize,
    /// Top-of-rack switch provisioning.
    pub switch: SwitchConfig,
    /// Per-node testbed parameters (SSD count, node wire).
    pub testbed: TestbedConfig,
    /// Simulation seed (drives every tenant's arrivals and key draws).
    pub seed: u64,
    /// Optional fail-stop crash of one node mid-run.
    pub crash: Option<Crash>,
}

/// A fail-stop whole-node crash: at `at_ns` the node stops dead, its
/// in-flight requests fail over to surviving replicas (one retry), and
/// its read cache is discarded.
#[derive(Clone, Copy, Debug)]
pub struct Crash {
    /// Node to crash.
    pub node: usize,
    /// When to crash it (ns after traffic start).
    pub at_ns: u64,
    /// When to restart it (ns after traffic start; must exceed `at_ns`).
    /// The node comes back with a cold cache and spends a *joining*
    /// window — excluded from routing — while survivors stream it a
    /// cache warm-up (their resident entries for objects it replicates,
    /// at committed versions); only then does it take traffic again.
    /// `None` leaves the node down for good.
    pub restart_at_ns: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            nodes: 4,
            design: DesignUnderTest::DcsCtrl,
            policy: LbPolicy::JoinShortestQueue,
            replication: 2,
            vnodes_per_node: 256,
            tenants: vec![TenantSpec::new("default", YcsbWorkload::C)],
            cache: CacheConfig::default(),
            qos: QosPolicy::Wfq,
            duration_ns: dcs_sim::time::ms(30),
            warmup_ns: dcs_sim::time::ms(5),
            max_outstanding: 48,
            queue_cap: 64,
            switch: SwitchConfig::default(),
            testbed: TestbedConfig::default(),
            seed: 0x570E,
            crash: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_ids_keep_namespaces_disjoint() {
        assert_eq!(object_id(0, 7), 7);
        assert_ne!(object_id(1, 7), object_id(2, 7));
        assert_eq!(object_id(3, 0) >> KEY_BITS, 3);
        // Different tenants can never collide, whatever their keys.
        assert_ne!(object_id(0, (1 << KEY_BITS) - 1), object_id(1, 0));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_keys_are_rejected() {
        object_id(0, 1 << KEY_BITS);
    }
}
