//! End-to-end tests of the baseline designs (Linux / SwOpt / SwP2p):
//! the same D2D jobs the HDC Engine runs, executed by host software over
//! identical device models.

use dcs_host::job::{D2dDone, D2dJob, D2dOp};
use dcs_host::{build_pair, CpuStats, HostNode, HostNodeBuilder, SwDesign};
use dcs_ndp::{md5::md5, NdpFunction};
use dcs_nic::{TcpFlow, WireConfig};
use dcs_pcie::PhysMemory;
use dcs_sim::{time, Category, Component, ComponentId, Ctx, Msg, Simulator};

#[derive(Default, Debug)]
struct Inbox(Vec<D2dDone>);

struct App;

#[derive(Debug)]
struct Submit {
    to: ComponentId,
    job: D2dJob,
}

impl Component for App {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Submit>() {
            Ok(Submit { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg
            .downcast::<D2dDone>()
            .expect("app receives job completions");
        ctx.world().stats.counter("app.done").add(1);
        if done.ok {
            ctx.world().stats.counter("app.ok").add(1);
        }
        if ctx.world().get::<Inbox>().is_none() {
            ctx.world().insert(Inbox::default());
        }
        ctx.world().expect_mut::<Inbox>().0.push(done);
    }
}

struct Rig {
    sim: Simulator,
    a: HostNode,
    b: HostNode,
    app: ComponentId,
}

fn setup(design: SwDesign) -> Rig {
    let mut sim = Simulator::new(9);
    let (a, b) = build_pair(
        &mut sim,
        &HostNodeBuilder::new("alpha", design),
        &HostNodeBuilder::new("beta", design),
        WireConfig::default(),
    );
    let app = sim.add("app", App);
    sim.run();
    Rig { sim, a, b, app }
}

fn run_read_hash_send(design: SwDesign) -> (Rig, D2dDone) {
    let mut rig = setup(design);
    let len = 16 * 1024;
    let payload: Vec<u8> = (0..len).map(|i| (i * 11 % 250) as u8).collect();
    rig.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(rig.a.ssds[0].lba_addr(40), &payload);
    let job = D2dJob {
        id: 1,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 40,
                len,
            },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 40_000, 9000),
                seq: 0,
            },
        ],
        reply_to: rig.app,
        tag: "micro",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.executor,
            job,
        },
    );
    rig.sim.run();
    assert_eq!(
        rig.sim.world().stats.counter_value("app.ok"),
        1,
        "{design:?}"
    );
    let done = rig
        .sim
        .world()
        .expect::<Inbox>()
        .0
        .last()
        .expect("one result")
        .clone();
    // Digest correctness regardless of design.
    assert_eq!(
        done.digest.as_deref(),
        Some(md5(&payload).as_slice()),
        "{design:?}"
    );
    (rig, done)
}

#[test]
fn swopt_read_hash_send_works_and_accounts_gpu() {
    let (rig, done) = run_read_hash_send(SwDesign::SwOpt);
    let bd = &done.breakdown;
    assert!(bd.get(Category::GpuControl) > 0, "gpu control must appear");
    assert!(bd.get(Category::GpuCopy) > 0, "host->gpu copy must appear");
    assert!(bd.get(Category::Read) > time::us(10));
    assert!(bd.get(Category::DeviceControl) > 0);
    // CPU accounting exists for the node.
    let stats = rig.sim.world().expect::<CpuStats>();
    assert!(stats.pool("alpha").unwrap().tracker.total_busy() > 0);
}

#[test]
fn linux_costs_more_cpu_than_swopt() {
    let (rig_linux, _) = run_read_hash_send(SwDesign::Linux);
    let (rig_opt, _) = run_read_hash_send(SwDesign::SwOpt);
    let busy = |rig: &Rig| {
        rig.sim
            .world()
            .expect::<CpuStats>()
            .pool("alpha")
            .unwrap()
            .tracker
            .total_busy()
    };
    assert!(
        busy(&rig_linux) > busy(&rig_opt),
        "vanilla kernel must burn more CPU: {} vs {}",
        busy(&rig_linux),
        busy(&rig_opt)
    );
}

#[test]
fn swp2p_reduces_gpu_copy_latency_vs_swopt() {
    let (_, done_opt) = run_read_hash_send(SwDesign::SwOpt);
    let (_, done_p2p) = run_read_hash_send(SwDesign::SwP2p);
    // P2P reads straight into GPU memory: the explicit host->GPU staging
    // copy disappears (digest read-back may keep a sliver).
    assert!(
        done_p2p.breakdown.get(Category::GpuCopy) < done_opt.breakdown.get(Category::GpuCopy),
        "p2p {} vs opt {}",
        done_p2p.breakdown.get(Category::GpuCopy),
        done_opt.breakdown.get(Category::GpuCopy)
    );
    // And total latency drops.
    assert!(done_p2p.breakdown.total() < done_opt.breakdown.total());
}

#[test]
fn send_and_receive_across_nodes_via_baselines() {
    let mut rig = setup(SwDesign::SwOpt);
    let len = 32 * 1024;
    let payload: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
    rig.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(rig.a.ssds[0].lba_addr(0), &payload);
    let flow = TcpFlow::example(1, 2, 50_000, 9100);
    let send = D2dJob {
        id: 1,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len,
            },
            D2dOp::NicSend { flow, seq: 0 },
        ],
        reply_to: rig.app,
        tag: "send",
    };
    let recv = D2dJob {
        id: 2,
        ops: vec![
            D2dOp::NicRecv {
                flow: flow.reversed(),
                len,
            },
            D2dOp::Process {
                function: NdpFunction::Crc32,
                aux: vec![],
            },
            D2dOp::SsdWrite { ssd: 0, lba: 600 },
        ],
        reply_to: rig.app,
        tag: "recv",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.b.executor,
            job: recv,
        },
    );
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.executor,
            job: send,
        },
    );
    rig.sim.run();
    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 2);
    let on_b = rig
        .sim
        .world()
        .expect::<PhysMemory>()
        .read(rig.b.ssds[0].lba_addr(600), len);
    assert_eq!(
        on_b, payload,
        "payload must land intact on the remote flash"
    );
    // The receive side's CRC digest matches a direct computation.
    let crc = dcs_ndp::crc32::crc32(&payload).to_be_bytes();
    let inbox = rig.sim.world().expect::<Inbox>();
    let recv_done = inbox.0.iter().find(|d| d.id == 2).expect("recv completion");
    assert_eq!(recv_done.digest.as_deref(), Some(crc.as_slice()));
}

#[test]
fn cpu_hash_fallback_when_no_gpu() {
    let mut sim = Simulator::new(3);
    let mut builder = HostNodeBuilder::new("alpha", SwDesign::SwOpt);
    builder.gpu = None;
    let (a, _b) = build_pair(
        &mut sim,
        &builder,
        &HostNodeBuilder::new("beta", SwDesign::SwOpt),
        WireConfig::default(),
    );
    let app = sim.add("app", App);
    sim.run();
    let len = 8192;
    let payload = vec![7u8; len];
    sim.world_mut()
        .expect_mut::<PhysMemory>()
        .write(a.ssds[0].lba_addr(0), &payload);
    let job = D2dJob {
        id: 5,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len,
            },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
        ],
        reply_to: app,
        tag: "cpu-hash",
    };
    sim.kickoff(
        app,
        Submit {
            to: a.executor,
            job,
        },
    );
    sim.run();
    assert_eq!(sim.world().stats.counter_value("app.ok"), 1);
    let inbox = sim.world().expect::<Inbox>();
    assert_eq!(inbox.0[0].digest.as_deref(), Some(md5(&payload).as_slice()));
    // Hash time charged to the CPU.
    let bd = &inbox.0[0].breakdown;
    assert!(bd.get(Category::Hash) > 0);
    assert_eq!(bd.get(Category::GpuControl), 0);
}

#[test]
fn failed_device_op_propagates_not_ok() {
    let mut rig = setup(SwDesign::SwOpt);
    let job = D2dJob {
        id: 9,
        ops: vec![D2dOp::SsdRead {
            ssd: 0,
            lba: u64::MAX / 8192,
            len: 4096,
        }],
        reply_to: rig.app,
        tag: "bad",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.executor,
            job,
        },
    );
    rig.sim.run();
    assert_eq!(rig.sim.world().stats.counter_value("app.done"), 1);
    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 0);
}
