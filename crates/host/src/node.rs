//! Wiring helpers: assemble a full host node (CPU pool, PCIe fabric,
//! devices, drivers, executor) and pair two nodes over a wire.
//!
//! Scenarios and benchmarks build their testbeds through
//! [`HostNodeBuilder`]; the returned [`HostNode`] carries every id and
//! address a workload needs.

use dcs_gpu::{install_gpu, GpuConfig, GpuHandle};
use dcs_nic::{install_nic, install_wire, NicConfig, NicHandle, WireConfig};
use dcs_nvme::{install_nvme, NvmeConfig, NvmeHandle};
use dcs_pcie::{AddrRange, MmioRouting, PcieConfig, PcieFabric, PhysAddr, PhysMemory, PortId};
use dcs_sim::{ComponentId, Simulator};

use crate::costs::KernelCosts;
use crate::cpu::CpuPool;
use crate::executor::{ExecutorWiring, SwDesign, SwExecutor};
use crate::gpu_driver::HostGpuDriver;
use crate::nic_driver::{HostNicDriver, NicDriverConfig, StartNicDriver};
use crate::nvme_driver::HostNvmeDriver;

/// Declarative description of a host node.
#[derive(Clone, Debug)]
pub struct HostNodeBuilder {
    /// Node name (prefixes component and region names; keys CPU stats).
    pub name: String,
    /// CPU cores.
    pub cores: usize,
    /// Baseline personality the node's executor runs.
    pub design: SwDesign,
    /// Kernel cost model.
    pub costs: KernelCosts,
    /// One config per SSD to mount.
    pub ssds: Vec<NvmeConfig>,
    /// Attach a GPU accelerator?
    pub gpu: Option<GpuConfig>,
    /// NIC device parameters.
    pub nic: NicConfig,
    /// NIC driver parameters.
    pub nic_driver: NicDriverConfig,
    /// Per-job staging slot size (bounds the largest payload).
    pub slot_len: u64,
    /// Number of staging slots (bounds in-flight jobs).
    pub slots: u64,
}

impl HostNodeBuilder {
    /// A sensible default node: 6 cores (Table V's Xeon E5-2630), one SSD,
    /// a GPU, 10 GbE NIC.
    pub fn new(name: &str, design: SwDesign) -> Self {
        HostNodeBuilder {
            name: name.to_string(),
            cores: 6,
            design,
            costs: KernelCosts::default(),
            ssds: vec![NvmeConfig::default()],
            gpu: Some(GpuConfig::default()),
            nic: NicConfig::default(),
            nic_driver: NicDriverConfig::default(),
            slot_len: 4 << 20,
            slots: 64,
        }
    }
}

/// A fully wired host node.
#[derive(Debug, Clone)]
pub struct HostNode {
    /// Node name.
    pub name: String,
    /// CPU pool component (stats key = node name).
    pub cpu: ComponentId,
    /// Core count.
    pub cores: usize,
    /// The node's PCIe fabric.
    pub fabric: ComponentId,
    /// Host DRAM region.
    pub dram: AddrRange,
    /// Mounted SSDs.
    pub ssds: Vec<NvmeHandle>,
    /// NVMe driver per SSD.
    pub nvme_drivers: Vec<ComponentId>,
    /// The NIC.
    pub nic: NicHandle,
    /// The NIC driver.
    pub nic_driver: ComponentId,
    /// GPU, if attached.
    pub gpu: Option<GpuHandle>,
    /// GPU driver, if attached.
    pub gpu_driver: Option<ComponentId>,
    /// The node's baseline executor.
    pub executor: ComponentId,
    /// Staging area used by the executor.
    pub staging: AddrRange,
    /// Free DRAM for workload buffers.
    free_base: PhysAddr,
    free_len: u64,
}

impl HostNode {
    /// Bump-allocates a page-aligned workload buffer from node DRAM.
    ///
    /// # Panics
    ///
    /// Panics when node DRAM is exhausted.
    pub fn alloc(&mut self, len: u64) -> PhysAddr {
        let len = len.div_ceil(4096) * 4096;
        assert!(len <= self.free_len, "node {} DRAM exhausted", self.name);
        let addr = self.free_base;
        self.free_base = self.free_base + len;
        self.free_len -= len;
        addr
    }
}

/// Builds a node against an already-installed wire endpoint.
///
/// `nic_id` must be a reserved component id that the wire was created
/// with; this function installs the NIC into it.
pub fn build_node(
    sim: &mut Simulator,
    builder: &HostNodeBuilder,
    nic_id: ComponentId,
    wire: ComponentId,
) -> HostNode {
    let name = &builder.name;
    // Per-node PCIe switch: the root port plus one port per device.
    let ports = 2 + builder.ssds.len() + usize::from(builder.gpu.is_some()) + 1;
    let fabric = sim.add(
        &format!("{name}-pcie"),
        PcieFabric::new(PcieConfig {
            ports,
            ..PcieConfig::default()
        }),
    );
    let cpu = sim.add(&format!("{name}-cpu"), CpuPool::new(name, builder.cores));
    let dram = sim.world_mut().expect_mut::<PhysMemory>().alloc_region(
        &format!("{name}-dram"),
        2 << 30,
        PortId::ROOT,
    );

    let mut next_port = 1u16;
    let mut port = || {
        let p = PortId(next_port);
        next_port += 1;
        p
    };

    // SSDs + drivers.
    let mut ssds = Vec::new();
    let mut nvme_drivers = Vec::new();
    let mut dram_off = 0u64;
    for (i, cfg) in builder.ssds.iter().enumerate() {
        let ssd = install_nvme(sim, fabric, cfg.clone(), &format!("{name}-ssd{i}"), port());
        let rings = AddrRange::new(dram.start + dram_off, 1 << 20);
        dram_off += 1 << 20;
        let msi_addr = dram.start + dram_off;
        dram_off += 4096;
        let driver_id = sim.reserve(&format!("{name}-nvme-driver{i}"));
        let (driver, attach) = HostNvmeDriver::new(
            cpu,
            fabric,
            ssd.clone(),
            builder.costs.clone(),
            builder.design.kernel_mode(),
            rings,
            msi_addr,
        );
        sim.install(driver_id, driver);
        sim.world_mut()
            .expect_mut::<MmioRouting>()
            .claim(AddrRange::new(msi_addr, 0x100), driver_id);
        sim.kickoff(ssd.device, attach);
        ssds.push(ssd);
        nvme_drivers.push(driver_id);
    }

    // NIC + driver.
    let nic = install_nic(
        sim,
        nic_id,
        fabric,
        wire,
        builder.nic.clone(),
        &format!("{name}-nic"),
        port(),
    );
    let nic_area = AddrRange::new(dram.start + dram_off, 8 << 20);
    dram_off += 8 << 20;
    let nic_msi = dram.start + dram_off;
    dram_off += 4096;
    let nic_driver_id = sim.reserve(&format!("{name}-nic-driver"));
    let (nic_driver, configure) = HostNicDriver::new(
        cpu,
        fabric,
        nic.clone(),
        builder.costs.clone(),
        NicDriverConfig {
            mode: builder.design.kernel_mode(),
            ..builder.nic_driver.clone()
        },
        nic_area,
        nic_msi,
    );
    sim.install(nic_driver_id, nic_driver);
    sim.world_mut()
        .expect_mut::<MmioRouting>()
        .claim(AddrRange::new(nic_msi, 0x100), nic_driver_id);
    sim.kickoff(nic.device, configure);
    sim.kickoff(nic_driver_id, StartNicDriver);

    // GPU + driver.
    let (gpu, gpu_driver) = match &builder.gpu {
        Some(cfg) => {
            let handle = install_gpu(sim, cfg.clone(), &format!("{name}-gpu"), port());
            let driver = sim.add(
                &format!("{name}-gpu-driver"),
                HostGpuDriver::new(cpu, handle.clone(), builder.costs.clone()),
            );
            (Some(handle), Some(driver))
        }
        None => (None, None),
    };

    // Executor + staging.
    let staging_len = builder.slot_len * builder.slots;
    let staging = AddrRange::new(dram.start + dram_off, staging_len);
    dram_off += staging_len;
    let wiring = ExecutorWiring {
        cpu,
        fabric,
        nvme_drivers: nvme_drivers.clone(),
        nic_driver: nic_driver_id,
        gpu: gpu_driver.and_then(|d| gpu.clone().map(|h| (d, h))),
        staging_base: staging.start,
        slot_len: builder.slot_len,
        slots: builder.slots,
    };
    let executor = sim.add(
        &format!("{name}-executor"),
        SwExecutor::new(builder.design, wiring, builder.costs.clone()),
    );

    let free_base = dram.start + dram_off;
    let free_len = dram.len - dram_off;
    HostNode {
        name: name.clone(),
        cpu,
        cores: builder.cores,
        fabric,
        dram,
        ssds,
        nvme_drivers,
        nic,
        nic_driver: nic_driver_id,
        gpu,
        gpu_driver,
        executor,
        staging,
        free_base,
        free_len,
    }
}

/// Builds two nodes joined by a wire (the paper's two-node testbed).
///
/// Installs `PhysMemory` and `MmioRouting` into the world if absent.
pub fn build_pair(
    sim: &mut Simulator,
    a: &HostNodeBuilder,
    b: &HostNodeBuilder,
    wire_cfg: WireConfig,
) -> (HostNode, HostNode) {
    if sim.world().get::<PhysMemory>().is_none() {
        sim.world_mut().insert(PhysMemory::new());
    }
    if sim.world().get::<MmioRouting>().is_none() {
        sim.world_mut().insert(MmioRouting::new());
    }
    let nic_a = sim.reserve(&format!("{}-nic", a.name));
    let nic_b = sim.reserve(&format!("{}-nic", b.name));
    let wire = install_wire(sim, wire_cfg, nic_a, nic_b);
    let node_a = build_node(sim, a, nic_a, wire);
    let node_b = build_node(sim, b, nic_b, wire);
    (node_a, node_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_builds_and_allocates() {
        let mut sim = Simulator::new(1);
        let (mut a, b) = build_pair(
            &mut sim,
            &HostNodeBuilder::new("alpha", SwDesign::SwOpt),
            &HostNodeBuilder::new("beta", SwDesign::SwOpt),
            WireConfig::default(),
        );
        assert_eq!(a.ssds.len(), 1);
        assert!(a.gpu.is_some());
        assert_ne!(a.nic.device, b.nic.device);
        let b1 = a.alloc(100);
        let b2 = a.alloc(5000);
        assert_eq!(b1.as_u64() % 4096, 0);
        assert!(b2 > b1);
        // Initial configuration messages must drain cleanly.
        sim.run();
        assert!(sim.is_idle());
    }

    #[test]
    fn node_without_gpu_builds() {
        let mut sim = Simulator::new(1);
        let mut builder = HostNodeBuilder::new("nogpu", SwDesign::Linux);
        builder.gpu = None;
        let (node, _) = build_pair(
            &mut sim,
            &builder,
            &HostNodeBuilder::new("peer", SwDesign::Linux),
            WireConfig::default(),
        );
        assert!(node.gpu.is_none());
        assert!(node.gpu_driver.is_none());
        sim.run();
    }

    #[test]
    #[should_panic(expected = "DRAM exhausted")]
    fn alloc_exhaustion_panics() {
        let mut sim = Simulator::new(1);
        let (mut a, _) = build_pair(
            &mut sim,
            &HostNodeBuilder::new("a", SwDesign::SwOpt),
            &HostNodeBuilder::new("b", SwDesign::SwOpt),
            WireConfig::default(),
        );
        a.alloc(4 << 30);
    }
}
