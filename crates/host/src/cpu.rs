//! The host CPU pool: software routines run as timed jobs on cores.
//!
//! Every kernel-path cost from [`costs`](crate::costs) is charged by
//! submitting a [`CpuJob`]; the pool serializes jobs onto the
//! earliest-available core (work-conserving), records busy time per tag in
//! the world-resident [`CpuStats`], and notifies the submitter when the job
//! retires. Utilization figures (3b, 8, 12, 13) are read out of `CpuStats`
//! after a run.

use dcs_sim::DetMap;

use dcs_sim::{BusyTracker, Component, ComponentId, Ctx, Msg, ServerBank, SimTime};

/// A timed unit of software work.
#[derive(Debug, Clone)]
pub struct CpuJob {
    /// Requester-chosen token echoed in [`CpuJobDone`].
    pub token: u64,
    /// CPU time the routine occupies, in ns.
    pub cost_ns: u64,
    /// Utilization-breakdown tag (e.g. `"kernel-get"`, `"gpu-control"`).
    pub tag: &'static str,
    /// Component notified on retirement.
    pub reply_to: ComponentId,
}

/// Notifies the submitter that its job retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuJobDone {
    /// Token from the originating [`CpuJob`].
    pub token: u64,
}

/// World-resident CPU accounting, keyed by pool name (one pool per node).
#[derive(Debug, Default)]
pub struct CpuStats {
    pools: DetMap<String, PoolStats>,
}

/// Accounting for one pool.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Busy time per tag.
    pub tracker: BusyTracker,
    /// Number of cores in the pool.
    pub cores: usize,
    /// Retired job count.
    pub jobs: u64,
}

impl CpuStats {
    /// Empty accounting.
    pub fn new() -> Self {
        CpuStats::default()
    }

    /// The stats for `pool`, if that pool has executed anything.
    pub fn pool(&self, pool: &str) -> Option<&PoolStats> {
        self.pools.get(pool)
    }

    /// Utilization of `pool` over `[0, span_ns]` as a fraction of its
    /// total core capacity; zero if the pool never ran a job.
    pub fn utilization(&self, pool: &str, span_ns: u64) -> f64 {
        self.pools
            .get(pool)
            .map(|p| p.tracker.utilization(span_ns, p.cores as f64))
            .unwrap_or(0.0)
    }

    /// Per-tag utilization breakdown for `pool` over a span.
    pub fn breakdown(&self, pool: &str, span_ns: u64) -> Vec<(String, f64)> {
        self.pools
            .get(pool)
            .map(|p| p.tracker.utilization_breakdown(span_ns, p.cores as f64))
            .unwrap_or_default()
    }

    /// Clears accounting for every pool (used to discard warm-up).
    pub fn reset(&mut self) {
        for p in self.pools.values_mut() {
            p.tracker.reset();
            p.jobs = 0;
        }
    }

    fn record(&mut self, pool: &str, cores: usize, tag: &str, cost: u64) {
        let entry = self
            .pools
            .entry(pool.to_string())
            .or_insert_with(|| PoolStats {
                tracker: BusyTracker::new(),
                cores,
                jobs: 0,
            });
        entry.tracker.record(tag, cost);
        entry.jobs += 1;
    }
}

/// Internal: a job's service time has elapsed.
#[derive(Debug)]
struct JobRetired {
    token: u64,
    reply_to: ComponentId,
}

/// The CPU pool component.
pub struct CpuPool {
    name: String,
    cores: ServerBank,
}

impl CpuPool {
    /// A pool of `cores` identical cores named `name` (the name keys
    /// [`CpuStats`] entries).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(name: &str, cores: usize) -> Self {
        CpuPool {
            name: name.to_string(),
            cores: ServerBank::new(cores),
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }
}

impl Component for CpuPool {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<CpuJob>() {
            Ok(job) => {
                let done: SimTime = self.cores.offer(ctx.now(), job.cost_ns);
                let cores = self.cores.len();
                {
                    let world = ctx.world();
                    if world.get::<CpuStats>().is_none() {
                        world.insert(CpuStats::new());
                    }
                    world
                        .expect_mut::<CpuStats>()
                        .record(&self.name, cores, job.tag, job.cost_ns);
                }
                let delay = done - ctx.now();
                ctx.send_self_in(
                    delay,
                    JobRetired {
                        token: job.token,
                        reply_to: job.reply_to,
                    },
                );
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<JobRetired>() {
            Ok(JobRetired { token, reply_to }) => {
                ctx.send_now(reply_to, CpuJobDone { token });
            }
            Err(other) => panic!("CpuPool received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_sim::{time, Simulator};

    struct Submitter {
        pool: ComponentId,
        done: Vec<(u64, SimTime)>,
    }

    #[derive(Debug)]
    struct Fire(Vec<CpuJob>);

    impl Component for Submitter {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<Fire>() {
                Ok(Fire(jobs)) => {
                    for j in jobs {
                        let pool = self.pool;
                        ctx.send_now(pool, j);
                    }
                    return;
                }
                Err(m) => m,
            };
            let d = msg
                .downcast::<CpuJobDone>()
                .expect("submitter gets job completions");
            self.done.push((d.token, ctx.now()));
            ctx.world().stats.counter("sub.done").add(1);
        }
    }

    #[test]
    fn single_core_serializes_jobs() {
        let mut sim = Simulator::new(0);
        let pool = sim.add("cpu", CpuPool::new("node0", 1));
        let me = sim.reserve("sub");
        sim.install(me, Submitter { pool, done: vec![] });
        let jobs: Vec<CpuJob> = (0..3)
            .map(|i| CpuJob {
                token: i,
                cost_ns: time::us(10),
                tag: "work",
                reply_to: me,
            })
            .collect();
        sim.kickoff(me, Fire(jobs));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_us(30));
        assert_eq!(sim.world().stats.counter_value("sub.done"), 3);
        let stats = sim.world().expect::<CpuStats>();
        assert_eq!(stats.pool("node0").unwrap().jobs, 3);
        assert!((stats.utilization("node0", time::us(30)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_core_pool_runs_jobs_in_parallel() {
        let mut sim = Simulator::new(0);
        let pool = sim.add("cpu", CpuPool::new("node0", 4));
        let me = sim.reserve("sub");
        sim.install(me, Submitter { pool, done: vec![] });
        let jobs: Vec<CpuJob> = (0..4)
            .map(|i| CpuJob {
                token: i,
                cost_ns: time::us(5),
                tag: "work",
                reply_to: me,
            })
            .collect();
        sim.kickoff(me, Fire(jobs));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_us(5));
        // 4 * 5us busy over 5us span on 4 cores = 100%; on 8 "cores" = 50%.
        let stats = sim.world().expect::<CpuStats>();
        assert!((stats.utilization("node0", time::us(5)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_by_tag_and_reset() {
        let mut sim = Simulator::new(0);
        let pool = sim.add("cpu", CpuPool::new("node0", 2));
        let me = sim.reserve("sub");
        sim.install(me, Submitter { pool, done: vec![] });
        sim.kickoff(
            me,
            Fire(vec![
                CpuJob {
                    token: 0,
                    cost_ns: 100,
                    tag: "kernel",
                    reply_to: me,
                },
                CpuJob {
                    token: 1,
                    cost_ns: 300,
                    tag: "driver",
                    reply_to: me,
                },
            ]),
        );
        sim.run();
        let stats = sim.world_mut().expect_mut::<CpuStats>();
        let breakdown = stats.breakdown("node0", 400);
        let total: f64 = breakdown.iter().map(|(_, f)| f).sum();
        assert!((total - 0.5).abs() < 1e-9, "{breakdown:?}");
        stats.reset();
        assert_eq!(stats.pool("node0").unwrap().jobs, 0);
    }

    #[test]
    fn unknown_pool_reads_as_zero() {
        let stats = CpuStats::new();
        assert_eq!(stats.utilization("ghost", 100), 0.0);
        assert!(stats.breakdown("ghost", 100).is_empty());
        assert!(stats.pool("ghost").is_none());
    }
}
