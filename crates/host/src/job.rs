//! The design-independent description of a multi-device task.
//!
//! A [`D2dJob`] is what the paper calls a *D2D command* at the application
//! level: a pipeline of device operations with optional intermediate
//! processing, e.g. `SSD read → MD5 → NIC send` (Figure 11b) or
//! `NIC recv → CRC32 → SSD write` (the HDFS receiver). Every executor —
//! the baselines in this crate and the HDC Engine in `dcs-core` — accepts
//! the same job type and reports the same completion shape, so experiment
//! code swaps designs without touching workloads.

use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::{Breakdown, ComponentId};

/// One step of a multi-device task.
#[derive(Debug, Clone)]
pub enum D2dOp {
    /// Read `len` bytes starting at `lba` from SSD `ssd`; the data becomes
    /// the pipeline payload.
    SsdRead {
        /// Index of the SSD (nodes may mount several).
        ssd: usize,
        /// Starting logical block.
        lba: u64,
        /// Bytes to read (multiple of the 4 KiB block size).
        len: usize,
    },
    /// Write the current payload to SSD `ssd` starting at `lba`.
    SsdWrite {
        /// Index of the SSD.
        ssd: usize,
        /// Starting logical block.
        lba: u64,
    },
    /// Apply an NDP/accelerator function to the payload. Digest functions
    /// leave the payload unchanged and record the digest in the
    /// completion; transforms replace the payload.
    Process {
        /// The function to apply.
        function: NdpFunction,
        /// Function-specific parameters (AES key‖nonce).
        aux: Vec<u8>,
    },
    /// Transmit the payload on an established connection.
    NicSend {
        /// The connection (as retrieved from the kernel).
        flow: TcpFlow,
        /// Starting TCP sequence number.
        seq: u32,
    },
    /// Receive exactly `len` payload bytes of `flow` (becomes the
    /// pipeline payload).
    NicRecv {
        /// The connection being received on.
        flow: TcpFlow,
        /// Bytes to accumulate before the op completes.
        len: usize,
    },
    /// Materialize `len` bytes from host DRAM — a node's read cache — as
    /// the pipeline payload, skipping the flash path entirely. The store
    /// layer emits this for cache-hit GETs; the only cost is the memory
    /// copy into the staging buffer.
    MemRead {
        /// Bytes to copy out of the cache.
        len: usize,
    },
}

impl D2dOp {
    /// Short label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            D2dOp::SsdRead { .. } => "ssd-read",
            D2dOp::SsdWrite { .. } => "ssd-write",
            D2dOp::Process { .. } => "process",
            D2dOp::NicSend { .. } => "nic-send",
            D2dOp::NicRecv { .. } => "nic-recv",
            D2dOp::MemRead { .. } => "mem-read",
        }
    }
}

/// A complete multi-device task submitted to an executor.
#[derive(Debug, Clone)]
pub struct D2dJob {
    /// Requester-chosen identifier echoed in [`D2dDone`].
    pub id: u64,
    /// Pipeline steps, executed in order.
    pub ops: Vec<D2dOp>,
    /// Component notified on completion.
    pub reply_to: ComponentId,
    /// Utilization tag under which this job's CPU work is recorded
    /// (e.g. `"kernel-get"` vs `"kernel-put"` for Figure 12a).
    pub tag: &'static str,
}

/// Completion report for a [`D2dJob`].
#[derive(Debug, Clone)]
pub struct D2dDone {
    /// Identifier from the originating job.
    pub id: u64,
    /// Whether every step succeeded.
    pub ok: bool,
    /// Per-category latency breakdown of the whole job.
    pub breakdown: Breakdown,
    /// Digest produced by the last digest-type [`D2dOp::Process`] step, if
    /// any.
    pub digest: Option<Vec<u8>>,
    /// Payload length at pipeline exit.
    pub payload_len: usize,
}

/// The communication designs the paper compares (Table I / Figure 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Design {
    /// Vanilla host-centric kernel (Figure 8's "Linux").
    Linux,
    /// Optimized kernel stacks, data staged through host DRAM.
    SwOpt,
    /// Optimized kernel + P2P data paths where devices allow.
    SwP2p,
    /// Idealized consolidated device (Figure 3 reference).
    DeviceIntegration,
    /// The paper's contribution: HDC Engine control + data paths.
    DcsCtrl,
}

impl Design {
    /// All designs in presentation order.
    pub const ALL: [Design; 5] = [
        Design::Linux,
        Design::SwOpt,
        Design::SwP2p,
        Design::DeviceIntegration,
        Design::DcsCtrl,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Design::Linux => "Linux",
            Design::SwOpt => "SW opt",
            Design::SwP2p => "SW-ctrl P2P",
            Design::DeviceIntegration => "Device integration",
            Design::DcsCtrl => "DCS-ctrl",
        }
    }
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_labels_cover_all_variants() {
        let ops = [
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len: 4096,
            },
            D2dOp::SsdWrite { ssd: 0, lba: 0 },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 3, 4),
                seq: 0,
            },
            D2dOp::NicRecv {
                flow: TcpFlow::example(1, 2, 3, 4),
                len: 4096,
            },
            D2dOp::MemRead { len: 4096 },
        ];
        let labels: Vec<_> = ops.iter().map(|o| o.label()).collect();
        assert_eq!(
            labels,
            vec![
                "ssd-read",
                "ssd-write",
                "process",
                "nic-send",
                "nic-recv",
                "mem-read"
            ]
        );
    }

    #[test]
    fn design_labels_match_paper() {
        assert_eq!(Design::SwP2p.label(), "SW-ctrl P2P");
        assert_eq!(Design::DcsCtrl.to_string(), "DCS-ctrl");
        assert_eq!(Design::ALL.len(), 5);
    }
}
