//! The host NIC driver and TCP/IP stack model.
//!
//! Transmit: per-operation socket/TCP setup plus per-packet work on the
//! CPU, then a descriptor + doorbell to the NIC (LSO pushes segmentation
//! into hardware, as the optimized baselines of the paper assume).
//!
//! Receive: the NIC lands whole frames in driver-posted buffers; the
//! driver's interrupt path charges per-packet TCP processing and then
//! *gathers* payload bytes into the consumer's contiguous buffer with CPU
//! copies — the "data gathering problem" (§V-C2) that costs the software
//! designs so dearly on receive-heavy workloads and that the HDC Engine
//! solves with packet-gathering hardware.

use std::collections::{HashMap, VecDeque};

use dcs_nic::headers::{build_template, parse_frame};
use dcs_nic::{
    ConfigureNic, NicHandle, RecvDescriptor, RecvWriteback, RingWriter, SendDescriptor, TcpFlow,
};
use dcs_pcie::{AddrRange, MmioWrite, MsiDelivery, PhysAddr, PhysMemory};
use dcs_sim::{Breakdown, Category, Component, ComponentId, Ctx, Msg, SimTime};

use crate::costs::{KernelCosts, KernelMode};
use crate::cpu::{CpuJob, CpuJobDone};

/// Driver-local layout and tuning.
#[derive(Clone, Debug)]
pub struct NicDriverConfig {
    /// Kernel mode (vanilla pays socket-buffer and extra copy costs).
    pub mode: KernelMode,
    /// Number of 2 KiB receive buffers kept posted.
    pub recv_buffers: u16,
    /// MSS assumed for LSO descriptors.
    pub mss: u16,
}

impl Default for NicDriverConfig {
    fn default() -> Self {
        NicDriverConfig { mode: KernelMode::Optimized, recv_buffers: 512, mss: 1448 }
    }
}

/// Transmit `len` payload bytes at `payload_addr` on `flow`.
#[derive(Debug, Clone)]
pub struct SendRequest {
    /// Requester-chosen identifier echoed in [`SendDone`].
    pub id: u64,
    /// Established connection to transmit on.
    pub flow: TcpFlow,
    /// Starting sequence number.
    pub seq: u32,
    /// Contiguous payload location (host memory, or device memory in P2P
    /// designs — the NIC gathers from wherever the descriptor points).
    pub payload_addr: PhysAddr,
    /// Payload length in bytes.
    pub len: usize,
    /// CPU-utilization tag.
    pub tag: &'static str,
    /// Component notified on completion.
    pub reply_to: ComponentId,
}

/// Completion of a [`SendRequest`].
#[derive(Debug, Clone)]
pub struct SendDone {
    /// Identifier from the originating request.
    pub id: u64,
    /// Latency breakdown (network-stack CPU, device control, wire).
    pub breakdown: Breakdown,
}

/// Ask the driver to accumulate `len` received payload bytes of `flow`
/// into `into` (contiguous).
#[derive(Debug, Clone)]
pub struct RecvExpect {
    /// Requester-chosen identifier echoed in [`RecvDone`].
    pub id: u64,
    /// Connection to receive on (matched by source port of arriving
    /// frames).
    pub flow: TcpFlow,
    /// Payload bytes to accumulate.
    pub len: usize,
    /// Destination buffer for the gathered payload.
    pub into: PhysAddr,
    /// CPU-utilization tag.
    pub tag: &'static str,
    /// Component notified when `len` bytes have been gathered.
    pub reply_to: ComponentId,
}

/// Completion of a [`RecvExpect`].
#[derive(Debug, Clone)]
pub struct RecvDone {
    /// Identifier from the originating expectation.
    pub id: u64,
    /// Latency breakdown (per-packet network stack time, gather copies).
    pub breakdown: Breakdown,
}

struct PendingSend {
    req: SendRequest,
    stack_ns: u64,
    submitted_at: SimTime,
    /// Transmit descriptors still outstanding (large sends split at the
    /// LSO limit).
    descs_remaining: usize,
}

struct Expectation {
    req: RecvExpect,
    received: usize,
    stack_ns: u64,
    copy_ns: u64,
    started_at: SimTime,
}

enum CpuPhase {
    TxSubmit,
    RxBatch { frames: Vec<(TcpFlow, Vec<u8>)>, copy_ns: u64, stack_ns: u64 },
    TxComplete,
}

/// The driver component. One instance drives one NIC.
pub struct HostNicDriver {
    cpu: ComponentId,
    fabric: ComponentId,
    nic: NicHandle,
    costs: KernelCosts,
    config: NicDriverConfig,
    send_ring: RingWriter,
    recv_ring: RingWriter,
    wb_base: PhysAddr,
    /// Receive frame buffers (2 KiB each), reposted cyclically.
    recv_bufs: PhysAddr,
    /// Header template staging, one 64-byte slot per in-flight send.
    hdr_area: PhysAddr,
    /// Next write-back slot to scan.
    wb_next: u16,
    /// In-flight sends, completed in FIFO order by the NIC's tx MSIs.
    tx_queue: VecDeque<u64>,
    tx_submit_queue: VecDeque<u64>,
    sends: HashMap<u64, PendingSend>,
    /// Active receive expectations, served in arrival order per flow.
    expectations: Vec<Expectation>,
    /// Payload bytes that arrived before any matching expectation.
    early: HashMap<(u16, u16), VecDeque<u8>>,
    cpu_phases: HashMap<u64, CpuPhase>,
    next_cpu_token: u64,
    hdr_slot: u64,
    /// Frames consumed since the last buffer repost.
    consumed_since_repost: u16,
}

impl HostNicDriver {
    /// Ring depths used by the driver.
    pub const SEND_DEPTH: u16 = 2048;

    /// Creates the driver and the NIC configuration message the caller
    /// must deliver to the device. `area` must provide ≳4 MiB of host
    /// memory; `msi_addr` (16 bytes) must be claimed for this component.
    pub fn new(
        cpu: ComponentId,
        fabric: ComponentId,
        nic: NicHandle,
        costs: KernelCosts,
        config: NicDriverConfig,
        area: AddrRange,
        msi_addr: PhysAddr,
    ) -> (Self, ConfigureNic) {
        let send_base = area.start;
        let recv_base = area.start + 0x10000;
        let wb_base = area.start + 0x20000;
        let hdr_area = area.start + 0x30000;
        let recv_bufs = area.start + 0x100000;
        let recv_depth = config.recv_buffers + 1;
        let configure = ConfigureNic {
            send_ring_base: send_base,
            send_ring_depth: Self::SEND_DEPTH,
            recv_ring_base: recv_base,
            recv_ring_depth: recv_depth,
            wb_ring_base: wb_base,
            tx_msi_addr: msi_addr,
            tx_msi_vector: 0x20,
            rx_msi_addr: msi_addr + 8,
            rx_msi_vector: 0x21,
        };
        let driver = HostNicDriver {
            cpu,
            fabric,
            nic,
            costs,
            config,
            send_ring: RingWriter::new(send_base, SendDescriptor::SIZE, Self::SEND_DEPTH),
            recv_ring: RingWriter::new(recv_base, RecvDescriptor::SIZE, recv_depth),
            wb_base,
            recv_bufs,
            hdr_area,
            wb_next: 0,
            tx_queue: VecDeque::new(),
            tx_submit_queue: VecDeque::new(),
            sends: HashMap::new(),
            expectations: Vec::new(),
            early: HashMap::new(),
            cpu_phases: HashMap::new(),
            next_cpu_token: 1,
            hdr_slot: 0,
            consumed_since_repost: 0,
        };
        (driver, configure)
    }

    /// Posts the initial receive buffers; call once after the NIC has been
    /// configured (the driver does it lazily on first message otherwise).
    fn post_recv_buffers(&mut self, ctx: &mut Ctx<'_>, count: u16) {
        {
            let mem = ctx.world().expect_mut::<PhysMemory>();
            for _ in 0..count {
                let idx = self.recv_ring.tail();
                let buf = self.recv_bufs + idx as u64 * 2048;
                let d = RecvDescriptor { buf_addr: buf, buf_len: 2048 };
                self.recv_ring.push(mem, &d.to_bytes());
            }
        }
        let tail = self.recv_ring.tail();
        let db = self.nic.rx_doorbell();
        let fabric = self.fabric;
        ctx.send_now(fabric, MmioWrite { addr: db, data: (tail as u32).to_le_bytes().to_vec() });
    }

    fn cpu_job(&mut self, ctx: &mut Ctx<'_>, cost: u64, tag: &'static str, phase: CpuPhase) {
        let token = self.next_cpu_token;
        self.next_cpu_token += 1;
        self.cpu_phases.insert(token, phase);
        let cpu = self.cpu;
        ctx.send_now(cpu, CpuJob { token, cost_ns: cost, tag, reply_to: ctx.self_id() });
    }

    fn on_send(&mut self, ctx: &mut Ctx<'_>, req: SendRequest) {
        let packets = req.len.div_ceil(self.config.mss as usize).max(1);
        let mut stack_ns = self.costs.net_tx_cost(self.config.mode, packets);
        if self.config.mode == KernelMode::Vanilla {
            // Stock kernel copies user data into socket buffers.
            stack_ns += self.costs.copy_cost(req.len);
        }
        let id = req.id;
        let tag = req.tag;
        self.sends.insert(
            id,
            PendingSend { req, stack_ns, submitted_at: ctx.now(), descs_remaining: 0 },
        );
        self.tx_submit_queue.push_back(id);
        self.cpu_job(ctx, stack_ns, tag, CpuPhase::TxSubmit);
    }

    fn submit_send(&mut self, ctx: &mut Ctx<'_>) {
        let id = self.tx_submit_queue.pop_front().expect("a send awaited this CPU job");
        // Sends larger than the LSO limit split into multiple descriptors
        // (as real TSO does, one skb per 64 KiB), completing when the last
        // one leaves the adapter.
        const LSO_MAX: usize = 64 * 1024;
        let (flow, seq0, payload_addr, len) = {
            let s = self.sends.get_mut(&id).expect("live send");
            s.submitted_at = ctx.now();
            (s.req.flow, s.req.seq, s.req.payload_addr, s.req.len)
        };
        let chunks: Vec<(u64, usize)> = if len == 0 {
            vec![(0, 0)]
        } else {
            (0..len)
                .step_by(LSO_MAX)
                .map(|off| (off as u64, LSO_MAX.min(len - off)))
                .collect()
        };
        self.sends.get_mut(&id).expect("live send").descs_remaining = chunks.len();
        for (off, chunk_len) in chunks {
            let template = build_template(&flow, seq0.wrapping_add(off as u32), 0);
            let hdr_addr = self.hdr_area + (self.hdr_slot % 2048) * 64;
            self.hdr_slot += 1;
            let desc = SendDescriptor {
                header_addr: hdr_addr,
                header_len: template.len() as u16,
                payload_addr: payload_addr + off,
                payload_len: chunk_len as u32,
                mss: self.config.mss,
                cookie: id as u32,
            };
            let mem = ctx.world().expect_mut::<PhysMemory>();
            mem.write(hdr_addr, &template);
            self.send_ring.push(mem, &desc.to_bytes());
            self.tx_queue.push_back(id);
        }
        let tail = self.send_ring.tail();
        let db = self.nic.tx_doorbell();
        let fabric = self.fabric;
        ctx.send_now(fabric, MmioWrite { addr: db, data: (tail as u32).to_le_bytes().to_vec() });
    }

    fn on_tx_msi(&mut self, ctx: &mut Ctx<'_>) {
        // NIC completes sends in submission order.
        let id = self.tx_queue.front().copied().expect("tx MSI with no in-flight send");
        let tag = self.sends[&id].req.tag;
        let cost = self.costs.irq_entry_ns + self.costs.completion_path_ns;
        self.cpu_job(ctx, cost, tag, CpuPhase::TxComplete);
    }

    fn finish_send(&mut self, ctx: &mut Ctx<'_>) {
        let id = self.tx_queue.pop_front().expect("live send");
        {
            let s = self.sends.get_mut(&id).expect("live send");
            s.descs_remaining -= 1;
            if s.descs_remaining > 0 {
                return;
            }
        }
        let s = self.sends.remove(&id).expect("live send");
        let mut breakdown = Breakdown::new();
        breakdown.add(Category::NetworkStack, s.stack_ns);
        // Wire/device time: doorbell to MSI, minus the completion path we
        // just charged.
        let wire_time = (ctx.now() - s.submitted_at)
            .saturating_sub(self.costs.irq_entry_ns + self.costs.completion_path_ns);
        breakdown.add(Category::Wire, wire_time);
        breakdown.add(
            Category::RequestCompletion,
            self.costs.irq_entry_ns + self.costs.completion_path_ns,
        );
        ctx.send_now(s.req.reply_to, SendDone { id, breakdown });
    }

    fn on_rx_msi(&mut self, ctx: &mut Ctx<'_>) {
        // Scan write-backs for newly landed frames.
        let mut frames: Vec<(TcpFlow, Vec<u8>)> = Vec::new();
        {
            let depth = self.recv_ring_depth();
            loop {
                let wb_addr = self.wb_base + self.wb_next as u64 * RecvWriteback::SIZE as u64;
                let (_wb, frame) = {
                    let mem = ctx.world_ref().expect::<PhysMemory>();
                    let raw: [u8; RecvWriteback::SIZE] =
                        mem.read(wb_addr, RecvWriteback::SIZE).try_into().expect("8 bytes");
                    let wb = RecvWriteback::from_bytes(&raw);
                    if !wb.valid {
                        break;
                    }
                    let buf = self.recv_bufs + self.wb_next as u64 * 2048;
                    (wb, mem.read(buf, wb.frame_len as usize))
                };
                // Clear the write-back so the slot can be reused.
                ctx.world().expect_mut::<PhysMemory>().write(wb_addr, &[0u8; 8]);
                let parsed = parse_frame(&frame)
                    .unwrap_or_else(|e| panic!("NIC delivered an invalid frame: {e}"));
                let payload =
                    frame[parsed.payload_offset..parsed.payload_offset + parsed.payload_len].to_vec();
                frames.push((parsed.flow, payload));
                self.wb_next = (self.wb_next + 1) % depth;
                self.consumed_since_repost += 1;
            }
        }
        if frames.is_empty() {
            return;
        }
        // Repost consumed buffers in batches.
        if self.consumed_since_repost >= self.config.recv_buffers / 2 {
            let n = self.consumed_since_repost;
            self.consumed_since_repost = 0;
            self.post_recv_buffers(ctx, n);
        }
        let packets = frames.len();
        let payload_bytes: usize = frames.iter().map(|(_, p)| p.len()).sum();
        let stack_ns = self.costs.net_rx_cost(self.config.mode, packets);
        // Gather copy: payload bytes moved from frame buffers into the
        // consumer's contiguous buffer (and in vanilla mode, again to user
        // space).
        let mut copy_ns = self.costs.copy_cost(payload_bytes);
        if self.config.mode == KernelMode::Vanilla {
            copy_ns *= 2;
        }
        let tag = self
            .expectations
            .first()
            .map(|e| e.req.tag)
            .unwrap_or("net-rx");
        self.cpu_job(ctx, stack_ns + copy_ns, tag, CpuPhase::RxBatch { frames, copy_ns, stack_ns });
    }

    fn recv_ring_depth(&self) -> u16 {
        self.config.recv_buffers + 1
    }

    fn deliver_frames(
        &mut self,
        ctx: &mut Ctx<'_>,
        frames: Vec<(TcpFlow, Vec<u8>)>,
        copy_ns: u64,
        stack_ns: u64,
    ) {
        // Amortize the batch's CPU time across delivered bytes when
        // attributing to expectations.
        let total_bytes: usize = frames.iter().map(|(_, p)| p.len()).sum::<usize>().max(1);
        for (flow, payload) in frames {
            let key = (flow.src_port, flow.dst_port);
            self.early.entry(key).or_default().extend(payload);
        }
        // Satisfy expectations greedily, in registration order. An
        // expectation names the connection by the *local* flow (the
        // direction this node transmits on); arriving frames carry the
        // peer's direction, so the lookup key is reversed.
        let mut done = Vec::new();
        for (i, e) in self.expectations.iter_mut().enumerate() {
            let key = (e.req.flow.dst_port, e.req.flow.src_port);
            let Some(buf) = self.early.get_mut(&key) else { continue };
            if buf.is_empty() {
                continue;
            }
            let want = e.req.len - e.received;
            let take = want.min(buf.len());
            let bytes: Vec<u8> = buf.drain(..take).collect();
            {
                let mem = ctx.world().expect_mut::<PhysMemory>();
                mem.write(e.req.into + e.received as u64, &bytes);
            }
            e.received += take;
            e.stack_ns += stack_ns * take as u64 / total_bytes as u64;
            e.copy_ns += copy_ns * take as u64 / total_bytes as u64;
            if e.received == e.req.len {
                done.push(i);
            }
        }
        for i in done.into_iter().rev() {
            let e = self.expectations.remove(i);
            let mut breakdown = Breakdown::new();
            breakdown.add(Category::NetworkStack, e.stack_ns);
            breakdown.add(Category::DataCopy, e.copy_ns);
            breakdown.add(Category::Wire, (ctx.now() - e.started_at).saturating_sub(e.stack_ns + e.copy_ns));
            ctx.send_now(e.req.reply_to, RecvDone { id: e.req.id, breakdown });
        }
    }
}

/// One-time driver start: post receive buffers.
#[derive(Debug, Clone, Copy)]
pub struct StartNicDriver;

impl Component for HostNicDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<StartNicDriver>() {
            Ok(StartNicDriver) => {
                let n = self.config.recv_buffers;
                self.post_recv_buffers(ctx, n);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SendRequest>() {
            Ok(req) => {
                self.on_send(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RecvExpect>() {
            Ok(req) => {
                self.expectations.push(Expectation {
                    req,
                    received: 0,
                    stack_ns: 0,
                    copy_ns: 0,
                    started_at: ctx.now(),
                });
                // Data may already be waiting.
                self.deliver_frames(ctx, vec![], 0, 0);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(done) => {
                match self.cpu_phases.remove(&done.token).expect("live cpu phase") {
                    CpuPhase::TxSubmit => self.submit_send(ctx),
                    CpuPhase::TxComplete => self.finish_send(ctx),
                    CpuPhase::RxBatch { frames, copy_ns, stack_ns } => {
                        self.deliver_frames(ctx, frames, copy_ns, stack_ns)
                    }
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<MsiDelivery>() {
            Ok(d) => match d.vector {
                0x20 => self.on_tx_msi(ctx),
                0x21 => self.on_rx_msi(ctx),
                v => panic!("unexpected MSI vector {v:#x}"),
            },
            Err(other) => panic!("HostNicDriver received unexpected message: {other:?}"),
        }
    }
}
