//! The host NIC driver and TCP/IP stack model.
//!
//! Transmit: per-operation socket/TCP setup plus per-packet work on the
//! CPU, then a descriptor + doorbell to the NIC (LSO pushes segmentation
//! into hardware, as the optimized baselines of the paper assume).
//!
//! Receive: the NIC lands whole frames in driver-posted buffers; the
//! driver's interrupt path charges per-packet TCP processing and then
//! *gathers* payload bytes into the consumer's contiguous buffer with CPU
//! copies — the "data gathering problem" (§V-C2) that costs the software
//! designs so dearly on receive-heavy workloads and that the HDC Engine
//! solves with packet-gathering hardware.
//!
//! While a [`dcs_sim::FaultPlan`] is installed the driver additionally
//! runs a go-back-N reliability protocol over the (then lossy) wire: the
//! TCP `ack` field of data frames carries the absolute per-flow stream
//! offset (both ends count from zero), receivers accept only the next
//! in-order frame and answer with coalesced pure-ACK frames (zero
//! payload, `seq == ACK_MAGIC`), and senders hold completions until
//! acknowledged, retransmitting on an exponential-backoff timeout within
//! a bounded budget. Frames that fail checksum validation are dropped
//! and counted rather than panicking. Without a plan none of this runs
//! and the event stream is identical to the fault-free simulator.

use std::collections::VecDeque;

use dcs_nic::headers::{build_frame, build_template, parse_frame, ACK_MAGIC};
use dcs_nic::{
    ConfigureNic, ControlFrame, NicHandle, RecvDescriptor, RecvWriteback, RingWriter,
    SendDescriptor, TcpFlow,
};
use dcs_pcie::{AddrRange, MmioWrite, MsiDelivery, PhysAddr, PhysMemory};
use dcs_sim::{fault, Breakdown, Category, Component, ComponentId, Ctx, DetMap, Msg, SimTime};

use crate::costs::{KernelCosts, KernelMode};
use crate::cpu::{CpuJob, CpuJobDone};

/// Driver-local layout and tuning.
#[derive(Clone, Debug)]
pub struct NicDriverConfig {
    /// Kernel mode (vanilla pays socket-buffer and extra copy costs).
    pub mode: KernelMode,
    /// Number of 2 KiB receive buffers kept posted.
    pub recv_buffers: u16,
    /// MSS assumed for LSO descriptors.
    pub mss: u16,
}

impl Default for NicDriverConfig {
    fn default() -> Self {
        NicDriverConfig {
            mode: KernelMode::Optimized,
            recv_buffers: 512,
            mss: 1448,
        }
    }
}

/// Transmit `len` payload bytes at `payload_addr` on `flow`.
#[derive(Debug, Clone)]
pub struct SendRequest {
    /// Requester-chosen identifier echoed in [`SendDone`].
    pub id: u64,
    /// Established connection to transmit on.
    pub flow: TcpFlow,
    /// Starting sequence number.
    pub seq: u32,
    /// Contiguous payload location (host memory, or device memory in P2P
    /// designs — the NIC gathers from wherever the descriptor points).
    pub payload_addr: PhysAddr,
    /// Payload length in bytes.
    pub len: usize,
    /// CPU-utilization tag.
    pub tag: &'static str,
    /// Component notified on completion.
    pub reply_to: ComponentId,
}

/// Completion of a [`SendRequest`].
#[derive(Debug, Clone)]
pub struct SendDone {
    /// Identifier from the originating request.
    pub id: u64,
    /// False when the fault-recovery retransmission budget ran out
    /// before the peer acknowledged the data (always true fault-free).
    pub ok: bool,
    /// Latency breakdown (network-stack CPU, device control, wire).
    pub breakdown: Breakdown,
}

/// Ask the driver to accumulate `len` received payload bytes of `flow`
/// into `into` (contiguous).
#[derive(Debug, Clone)]
pub struct RecvExpect {
    /// Requester-chosen identifier echoed in [`RecvDone`].
    pub id: u64,
    /// Connection to receive on (matched by source port of arriving
    /// frames).
    pub flow: TcpFlow,
    /// Payload bytes to accumulate.
    pub len: usize,
    /// Destination buffer for the gathered payload.
    pub into: PhysAddr,
    /// CPU-utilization tag.
    pub tag: &'static str,
    /// Component notified when `len` bytes have been gathered.
    pub reply_to: ComponentId,
}

/// Completion of a [`RecvExpect`].
#[derive(Debug, Clone)]
pub struct RecvDone {
    /// Identifier from the originating expectation.
    pub id: u64,
    /// False when the expectation made no progress for a full fault
    /// timeout and was abandoned (always true fault-free).
    pub ok: bool,
    /// Latency breakdown (per-packet network stack time, gather copies).
    pub breakdown: Breakdown,
}

struct PendingSend {
    req: SendRequest,
    stack_ns: u64,
    submitted_at: SimTime,
    /// Transmit descriptors still outstanding (large sends split at the
    /// LSO limit).
    descs_remaining: usize,
    /// Absolute per-flow stream offset of this send's first byte
    /// (fault mode; zero otherwise).
    start_off: u64,
    /// Retransmission attempts so far.
    attempts: u32,
    /// All transmit-completion MSIs observed.
    descs_done: bool,
    /// Peer acknowledged the full payload (initialized true outside
    /// fault mode and for zero-length sends).
    acked: bool,
}

struct Expectation {
    req: RecvExpect,
    received: usize,
    stack_ns: u64,
    copy_ns: u64,
    started_at: SimTime,
}

enum CpuPhase {
    TxSubmit,
    RxBatch {
        frames: Vec<(TcpFlow, u32, Vec<u8>)>,
        copy_ns: u64,
        stack_ns: u64,
    },
    TxComplete,
}

/// Internal: retransmission-timeout check for one send (fault mode only).
#[derive(Debug)]
struct TxCheck {
    id: u64,
}

/// Internal: progress check for one receive expectation (fault mode
/// only).
#[derive(Debug)]
struct RxCheck {
    id: u64,
    last_received: usize,
}

/// The driver component. One instance drives one NIC.
pub struct HostNicDriver {
    cpu: ComponentId,
    fabric: ComponentId,
    nic: NicHandle,
    costs: KernelCosts,
    config: NicDriverConfig,
    send_ring: RingWriter,
    recv_ring: RingWriter,
    wb_base: PhysAddr,
    /// Receive frame buffers (2 KiB each), reposted cyclically.
    recv_bufs: PhysAddr,
    /// Header template staging, one 64-byte slot per in-flight send.
    hdr_area: PhysAddr,
    /// Next write-back slot to scan.
    wb_next: u16,
    /// In-flight sends, completed in FIFO order by the NIC's tx MSIs.
    tx_queue: VecDeque<u64>,
    tx_submit_queue: VecDeque<u64>,
    sends: DetMap<u64, PendingSend>,
    /// Active receive expectations, served in arrival order per flow.
    expectations: Vec<Expectation>,
    /// Payload bytes that arrived before any matching expectation.
    early: DetMap<(u16, u16), VecDeque<u8>>,
    cpu_phases: DetMap<u64, CpuPhase>,
    next_cpu_token: u64,
    hdr_slot: u64,
    /// Frames consumed since the last buffer repost.
    consumed_since_repost: u16,
    /// Fault mode: cumulative payload bytes submitted per transmit flow
    /// key `(src_port, dst_port)`.
    tx_offset: DetMap<(u16, u16), u64>,
    /// Fault mode: highest cumulative ack received per transmit flow key.
    snd_acked: DetMap<(u16, u16), u64>,
    /// Fault mode: cumulative payload bytes accepted in order per
    /// receive key (the peer's transmit direction).
    rcv_count: DetMap<(u16, u16), u64>,
    /// Fault mode: unacknowledged send ids per transmit flow key,
    /// oldest first.
    unacked: DetMap<(u16, u16), VecDeque<u64>>,
}

impl HostNicDriver {
    /// Ring depths used by the driver.
    pub const SEND_DEPTH: u16 = 2048;

    /// Creates the driver and the NIC configuration message the caller
    /// must deliver to the device. `area` must provide ≳4 MiB of host
    /// memory; `msi_addr` (16 bytes) must be claimed for this component.
    pub fn new(
        cpu: ComponentId,
        fabric: ComponentId,
        nic: NicHandle,
        costs: KernelCosts,
        config: NicDriverConfig,
        area: AddrRange,
        msi_addr: PhysAddr,
    ) -> (Self, ConfigureNic) {
        let send_base = area.start;
        let recv_base = area.start + 0x10000;
        let wb_base = area.start + 0x20000;
        let hdr_area = area.start + 0x30000;
        let recv_bufs = area.start + 0x100000;
        let recv_depth = config.recv_buffers + 1;
        let configure = ConfigureNic {
            send_ring_base: send_base,
            send_ring_depth: Self::SEND_DEPTH,
            recv_ring_base: recv_base,
            recv_ring_depth: recv_depth,
            wb_ring_base: wb_base,
            tx_msi_addr: msi_addr,
            tx_msi_vector: 0x20,
            rx_msi_addr: msi_addr + 8,
            rx_msi_vector: 0x21,
        };
        let driver = HostNicDriver {
            cpu,
            fabric,
            nic,
            costs,
            config,
            send_ring: RingWriter::new(send_base, SendDescriptor::SIZE, Self::SEND_DEPTH),
            recv_ring: RingWriter::new(recv_base, RecvDescriptor::SIZE, recv_depth),
            wb_base,
            recv_bufs,
            hdr_area,
            wb_next: 0,
            tx_queue: VecDeque::new(),
            tx_submit_queue: VecDeque::new(),
            sends: DetMap::new(),
            expectations: Vec::new(),
            early: DetMap::new(),
            cpu_phases: DetMap::new(),
            next_cpu_token: 1,
            hdr_slot: 0,
            consumed_since_repost: 0,
            tx_offset: DetMap::new(),
            snd_acked: DetMap::new(),
            rcv_count: DetMap::new(),
            unacked: DetMap::new(),
        };
        (driver, configure)
    }

    /// Posts the initial receive buffers; call once after the NIC has been
    /// configured (the driver does it lazily on first message otherwise).
    fn post_recv_buffers(&mut self, ctx: &mut Ctx<'_>, count: u16) {
        {
            let mem = ctx.world().expect_mut::<PhysMemory>();
            for _ in 0..count {
                let idx = self.recv_ring.tail();
                let buf = self.recv_bufs + idx as u64 * 2048;
                let d = RecvDescriptor {
                    buf_addr: buf,
                    buf_len: 2048,
                };
                self.recv_ring.push(mem, &d.to_bytes());
            }
        }
        let tail = self.recv_ring.tail();
        let db = self.nic.rx_doorbell();
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            MmioWrite {
                addr: db,
                data: (tail as u32).to_le_bytes().to_vec(),
            },
        );
    }

    fn cpu_job(&mut self, ctx: &mut Ctx<'_>, cost: u64, tag: &'static str, phase: CpuPhase) {
        let token = self.next_cpu_token;
        self.next_cpu_token += 1;
        self.cpu_phases.insert(token, phase);
        let cpu = self.cpu;
        ctx.send_now(
            cpu,
            CpuJob {
                token,
                cost_ns: cost,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn on_send(&mut self, ctx: &mut Ctx<'_>, req: SendRequest) {
        let packets = req.len.div_ceil(self.config.mss as usize).max(1);
        let mut stack_ns = self.costs.net_tx_cost(self.config.mode, packets);
        if self.config.mode == KernelMode::Vanilla {
            // Stock kernel copies user data into socket buffers.
            stack_ns += self.costs.copy_cost(req.len);
        }
        let faulty = fault::active(ctx.world_ref());
        let key = (req.flow.src_port, req.flow.dst_port);
        let start_off = if faulty {
            let off = self.tx_offset.entry(key).or_insert(0);
            let s = *off;
            *off += req.len as u64;
            s
        } else {
            0
        };
        let id = req.id;
        let tag = req.tag;
        // Zero-length sends carry no stream bytes to acknowledge; they
        // complete on transmit like in the fault-free path.
        let acked = !faulty || req.len == 0;
        if faulty && req.len > 0 {
            self.unacked.entry(key).or_default().push_back(id);
        }
        self.sends.insert(
            id,
            PendingSend {
                req,
                stack_ns,
                submitted_at: ctx.now(),
                descs_remaining: 0,
                start_off,
                attempts: 0,
                descs_done: false,
                acked,
            },
        );
        self.tx_submit_queue.push_back(id);
        self.cpu_job(ctx, stack_ns, tag, CpuPhase::TxSubmit);
    }

    fn submit_send(&mut self, ctx: &mut Ctx<'_>) {
        let id = self
            .tx_submit_queue
            .pop_front()
            .expect("a send awaited this CPU job");
        self.sends.get_mut(&id).expect("live send").submitted_at = ctx.now();
        self.push_send_descs(ctx, id);
        if let Some(rc) = fault::recovery(ctx.world_ref()) {
            ctx.send_self_in(rc.nic_rto_ns, TxCheck { id });
        }
    }

    /// Stages the send's descriptors (splitting at the LSO limit, as real
    /// TSO does — one skb per 64 KiB) and rings the transmit doorbell.
    /// Also the retransmission path: re-pushing the same descriptors
    /// replays the same frames, which the receiver deduplicates by
    /// stream offset.
    fn push_send_descs(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        const LSO_MAX: usize = 64 * 1024;
        let (flow, seq0, ack0, payload_addr, len) = {
            let s = &self.sends[&id];
            (
                s.req.flow,
                s.req.seq,
                s.start_off as u32,
                s.req.payload_addr,
                s.req.len,
            )
        };
        let chunks: Vec<(u64, usize)> = if len == 0 {
            vec![(0, 0)]
        } else {
            (0..len)
                .step_by(LSO_MAX)
                .map(|off| (off as u64, LSO_MAX.min(len - off)))
                .collect()
        };
        self.sends.get_mut(&id).expect("live send").descs_remaining += chunks.len();
        for (off, chunk_len) in chunks {
            // The `ack` field carries the absolute stream offset; the NIC
            // advances it per LSO segment alongside the sequence number.
            let template = build_template(
                &flow,
                seq0.wrapping_add(off as u32),
                ack0.wrapping_add(off as u32),
            );
            let hdr_addr = self.hdr_area + (self.hdr_slot % 2048) * 64;
            self.hdr_slot += 1;
            let desc = SendDescriptor {
                header_addr: hdr_addr,
                header_len: template.len() as u16,
                payload_addr: payload_addr + off,
                payload_len: chunk_len as u32,
                mss: self.config.mss,
                cookie: id as u32,
            };
            let mem = ctx.world().expect_mut::<PhysMemory>();
            mem.write(hdr_addr, &template);
            self.send_ring.push(mem, &desc.to_bytes());
            self.tx_queue.push_back(id);
        }
        let tail = self.send_ring.tail();
        let db = self.nic.tx_doorbell();
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            MmioWrite {
                addr: db,
                data: (tail as u32).to_le_bytes().to_vec(),
            },
        );
    }

    fn on_tx_msi(&mut self, ctx: &mut Ctx<'_>) {
        // NIC completes sends in submission order. A stale MSI (its send
        // already force-completed or failed by the fault machinery) is
        // ignored.
        let Some(&id) = self.tx_queue.front() else {
            return;
        };
        let tag = self.sends.get(&id).map(|s| s.req.tag).unwrap_or("net-rx");
        let cost = self.costs.irq_entry_ns + self.costs.completion_path_ns;
        self.cpu_job(ctx, cost, tag, CpuPhase::TxComplete);
    }

    fn finish_send(&mut self, ctx: &mut Ctx<'_>) {
        let Some(id) = self.tx_queue.pop_front() else {
            return;
        };
        let Some(s) = self.sends.get_mut(&id) else {
            return;
        };
        s.descs_remaining -= 1;
        if s.descs_remaining > 0 {
            return;
        }
        s.descs_done = true;
        self.try_complete_send(ctx, id);
    }

    /// Completes a send once both its descriptors have left the adapter
    /// and (in fault mode) the peer has acknowledged the payload.
    fn try_complete_send(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let ready = {
            let s = &self.sends[&id];
            s.descs_done && s.acked
        };
        if !ready {
            return;
        }
        let s = self.sends.remove(&id).expect("live send");
        let key = (s.req.flow.src_port, s.req.flow.dst_port);
        if let Some(q) = self.unacked.get_mut(&key) {
            q.retain(|&u| u != id);
        }
        let mut breakdown = Breakdown::new();
        breakdown.add(Category::NetworkStack, s.stack_ns);
        // Wire/device time: doorbell to MSI, minus the completion path we
        // just charged.
        let wire_time = (ctx.now() - s.submitted_at)
            .saturating_sub(self.costs.irq_entry_ns + self.costs.completion_path_ns);
        breakdown.add(Category::Wire, wire_time);
        breakdown.add(
            Category::RequestCompletion,
            self.costs.irq_entry_ns + self.costs.completion_path_ns,
        );
        ctx.send_now(
            s.req.reply_to,
            SendDone {
                id,
                ok: true,
                breakdown,
            },
        );
    }

    /// A cumulative ack for the transmit direction keyed by the frame's
    /// reversed ports arrived: complete newly covered sends in order.
    fn on_ack(&mut self, ctx: &mut Ctx<'_>, flow: &TcpFlow, ack: u32) {
        let key = (flow.dst_port, flow.src_port);
        let acked = self.snd_acked.entry(key).or_insert(0);
        // Stream offsets in this model stay far below 4 GiB per flow, so
        // the 32-bit ack is treated as absolute.
        *acked = (*acked).max(ack as u64);
        let acked = *acked;
        while let Some(&id) = self.unacked.get(&key).and_then(|q| q.front()) {
            match self.sends.get_mut(&id) {
                None => {
                    self.unacked
                        .get_mut(&key)
                        .expect("queue exists")
                        .pop_front();
                }
                Some(s) if s.start_off + s.req.len as u64 <= acked => {
                    if s.attempts > 0 {
                        fault::recovered(ctx.world(), fault::WIRE_DROP);
                    }
                    s.acked = true;
                    self.unacked
                        .get_mut(&key)
                        .expect("queue exists")
                        .pop_front();
                    self.try_complete_send(ctx, id);
                }
                Some(_) => break,
            }
        }
    }

    /// Retransmission-timeout check: retransmit the send's descriptors
    /// with exponential backoff until acknowledged or the budget runs
    /// out; also force-completes an acknowledged send whose transmit
    /// MSI was lost.
    fn on_tx_check(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let Some(rc) = fault::recovery(ctx.world_ref()) else {
            return;
        };
        let retry = match self.sends.get_mut(&id) {
            None => return, // completed or failed
            Some(s) if s.acked => {
                if !s.descs_done {
                    // Data acknowledged but a transmit-completion MSI
                    // never arrived: resynchronize and complete.
                    s.descs_done = true;
                    s.descs_remaining = 0;
                    self.tx_queue.retain(|&q| q != id);
                    fault::recovered(ctx.world(), fault::MSI_LOSS);
                    self.try_complete_send(ctx, id);
                }
                return;
            }
            Some(s) if s.attempts < rc.nic_retries => {
                s.attempts += 1;
                true
            }
            Some(_) => false,
        };
        if retry {
            fault::retried(ctx.world(), fault::WIRE_DROP);
            ctx.world().stats.counter("nic.retransmits").add(1);
            self.push_send_descs(ctx, id);
            let attempts = self.sends[&id].attempts;
            let backoff = rc.nic_rto_ns << attempts.min(10);
            ctx.send_self_in(backoff, TxCheck { id });
        } else {
            fault::exhausted(ctx.world(), fault::WIRE_DROP);
            self.fail_send(ctx, id);
        }
    }

    fn fail_send(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let Some(s) = self.sends.remove(&id) else {
            // A stale timer can race a completion that already retired
            // the send; failing twice would double-complete the job.
            ctx.world().stats.counter("nic.stale_fails").add(1);
            return;
        };
        let key = (s.req.flow.src_port, s.req.flow.dst_port);
        if let Some(q) = self.unacked.get_mut(&key) {
            q.retain(|&u| u != id);
        }
        let mut breakdown = Breakdown::new();
        breakdown.add(Category::NetworkStack, s.stack_ns);
        breakdown.add(Category::Wire, ctx.now() - s.submitted_at);
        ctx.send_now(
            s.req.reply_to,
            SendDone {
                id,
                ok: false,
                breakdown,
            },
        );
    }

    fn on_rx_msi(&mut self, ctx: &mut Ctx<'_>) {
        // Scan write-backs for newly landed frames.
        let faulty = fault::active(ctx.world_ref());
        let mut frames: Vec<(TcpFlow, u32, Vec<u8>)> = Vec::new();
        let depth = self.recv_ring_depth();
        loop {
            let wb_addr = self.wb_base + self.wb_next as u64 * RecvWriteback::SIZE as u64;
            let raw: [u8; RecvWriteback::SIZE] = {
                let mem = ctx.world_ref().expect::<PhysMemory>();
                mem.read(wb_addr, RecvWriteback::SIZE)
                    .try_into()
                    .expect("8 bytes")
            };
            let wb = RecvWriteback::from_bytes(&raw);
            if !wb.valid {
                break;
            }
            if !RecvWriteback::verify(&raw) {
                // Corrupted completion entry: nothing in it can be
                // trusted, so consume the slot and drop its frame
                // (go-back-N retransmission recovers the payload).
                // Detection here is the recovery for the write-back
                // corruption site — the entry never reached software.
                ctx.world()
                    .expect_mut::<PhysMemory>()
                    .write(wb_addr, &[0u8; 8]);
                self.wb_next = (self.wb_next + 1) % depth;
                self.consumed_since_repost += 1;
                ctx.world().stats.counter("nic.drv_bad_writebacks").add(1);
                fault::recovered(ctx.world(), fault::CPL_CORRUPT);
                let now = ctx.now();
                dcs_pcie::aer::record(
                    ctx.world(),
                    now.as_nanos(),
                    self.wb_next as u64,
                    fault::CPL_CORRUPT,
                    dcs_pcie::AerKind::BadCompletionEntry,
                );
                continue;
            }
            let frame = {
                let mem = ctx.world_ref().expect::<PhysMemory>();
                let buf = self.recv_bufs + self.wb_next as u64 * 2048;
                // The checksum guarantees frame_len is the device's value;
                // the clamp is pure defense against future layout drift.
                mem.read(buf, (wb.frame_len as usize).min(2048))
            };
            // Clear the write-back so the slot can be reused.
            ctx.world()
                .expect_mut::<PhysMemory>()
                .write(wb_addr, &[0u8; 8]);
            self.wb_next = (self.wb_next + 1) % depth;
            self.consumed_since_repost += 1;
            match parse_frame(&frame) {
                Ok(parsed) => {
                    if faulty && parsed.payload_len == 0 && parsed.seq == ACK_MAGIC {
                        // Pure protocol ACK: cheap driver work, handled
                        // outside the per-batch CPU charge.
                        let flow = parsed.flow;
                        let ack = parsed.ack;
                        self.on_ack(ctx, &flow, ack);
                        continue;
                    }
                    let payload = frame
                        [parsed.payload_offset..parsed.payload_offset + parsed.payload_len]
                        .to_vec();
                    frames.push((parsed.flow, parsed.ack, payload));
                }
                Err(_) => {
                    // Checksum or framing failure (wire corruption): the
                    // stack drops the frame; the sender's retransmission
                    // timer recovers the data.
                    ctx.world().stats.counter("nic.rx_bad_frames").add(1);
                }
            }
        }
        // Repost consumed buffers in batches (ACK-only and corrupt
        // frames consume posted buffers too).
        if self.consumed_since_repost >= self.config.recv_buffers / 2 {
            let n = self.consumed_since_repost;
            self.consumed_since_repost = 0;
            self.post_recv_buffers(ctx, n);
        }
        if frames.is_empty() {
            return;
        }
        let packets = frames.len();
        let payload_bytes: usize = frames.iter().map(|(_, _, p)| p.len()).sum();
        let stack_ns = self.costs.net_rx_cost(self.config.mode, packets);
        // Gather copy: payload bytes moved from frame buffers into the
        // consumer's contiguous buffer (and in vanilla mode, again to user
        // space).
        let mut copy_ns = self.costs.copy_cost(payload_bytes);
        if self.config.mode == KernelMode::Vanilla {
            copy_ns *= 2;
        }
        let tag = self
            .expectations
            .first()
            .map(|e| e.req.tag)
            .unwrap_or("net-rx");
        self.cpu_job(
            ctx,
            stack_ns + copy_ns,
            tag,
            CpuPhase::RxBatch {
                frames,
                copy_ns,
                stack_ns,
            },
        );
    }

    fn recv_ring_depth(&self) -> u16 {
        self.config.recv_buffers + 1
    }

    fn deliver_frames(
        &mut self,
        ctx: &mut Ctx<'_>,
        frames: Vec<(TcpFlow, u32, Vec<u8>)>,
        copy_ns: u64,
        stack_ns: u64,
    ) {
        // Amortize the batch's CPU time across delivered bytes when
        // attributing to expectations.
        let faulty = fault::active(ctx.world_ref());
        let total_bytes: usize = frames.iter().map(|(_, _, p)| p.len()).sum::<usize>().max(1);
        // Flows that need a (coalesced) ack after this batch.
        let mut ack_flows: DetMap<(u16, u16), TcpFlow> = DetMap::new();
        for (flow, ack, payload) in frames {
            let key = (flow.src_port, flow.dst_port);
            if faulty {
                ack_flows.insert(key, flow);
                let count = self.rcv_count.entry(key).or_insert(0);
                if ack as u64 != *count {
                    // A duplicate (already accepted, the ack got lost) or
                    // a gap (an earlier frame dropped): discard and
                    // re-ack; the sender's go-back-N replay fills gaps.
                    let c = if (ack as u64) < *count {
                        "nic.rx_duplicate_frames"
                    } else {
                        "nic.rx_out_of_order"
                    };
                    ctx.world().stats.counter(c).add(1);
                    continue;
                }
                *count += payload.len() as u64;
            }
            self.early.entry(key).or_default().extend(payload);
        }
        // Sorted: hash-map iteration order must never reach the event
        // sequence (seed reproducibility).
        let mut ack_flows: Vec<((u16, u16), TcpFlow)> = ack_flows.into_iter().collect();
        ack_flows.sort_unstable_by_key(|(k, _)| *k);
        for (key, flow) in ack_flows {
            let count = self.rcv_count.get(&key).copied().unwrap_or(0);
            let ack_frame = build_frame(&flow.reversed(), ACK_MAGIC, count as u32, &[]);
            let nic = self.nic.device;
            ctx.send_now(nic, ControlFrame { frame: ack_frame });
        }
        // Satisfy expectations greedily, in registration order. An
        // expectation names the connection by the *local* flow (the
        // direction this node transmits on); arriving frames carry the
        // peer's direction, so the lookup key is reversed.
        let mut done = Vec::new();
        for (i, e) in self.expectations.iter_mut().enumerate() {
            let key = (e.req.flow.dst_port, e.req.flow.src_port);
            let Some(buf) = self.early.get_mut(&key) else {
                continue;
            };
            if buf.is_empty() {
                continue;
            }
            let want = e.req.len - e.received;
            let take = want.min(buf.len());
            let bytes: Vec<u8> = buf.drain(..take).collect();
            {
                let mem = ctx.world().expect_mut::<PhysMemory>();
                mem.write(e.req.into + e.received as u64, &bytes);
            }
            e.received += take;
            e.stack_ns += stack_ns * take as u64 / total_bytes as u64;
            e.copy_ns += copy_ns * take as u64 / total_bytes as u64;
            if e.received == e.req.len {
                done.push(i);
            }
        }
        for i in done.into_iter().rev() {
            let e = self.expectations.remove(i);
            let mut breakdown = Breakdown::new();
            breakdown.add(Category::NetworkStack, e.stack_ns);
            breakdown.add(Category::DataCopy, e.copy_ns);
            breakdown.add(
                Category::Wire,
                (ctx.now() - e.started_at).saturating_sub(e.stack_ns + e.copy_ns),
            );
            ctx.send_now(
                e.req.reply_to,
                RecvDone {
                    id: e.req.id,
                    ok: true,
                    breakdown,
                },
            );
        }
    }

    /// Progress check for a receive expectation: re-arms while bytes are
    /// still arriving, abandons the expectation after a full timeout
    /// with no progress (the peer's retry budget ran out).
    fn on_rx_check(&mut self, ctx: &mut Ctx<'_>, id: u64, last_received: usize) {
        let Some(rc) = fault::recovery(ctx.world_ref()) else {
            return;
        };
        let Some(pos) = self.expectations.iter().position(|e| e.req.id == id) else {
            return;
        };
        let received = self.expectations[pos].received;
        if received > last_received {
            ctx.send_self_in(
                rc.op_timeout_ns,
                RxCheck {
                    id,
                    last_received: received,
                },
            );
            return;
        }
        let e = self.expectations.remove(pos);
        fault::exhausted(ctx.world(), fault::WIRE_DROP);
        ctx.world().stats.counter("nic.rx_expect_timeouts").add(1);
        let mut breakdown = Breakdown::new();
        breakdown.add(Category::NetworkStack, e.stack_ns);
        breakdown.add(Category::DataCopy, e.copy_ns);
        breakdown.add(
            Category::Wire,
            (ctx.now() - e.started_at).saturating_sub(e.stack_ns + e.copy_ns),
        );
        ctx.send_now(
            e.req.reply_to,
            RecvDone {
                id: e.req.id,
                ok: false,
                breakdown,
            },
        );
    }
}

/// One-time driver start: post receive buffers.
#[derive(Debug, Clone, Copy)]
pub struct StartNicDriver;

impl Component for HostNicDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<StartNicDriver>() {
            Ok(StartNicDriver) => {
                let n = self.config.recv_buffers;
                self.post_recv_buffers(ctx, n);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SendRequest>() {
            Ok(req) => {
                self.on_send(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RecvExpect>() {
            Ok(req) => {
                let id = req.id;
                self.expectations.push(Expectation {
                    req,
                    received: 0,
                    stack_ns: 0,
                    copy_ns: 0,
                    started_at: ctx.now(),
                });
                if let Some(rc) = fault::recovery(ctx.world_ref()) {
                    ctx.send_self_in(
                        rc.op_timeout_ns,
                        RxCheck {
                            id,
                            last_received: 0,
                        },
                    );
                }
                // Data may already be waiting.
                self.deliver_frames(ctx, vec![], 0, 0);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(done) => {
                match self.cpu_phases.remove(&done.token).expect("live cpu phase") {
                    CpuPhase::TxSubmit => self.submit_send(ctx),
                    CpuPhase::TxComplete => self.finish_send(ctx),
                    CpuPhase::RxBatch {
                        frames,
                        copy_ns,
                        stack_ns,
                    } => self.deliver_frames(ctx, frames, copy_ns, stack_ns),
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<TxCheck>() {
            Ok(check) => {
                self.on_tx_check(ctx, check.id);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RxCheck>() {
            Ok(check) => {
                self.on_rx_check(ctx, check.id, check.last_received);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<MsiDelivery>() {
            Ok(d) => match d.vector {
                0x20 => self.on_tx_msi(ctx),
                0x21 => self.on_rx_msi(ctx),
                v => panic!("unexpected MSI vector {v:#x}"),
            },
            Err(other) => panic!("HostNicDriver received unexpected message: {other:?}"),
        }
    }
}
