//! The host NVMe driver: the software initiator the baseline designs use.
//!
//! Speaks the same queues/doorbells/MSIs as the HDC Engine's NVMe
//! controller, but every step costs CPU time: submit-side kernel work
//! (syscall, VFS, block mapping, driver submit), then the interrupt and
//! completion path when the drive raises its MSI. Completion reports carry
//! a per-category latency breakdown so Figure 11-style plots can be
//! assembled from real measurements.
//!
//! While a [`dcs_sim::FaultPlan`] is installed the driver also runs the
//! kernel's error path: a retryable completion status (media error)
//! resubmits just that MDTS chunk under a fresh CID within a bounded
//! budget, and a per-request timeout polls the completion queue directly
//! — recovering lost MSIs — before surfacing a clean error completion.
//! Without a plan none of these timers are armed and the event stream is
//! identical to the fault-free simulator.

use dcs_sim::DetMap;

use dcs_nvme::{
    AttachQueuePair, CompletionQueueReader, NvmeCommand, NvmeCompletion, NvmeHandle, NvmeOpcode,
    NvmeStatus, PrpList, SubmissionQueueWriter, LBA_SIZE,
};
use dcs_pcie::{AddrRange, MmioWrite, MsiDelivery, PhysAddr, PhysMemory};
use dcs_sim::{fault, Breakdown, Category, Component, ComponentId, Ctx, Msg, SimTime};

use crate::costs::{KernelCosts, KernelMode};
use crate::cpu::{CpuJob, CpuJobDone};

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockOp {
    /// Read from flash into the buffer.
    Read,
    /// Write the buffer to flash.
    Write,
}

/// A block I/O request against the driver.
#[derive(Debug, Clone)]
pub struct BlockRequest {
    /// Requester-chosen identifier echoed in [`BlockDone`].
    pub id: u64,
    /// Direction.
    pub op: BlockOp,
    /// Starting logical block.
    pub lba: u64,
    /// Transfer length in bytes (multiple of 4 KiB).
    pub len: usize,
    /// Page-aligned data buffer (destination for reads, source for
    /// writes).
    pub buf: PhysAddr,
    /// CPU-utilization tag for this request's software work.
    pub tag: &'static str,
    /// Component notified on completion.
    pub reply_to: ComponentId,
}

/// Completion of a [`BlockRequest`].
#[derive(Debug, Clone)]
pub struct BlockDone {
    /// Identifier from the originating request.
    pub id: u64,
    /// Whether the device reported success.
    pub ok: bool,
    /// Latency breakdown: file-system and device-control software time,
    /// device time, completion-path time.
    pub breakdown: Breakdown,
}

struct Outstanding {
    req: BlockRequest,
    /// Software submit time split for the breakdown.
    fs_ns: u64,
    ctrl_ns: u64,
    /// When the doorbell rang (device time starts).
    submitted_at: SimTime,
    /// When the last MSI arrived (device time ends).
    device_done_at: Option<SimTime>,
    status: Option<NvmeStatus>,
    /// NVMe sub-commands still outstanding (requests above the drive's
    /// MDTS split into several commands, as the kernel block layer does).
    chunks_remaining: usize,
}

enum CpuPhase {
    Submit { cid: u16 },
    Complete { cid: u16 },
}

/// Geometry of one NVMe sub-command, kept so a retryable completion can
/// resubmit exactly that chunk.
struct ChunkGeom {
    off: u64,
    len: usize,
    attempts: u32,
}

/// Internal: command-timeout check for one outstanding request. Armed
/// only while a fault plan is installed.
#[derive(Debug)]
struct NvmeCheck {
    cid: u16,
}

/// The driver component. One instance drives one SSD queue pair.
pub struct HostNvmeDriver {
    cpu: ComponentId,
    fabric: ComponentId,
    ssd: NvmeHandle,
    costs: KernelCosts,
    mode: KernelMode,
    sq: SubmissionQueueWriter,
    cq: CompletionQueueReader,
    /// Scratch for PRP list pages, one page per CID slot.
    prp_scratch: AddrRange,
    outstanding: DetMap<u16, Outstanding>,
    /// Sub-command CID → primary CID for MDTS-split requests.
    chunk_owner: DetMap<u16, u16>,
    /// Sub-command CID → chunk geometry (for error-path resubmission).
    chunk_geom: DetMap<u16, ChunkGeom>,
    cpu_phases: DetMap<u64, CpuPhase>,
    next_cid: u16,
    next_cpu_token: u64,
    /// Queue-pair geometry kept for controller resets.
    attach: AttachQueuePair,
    /// Controller resets performed (bounded by
    /// `RecoveryConfig::nvme_resets`).
    resets_used: u32,
}

impl HostNvmeDriver {
    /// Queue depth used by the driver.
    pub const QUEUE_DEPTH: u16 = 64;

    /// Creates the driver. `rings` must provide at least
    /// `64*64 + 64*16 + 64*4096` bytes of host memory for the SQ, CQ and
    /// PRP-list scratch; `msi_addr` must be claimed for this component.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cpu: ComponentId,
        fabric: ComponentId,
        ssd: NvmeHandle,
        costs: KernelCosts,
        mode: KernelMode,
        rings: AddrRange,
        msi_addr: PhysAddr,
    ) -> (Self, AttachQueuePair) {
        let depth = Self::QUEUE_DEPTH;
        let sq_base = rings.start;
        let cq_base = rings.start + depth as u64 * NvmeCommand::SIZE as u64;
        let prp_base = cq_base + depth as u64 * 16;
        // PRP scratch must be page-aligned for list pages.
        let prp_base = PhysAddr((prp_base.as_u64() + 4095) & !4095);
        let attach = AttachQueuePair {
            qid: 1,
            sq_base,
            cq_base,
            depth,
            msi_addr,
            msi_vector: 0x10,
        };
        let driver = HostNvmeDriver {
            cpu,
            fabric,
            ssd,
            costs,
            mode,
            sq: SubmissionQueueWriter::new(sq_base, depth),
            cq: CompletionQueueReader::new(cq_base, depth),
            prp_scratch: AddrRange::new(prp_base, depth as u64 * 4096),
            outstanding: DetMap::new(),
            chunk_owner: DetMap::new(),
            chunk_geom: DetMap::new(),
            cpu_phases: DetMap::new(),
            next_cid: 0,
            next_cpu_token: 1,
            attach,
            resets_used: 0,
        };
        (driver, attach)
    }

    fn cpu_job(&mut self, ctx: &mut Ctx<'_>, cost: u64, tag: &'static str, phase: CpuPhase) {
        let token = self.next_cpu_token;
        self.next_cpu_token += 1;
        self.cpu_phases.insert(token, phase);
        let cpu = self.cpu;
        ctx.send_now(
            cpu,
            CpuJob {
                token,
                cost_ns: cost,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_>, req: BlockRequest) {
        assert!(
            req.len.is_multiple_of(LBA_SIZE as usize),
            "length must be whole blocks"
        );
        assert!(!self.sq.is_full(), "driver exceeded its queue depth");
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        let fs_ns = self.costs.vfs_lookup_ns
            + self.costs.fs_block_map_ns
            + match self.mode {
                KernelMode::Vanilla => {
                    self.costs.page_cache_lookup_ns + self.costs.page_cache_insert_ns
                }
                KernelMode::Optimized => 0,
            };
        let ctrl_ns = self.costs.syscall_ns
            + self.costs.block_submit_ns
            + self.costs.block_per_page_ns * (req.len.div_ceil(4096) as u64);
        let tag = req.tag;
        self.outstanding.insert(
            cid,
            Outstanding {
                req,
                fs_ns,
                ctrl_ns,
                submitted_at: ctx.now(), // refined after the CPU job
                device_done_at: None,
                status: None,
                chunks_remaining: 0,
            },
        );
        self.cpu_job(ctx, fs_ns + ctrl_ns, tag, CpuPhase::Submit { cid });
    }

    fn submit_to_device(&mut self, ctx: &mut Ctx<'_>, cid: u16) {
        // Split at 1 MiB (MDTS), one NVMe command per chunk.
        const MDTS: usize = 1 << 20;
        let (buf, len, lba, op) = {
            let out = self.outstanding.get_mut(&cid).expect("live request");
            out.submitted_at = ctx.now();
            (out.req.buf, out.req.len, out.req.lba, out.req.op)
        };
        let chunks: Vec<(u64, usize)> = (0..len)
            .step_by(MDTS)
            .map(|off| (off as u64, MDTS.min(len - off)))
            .collect();
        self.outstanding
            .get_mut(&cid)
            .expect("live")
            .chunks_remaining = chunks.len();
        // Sub-commands use consecutive CIDs; completions route to the
        // primary via `chunk_owner`. The primary CID was reserved at
        // request arrival; further chunks draw fresh CIDs.
        for (i, (off, chunk_len)) in chunks.iter().enumerate() {
            let sub_cid = if i == 0 {
                cid
            } else {
                let c = self.next_cid;
                self.next_cid = self.next_cid.wrapping_add(1);
                self.chunk_owner.insert(c, cid);
                c
            };
            self.chunk_geom.insert(
                sub_cid,
                ChunkGeom {
                    off: *off,
                    len: *chunk_len,
                    attempts: 0,
                },
            );
            self.push_command(ctx, sub_cid, buf, *off, *chunk_len, lba, op);
        }
        self.ring_sq_doorbell(ctx);
        if let Some(rc) = fault::recovery(ctx.world_ref()) {
            ctx.send_self_in(rc.nvme_timeout_ns, NvmeCheck { cid });
        }
    }

    /// Serializes one NVMe command for a chunk of `buf` into the SQ
    /// (doorbell rung separately so submissions batch).
    #[allow(clippy::too_many_arguments)]
    fn push_command(
        &mut self,
        ctx: &mut Ctx<'_>,
        sub_cid: u16,
        buf: PhysAddr,
        off: u64,
        chunk_len: usize,
        lba: u64,
        op: BlockOp,
    ) {
        let list_page = self.prp_scratch.start + (sub_cid as u64 % 64) * 4096;
        let prps = PrpList::for_contiguous(buf + off, chunk_len, list_page);
        let cmd = NvmeCommand {
            opcode: match op {
                BlockOp::Read => NvmeOpcode::Read,
                BlockOp::Write => NvmeOpcode::Write,
            },
            cid: sub_cid,
            nsid: 1,
            prp1: prps.prp1,
            prp2: prps.prp2,
            slba: lba + off / LBA_SIZE,
            nlb: (chunk_len / LBA_SIZE as usize - 1) as u16,
        };
        let mem = ctx.world().expect_mut::<PhysMemory>();
        if !prps.list_entries.is_empty() {
            mem.write(list_page, &prps.list_bytes());
        }
        self.sq.push(mem, &cmd);
    }

    fn ring_sq_doorbell(&mut self, ctx: &mut Ctx<'_>) {
        let tail = self.sq.tail();
        let doorbell = self.ssd.sq_doorbell(1);
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            MmioWrite {
                addr: doorbell,
                data: (tail as u32).to_le_bytes().to_vec(),
            },
        );
    }

    /// Resubmits one MDTS chunk of `primary` after a retryable failure,
    /// under a fresh CID (the failed command's slot is dead).
    fn resubmit_chunk(
        &mut self,
        ctx: &mut Ctx<'_>,
        primary: u16,
        off: u64,
        len: usize,
        attempts: u32,
    ) {
        let (buf, lba, op) = {
            let out = &self.outstanding[&primary];
            (out.req.buf, out.req.lba, out.req.op)
        };
        let sub_cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        self.chunk_owner.insert(sub_cid, primary);
        self.chunk_geom
            .insert(sub_cid, ChunkGeom { off, len, attempts });
        self.push_command(ctx, sub_cid, buf, off, len, lba, op);
        self.ring_sq_doorbell(ctx);
    }

    fn on_msi(&mut self, ctx: &mut Ctx<'_>) {
        self.drain_cq(ctx);
    }

    /// Drains the CQ; charges one IRQ+completion path per completed
    /// command (the kernel does per-request completion work). Shared by
    /// the MSI path and the timeout poll fallback.
    fn drain_cq(&mut self, ctx: &mut Ctx<'_>) {
        let mut completed = Vec::new();
        {
            let mem = ctx.world_ref().expect::<PhysMemory>();
            while let Some(entry) = self.cq.pop(mem) {
                completed.push(entry);
            }
        }
        if completed.is_empty() {
            // Spurious interrupt (MSI raced an earlier drain) or an idle
            // poll: ignore.
            return;
        }
        // Ring the CQ head doorbell once for the batch.
        let head = self.cq.head();
        let db = self.ssd.cq_doorbell(1);
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            MmioWrite {
                addr: db,
                data: (head as u32).to_le_bytes().to_vec(),
            },
        );
        for entry in completed {
            // Validate before trusting: a poisoned CQE can land with a
            // plausible phase bit but garbage fields (the device rewrites
            // the slot, but a poll may race the rewrite). An entry whose
            // CID matches nothing we submitted must not steer SQ-head
            // accounting or complete anything.
            let known = self.chunk_owner.get(&entry.cid).is_some()
                || self.outstanding.get(&entry.cid).is_some();
            if !known {
                ctx.world().stats.counter("nvme.drv_bad_cqe").add(1);
                continue;
            }
            self.sq.update_head(entry.sq_head);
            self.on_completion(ctx, entry);
        }
    }

    fn on_completion(&mut self, ctx: &mut Ctx<'_>, entry: NvmeCompletion) {
        let geom = self.chunk_geom.remove(&entry.cid);
        let primary = self.chunk_owner.remove(&entry.cid).unwrap_or(entry.cid);
        let stale = match self.outstanding.get(&primary) {
            // chunks_remaining hits zero when a timeout already failed the
            // request; stragglers must not double-complete it.
            Some(out) => out.chunks_remaining == 0,
            None => true,
        };
        if stale {
            ctx.world().stats.counter("nvme.drv_stale_cqe").add(1);
            return;
        }
        if entry.status.is_retryable() {
            if let (Some(g), Some(rc)) = (geom.as_ref(), fault::recovery(ctx.world_ref())) {
                if g.attempts < rc.nvme_retries {
                    fault::retried(ctx.world(), fault::NVME_MEDIA);
                    self.resubmit_chunk(ctx, primary, g.off, g.len, g.attempts + 1);
                    return;
                }
            }
            fault::exhausted(ctx.world(), fault::NVME_MEDIA);
        } else if entry.status.is_ok() && geom.map(|g| g.attempts > 0).unwrap_or(false) {
            fault::recovered(ctx.world(), fault::NVME_MEDIA);
        }
        let out = self.outstanding.get_mut(&primary).expect("live request");
        out.chunks_remaining -= 1;
        out.device_done_at = Some(ctx.now());
        if out.status.map(|s| s.is_ok()).unwrap_or(true) {
            out.status = Some(entry.status);
        }
        if out.chunks_remaining > 0 {
            return;
        }
        let cost = self.costs.storage_complete_cost();
        let tag = out.req.tag;
        self.cpu_job(ctx, cost, tag, CpuPhase::Complete { cid: primary });
    }

    /// Command-timeout check: polls the CQ directly (the MSI may have
    /// been lost), re-arms while the request is within its overall
    /// deadline, and otherwise surfaces a clean error completion.
    fn on_check(&mut self, ctx: &mut Ctx<'_>, cid: u16) {
        if self
            .outstanding
            .get(&cid)
            .map(|o| o.chunks_remaining == 0)
            .unwrap_or(true)
        {
            return; // completed (or already timed out); timer expires silently
        }
        ctx.world().stats.counter("nvme.drv_polls").add(1);
        self.drain_cq(ctx);
        let Some(out) = self.outstanding.get(&cid) else {
            return;
        };
        if out.chunks_remaining == 0 {
            return; // the poll recovered it
        }
        let Some(rc) = fault::recovery(ctx.world_ref()) else {
            return;
        };
        if ctx.now() - out.submitted_at < rc.op_timeout_ns {
            ctx.send_self_in(rc.nvme_timeout_ns, NvmeCheck { cid });
            return;
        }
        // Patience exhausted. Next rung of the recovery ladder: a
        // controller reset — re-attach the queue pair (aborting whatever
        // the device still holds), start fresh rings, and resubmit every
        // outstanding request. Only after the reset budget is spent does
        // the request fail.
        if self.resets_used < rc.nvme_resets {
            self.resets_used += 1;
            self.reset_controller(ctx);
            return;
        }
        ctx.world().stats.counter("nvme.drv_timeouts").add(1);
        fault::exhausted(ctx.world(), fault::MSI_LOSS);
        let Some(out) = self.outstanding.get_mut(&cid) else {
            return;
        };
        out.chunks_remaining = 0;
        out.device_done_at = Some(ctx.now());
        out.status = Some(NvmeStatus::MediaError);
        let cost = self.costs.storage_complete_cost();
        let tag = out.req.tag;
        self.cpu_job(ctx, cost, tag, CpuPhase::Complete { cid });
    }

    /// NVMe controller reset: re-attach the queue pair (the device drops
    /// its in-flight ops), reinitialize both ring cursors, scrub the CQ
    /// ring (stale phase bits must not read as fresh completions), and
    /// resubmit every request that has not completed.
    fn reset_controller(&mut self, ctx: &mut Ctx<'_>) {
        ctx.world().stats.counter("nvme.drv_resets").add(1);
        let attach = self.attach;
        let device = self.ssd.device;
        ctx.send_now(device, attach);
        self.sq = SubmissionQueueWriter::new(attach.sq_base, attach.depth);
        self.cq = CompletionQueueReader::new(attach.cq_base, attach.depth);
        {
            let zeros = vec![0u8; attach.depth as usize * NvmeCompletion::SIZE];
            ctx.world()
                .expect_mut::<PhysMemory>()
                .write(attach.cq_base, &zeros);
        }
        self.chunk_owner = DetMap::new();
        self.chunk_geom = DetMap::new();
        // Resubmit in CID order for determinism, each request under a
        // FRESH primary CID: any pre-reset completion entry still in
        // flight then matches nothing and is dropped by the drain-side
        // validation, instead of double-completing resubmitted chunks.
        // `submit_to_device` rebuilds chunks and re-arms the timeout.
        let mut pending: Vec<u16> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.chunks_remaining > 0)
            .map(|(&cid, _)| cid)
            .collect();
        pending.sort_unstable();
        for old_cid in pending {
            let Some(out) = self.outstanding.remove(&old_cid) else {
                continue;
            };
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            self.outstanding.insert(cid, out);
            self.submit_to_device(ctx, cid);
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, cid: u16) {
        let out = self.outstanding.remove(&cid).expect("live request");
        let device_done = out.device_done_at.expect("device completed");
        let mut breakdown = Breakdown::new();
        breakdown.add(Category::FileSystem, out.fs_ns);
        breakdown.add(Category::DeviceControl, out.ctrl_ns);
        let device_time = device_done - out.submitted_at;
        let dev_cat = match out.req.op {
            BlockOp::Read => Category::Read,
            BlockOp::Write => Category::Write,
        };
        breakdown.add(dev_cat, device_time);
        breakdown.add(Category::RequestCompletion, ctx.now() - device_done);
        let ok = out.status.expect("status recorded").is_ok();
        ctx.send_now(
            out.req.reply_to,
            BlockDone {
                id: out.req.id,
                ok,
                breakdown,
            },
        );
    }
}

impl Component for HostNvmeDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<BlockRequest>() {
            Ok(req) => {
                self.on_request(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(done) => {
                match self.cpu_phases.remove(&done.token).expect("live cpu phase") {
                    CpuPhase::Submit { cid } => self.submit_to_device(ctx, cid),
                    CpuPhase::Complete { cid } => self.finish(ctx, cid),
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<NvmeCheck>() {
            Ok(check) => {
                self.on_check(ctx, check.cid);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<MsiDelivery>() {
            Ok(_) => self.on_msi(ctx),
            Err(other) => panic!("HostNvmeDriver received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPool;
    use dcs_nvme::{install_nvme, NvmeConfig};
    use dcs_pcie::{MmioRouting, PcieConfig, PcieFabric, PortId};
    use dcs_sim::{time, Simulator};

    struct Caller {
        driver: ComponentId,
        done: Vec<BlockDone>,
    }

    #[derive(Debug)]
    struct Go(BlockRequest);

    impl Component for Caller {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<Go>() {
                Ok(Go(req)) => {
                    let drv = self.driver;
                    ctx.send_now(drv, req);
                    return;
                }
                Err(m) => m,
            };
            let d = msg
                .downcast::<BlockDone>()
                .expect("caller gets block completions");
            ctx.world().stats.counter("caller.done").add(1);
            if d.ok {
                ctx.world().stats.counter("caller.ok").add(1);
            }
            self.done.push(d);
        }
    }

    fn setup(mode: KernelMode) -> (Simulator, ComponentId, NvmeHandle, AddrRange) {
        let mut sim = Simulator::new(5);
        sim.world_mut().insert(PhysMemory::new());
        sim.world_mut().insert(MmioRouting::new());
        let fabric = sim.add("pcie", PcieFabric::new(PcieConfig::default()));
        let cpu = sim.add("cpu", CpuPool::new("node0", 6));
        let ssd = install_nvme(
            &mut sim,
            fabric,
            NvmeConfig {
                capacity_lbas: 1 << 20,
                ..NvmeConfig::default()
            },
            "ssd0",
            PortId(1),
        );
        let dram = sim.world_mut().expect_mut::<PhysMemory>().alloc_region(
            "host-dram",
            64 << 20,
            PortId::ROOT,
        );
        let rings = AddrRange::new(dram.start, 1 << 20);
        let msi_addr = dram.start + (2 << 20);
        let driver_id = sim.reserve("nvme-driver");
        let (driver, attach) = HostNvmeDriver::new(
            cpu,
            fabric,
            ssd.clone(),
            KernelCosts::default(),
            mode,
            rings,
            msi_addr,
        );
        sim.install(driver_id, driver);
        sim.world_mut()
            .expect_mut::<MmioRouting>()
            .claim(AddrRange::new(msi_addr, 0x100), driver_id);
        sim.kickoff(ssd.device, attach);
        let caller = sim.reserve("caller");
        sim.install(
            caller,
            Caller {
                driver: driver_id,
                done: vec![],
            },
        );
        (sim, caller, ssd, dram)
    }

    #[test]
    fn read_via_driver_returns_data_and_breakdown() {
        let (mut sim, caller, ssd, dram) = setup(KernelMode::Optimized);
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 253) as u8).collect();
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(ssd.lba_addr(10), &payload);
        let buf = dram.start + (4 << 20);
        sim.kickoff(
            caller,
            Go(BlockRequest {
                id: 1,
                op: BlockOp::Read,
                lba: 10,
                len: 8192,
                buf,
                tag: "kernel",
                reply_to: caller,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("caller.ok"), 1);
        assert_eq!(sim.world().expect::<PhysMemory>().read(buf, 8192), payload);
        // The breakdown must contain software + device categories.
        let stats = sim.world().expect::<crate::cpu::CpuStats>();
        assert!(stats.pool("node0").unwrap().jobs >= 2);
        assert!(
            sim.now().as_nanos() > time::us(14),
            "includes flash latency"
        );
    }

    #[test]
    fn vanilla_mode_spends_more_cpu_than_optimized() {
        let run = |mode| {
            let (mut sim, caller, _ssd, dram) = setup(mode);
            let buf = dram.start + (4 << 20);
            sim.kickoff(
                caller,
                Go(BlockRequest {
                    id: 1,
                    op: BlockOp::Read,
                    lba: 0,
                    len: 4096,
                    buf,
                    tag: "kernel",
                    reply_to: caller,
                }),
            );
            sim.run();
            let stats = sim.world().expect::<crate::cpu::CpuStats>();
            stats.pool("node0").unwrap().tracker.total_busy()
        };
        assert!(run(KernelMode::Vanilla) > run(KernelMode::Optimized));
    }

    #[test]
    fn write_via_driver_persists() {
        let (mut sim, caller, ssd, dram) = setup(KernelMode::Optimized);
        let buf = dram.start + (4 << 20);
        let payload = vec![0xC3u8; 4096];
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(buf, &payload);
        sim.kickoff(
            caller,
            Go(BlockRequest {
                id: 2,
                op: BlockOp::Write,
                lba: 77,
                len: 4096,
                buf,
                tag: "kernel",
                reply_to: caller,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("caller.ok"), 1);
        assert_eq!(
            sim.world()
                .expect::<PhysMemory>()
                .read(ssd.lba_addr(77), 4096),
            payload
        );
    }

    #[test]
    fn failed_command_reports_not_ok() {
        let (mut sim, caller, _ssd, dram) = setup(KernelMode::Optimized);
        let buf = dram.start + (4 << 20);
        sim.kickoff(
            caller,
            Go(BlockRequest {
                id: 3,
                op: BlockOp::Read,
                lba: (1 << 20) + 5, // beyond 1Mi-LBA namespace
                len: 4096,
                buf,
                tag: "kernel",
                reply_to: caller,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("caller.done"), 1);
        assert_eq!(sim.world().stats.counter_value("caller.ok"), 0);
    }

    #[test]
    fn media_error_is_retried_and_recovers() {
        let (mut sim, caller, ssd, dram) = setup(KernelMode::Optimized);
        let rng = sim.world_mut().rng.fork();
        let mut plan = dcs_sim::FaultPlan::new(rng);
        plan.enable(dcs_sim::fault::NVME_MEDIA, dcs_sim::FaultSpec::Nth(vec![0]));
        sim.world_mut().insert(plan);
        let payload = vec![0x5Au8; 4096];
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(ssd.lba_addr(3), &payload);
        let buf = dram.start + (4 << 20);
        sim.kickoff(
            caller,
            Go(BlockRequest {
                id: 9,
                op: BlockOp::Read,
                lba: 3,
                len: 4096,
                buf,
                tag: "kernel",
                reply_to: caller,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("caller.ok"), 1);
        assert_eq!(sim.world().stats.counter_value("fault.injected"), 1);
        assert_eq!(sim.world().stats.counter_value("retry.count"), 1);
        assert_eq!(sim.world().stats.counter_value("fault.recovered"), 1);
        assert_eq!(sim.world().expect::<PhysMemory>().read(buf, 4096), payload);
    }

    #[test]
    fn media_error_without_budget_fails_cleanly() {
        let (mut sim, caller, _ssd, dram) = setup(KernelMode::Optimized);
        let rng = sim.world_mut().rng.fork();
        let mut plan = dcs_sim::FaultPlan::new(rng);
        plan.enable(dcs_sim::fault::NVME_MEDIA, dcs_sim::FaultSpec::Nth(vec![0]));
        plan.recovery = dcs_sim::RecoveryConfig::no_retries();
        sim.world_mut().insert(plan);
        let buf = dram.start + (4 << 20);
        sim.kickoff(
            caller,
            Go(BlockRequest {
                id: 10,
                op: BlockOp::Read,
                lba: 0,
                len: 4096,
                buf,
                tag: "kernel",
                reply_to: caller,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("caller.done"), 1);
        assert_eq!(sim.world().stats.counter_value("caller.ok"), 0);
        assert_eq!(sim.world().stats.counter_value("fault.exhausted"), 1);
    }

    #[test]
    fn lost_completion_msi_is_recovered_by_poll() {
        let (mut sim, caller, ssd, dram) = setup(KernelMode::Optimized);
        let rng = sim.world_mut().rng.fork();
        let mut plan = dcs_sim::FaultPlan::new(rng);
        // Lose the first MSI the fabric routes; the driver's command
        // timeout must find the completion by polling the CQ.
        plan.enable(dcs_sim::fault::MSI_LOSS, dcs_sim::FaultSpec::Nth(vec![0]));
        sim.world_mut().insert(plan);
        let payload = vec![0x77u8; 4096];
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(ssd.lba_addr(8), &payload);
        let buf = dram.start + (4 << 20);
        sim.kickoff(
            caller,
            Go(BlockRequest {
                id: 11,
                op: BlockOp::Read,
                lba: 8,
                len: 4096,
                buf,
                tag: "kernel",
                reply_to: caller,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("pcie.msi_lost"), 1);
        assert_eq!(sim.world().stats.counter_value("caller.ok"), 1);
        assert!(sim.world().stats.counter_value("nvme.drv_polls") >= 1);
        assert_eq!(sim.world().expect::<PhysMemory>().read(buf, 4096), payload);
    }

    #[test]
    fn lost_cqe_climbs_the_reset_ladder_and_recovers() {
        let (mut sim, caller, ssd, dram) = setup(KernelMode::Optimized);
        let rng = sim.world_mut().rng.fork();
        let mut plan = dcs_sim::FaultPlan::new(rng);
        // Header corruption with zero replay budget turns a TLP into a
        // completion timeout (no bytes move). Draws for the read command:
        // 0 = SQ-entry fetch, 1 = data-out, 2 = CQE write, 3 = the
        // device's CQE rewrite. Killing 2 and 3 loses the completion
        // entirely; the driver's op timeout must then reset the
        // controller and resubmit, which succeeds on fresh draws.
        plan.enable(
            dcs_sim::fault::TLP_HEADER,
            dcs_sim::FaultSpec::Nth(vec![2, 3]),
        );
        plan.recovery = dcs_sim::RecoveryConfig {
            pcie_retries: 0,
            ..Default::default()
        };
        sim.world_mut().insert(plan);
        let payload = vec![0x3Cu8; 4096];
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(ssd.lba_addr(4), &payload);
        let buf = dram.start + (4 << 20);
        sim.kickoff(
            caller,
            Go(BlockRequest {
                id: 12,
                op: BlockOp::Read,
                lba: 4,
                len: 4096,
                buf,
                tag: "kernel",
                reply_to: caller,
            }),
        );
        sim.run();
        let stats = &sim.world().stats;
        assert_eq!(stats.counter_value("nvme.cqe_lost"), 1);
        assert_eq!(stats.counter_value("nvme.drv_resets"), 1);
        assert_eq!(
            stats.counter_value("nvme.resets"),
            1,
            "device saw the re-attach"
        );
        assert_eq!(stats.counter_value("aer.device_reset"), 1);
        assert_eq!(stats.counter_value("aer.cpl_timeout"), 2);
        assert_eq!(
            stats.counter_value("caller.ok"),
            1,
            "request completed after the reset"
        );
        assert_eq!(sim.world().expect::<PhysMemory>().read(buf, 4096), payload);
        // Conservation: both injected header corruptions were contained
        // as exhausted timeouts.
        let tallies: std::collections::BTreeMap<_, _> = sim
            .world()
            .expect::<dcs_sim::FaultPlan>()
            .tallies()
            .collect();
        let t = tallies[dcs_sim::fault::TLP_HEADER];
        assert_eq!((t.injected, t.recovered, t.exhausted), (2, 0, 2));
    }

    #[test]
    fn pipelined_requests_all_complete() {
        let (mut sim, caller, _ssd, dram) = setup(KernelMode::Optimized);
        for i in 0..16u64 {
            let buf = dram.start + (4 << 20) + i * 65536;
            sim.kickoff(
                caller,
                Go(BlockRequest {
                    id: i,
                    op: BlockOp::Read,
                    lba: i * 16,
                    len: 65536,
                    buf,
                    tag: "kernel",
                    reply_to: caller,
                }),
            );
        }
        sim.run();
        assert_eq!(sim.world().stats.counter_value("caller.ok"), 16);
    }
}
