//! The baseline orchestrators: CPU-driven execution of multi-device tasks.
//!
//! One component, three personalities (Table I's left three columns):
//!
//! * **Linux** — vanilla kernel: page cache, socket buffers, user↔kernel
//!   copies; data staged through host DRAM; processing on the GPU with
//!   host↔GPU copies.
//! * **SwOpt** — the optimized software stacks of §III-E (direct I/O,
//!   zero-copy sockets), but still host-staged data and CPU-driven control.
//! * **SwP2p** — optimized software plus peer-to-peer *data* paths where
//!   device capabilities allow: the GPU exposes its memory (GPUDirect), so
//!   SSD→GPU and GPU→NIC transfers skip host DRAM. The SSD and NIC do not
//!   expose internal memory (§V-A), so SSD↔NIC still stages through host
//!   DRAM — exactly the asymmetry the paper exploits to motivate DCS-ctrl.
//!
//! Control, in every personality, stays on the CPU: each device operation
//! pays the submit-side and completion-side software costs through the
//! host drivers, and those costs show up in both the latency breakdowns
//! (Figure 11) and the CPU-utilization breakdowns (Figures 3b, 12).

use dcs_sim::DetMap;

use dcs_gpu::GpuHandle;
use dcs_ndp::NdpFunction;
use dcs_pcie::{DmaComplete, DmaRequest, PhysAddr, PhysMemory, TlpClass};
use dcs_sim::{Breakdown, Category, Component, ComponentId, Ctx, Msg, SimTime};

use crate::costs::{KernelCosts, KernelMode};
use crate::cpu::{CpuJob, CpuJobDone};
use crate::gpu_driver::{GpuOpDone, GpuOpRequest};
use crate::job::{D2dDone, D2dJob, D2dOp};
use crate::nic_driver::{RecvDone, RecvExpect, SendDone, SendRequest};
use crate::nvme_driver::{BlockDone, BlockOp, BlockRequest};

/// Which baseline personality an executor runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwDesign {
    /// Vanilla kernel paths.
    Linux,
    /// Optimized kernel, host-staged data.
    SwOpt,
    /// Optimized kernel, P2P data paths via GPU memory.
    SwP2p,
}

impl SwDesign {
    /// The kernel mode drivers should run in under this design.
    pub fn kernel_mode(self) -> KernelMode {
        match self {
            SwDesign::Linux => KernelMode::Vanilla,
            SwDesign::SwOpt | SwDesign::SwP2p => KernelMode::Optimized,
        }
    }
}

/// Where the pipeline payload currently lives.
#[derive(Clone, Copy, Debug)]
struct PayloadLoc {
    addr: PhysAddr,
    len: usize,
    in_gpu: bool,
}

/// Why the executor is waiting.
enum Waiting {
    Block,
    Send,
    Recv,
    Gpu {
        is_digest: bool,
        function: NdpFunction,
    },
    /// A host↔GPU staging copy; `then` resumes the op afterwards.
    Copy {
        then: AfterCopy,
    },
    CpuHash {
        function: NdpFunction,
        aux: Vec<u8>,
    },
    /// A cache-hit memory copy filling the staging buffer from host DRAM.
    MemFill {
        len: usize,
    },
}

enum AfterCopy {
    /// Copy into GPU finished: launch the kernel.
    RunGpu { function: NdpFunction, aux: Vec<u8> },
    /// Copy out of GPU finished: payload is in host memory, advance.
    Advance,
}

struct JobState {
    job: D2dJob,
    step: usize,
    payload: PayloadLoc,
    breakdown: Breakdown,
    digest: Option<Vec<u8>>,
    ok: bool,
    waiting: Option<Waiting>,
    copy_started: SimTime,
    /// Host staging buffer for this job.
    host_buf: PhysAddr,
    /// GPU staging buffer for this job (when a GPU is attached).
    gpu_buf: Option<PhysAddr>,
}

/// Wiring an executor needs.
#[derive(Clone, Debug)]
pub struct ExecutorWiring {
    /// The node's CPU pool.
    pub cpu: ComponentId,
    /// The node's PCIe fabric.
    pub fabric: ComponentId,
    /// NVMe driver components, indexed by `D2dOp::SsdRead::ssd`.
    pub nvme_drivers: Vec<ComponentId>,
    /// The NIC driver.
    pub nic_driver: ComponentId,
    /// GPU driver + handle, if the node has an accelerator.
    pub gpu: Option<(ComponentId, GpuHandle)>,
    /// Host staging area: `slots` buffers of `slot_len` bytes.
    pub staging_base: PhysAddr,
    /// Per-job staging slot size in bytes.
    pub slot_len: u64,
    /// Number of staging slots (bounds in-flight jobs).
    pub slots: u64,
}

/// The baseline orchestrator component.
pub struct SwExecutor {
    design: SwDesign,
    wiring: ExecutorWiring,
    costs: KernelCosts,
    jobs: DetMap<u64, JobState>,
    /// Sub-request token → job id.
    tokens: DetMap<u64, u64>,
    next_token: u64,
    next_slot: u64,
    /// GPU staging slot cursor.
    next_gpu_slot: u64,
}

impl SwExecutor {
    /// Creates an executor.
    pub fn new(design: SwDesign, wiring: ExecutorWiring, costs: KernelCosts) -> Self {
        SwExecutor {
            design,
            wiring,
            costs,
            jobs: DetMap::new(),
            tokens: DetMap::new(),
            next_token: 1,
            next_slot: 0,
            next_gpu_slot: 0,
        }
    }

    fn token_for(&mut self, job_id: u64) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.tokens.insert(t, job_id);
        t
    }

    fn start_job(&mut self, ctx: &mut Ctx<'_>, job: D2dJob) {
        let slot = self.next_slot % self.wiring.slots;
        self.next_slot += 1;
        let host_buf = self.wiring.staging_base + slot * self.wiring.slot_len;
        let gpu_buf = self.wiring.gpu.as_ref().map(|(_, h)| {
            let gslot = self.next_gpu_slot % self.wiring.slots;
            self.next_gpu_slot += 1;
            h.memory.start + gslot * self.wiring.slot_len
        });
        let id = job.id;
        let state = JobState {
            job,
            step: 0,
            payload: PayloadLoc {
                addr: host_buf,
                len: 0,
                in_gpu: false,
            },
            breakdown: Breakdown::new(),
            digest: None,
            ok: true,
            waiting: None,
            copy_started: ctx.now(),
            host_buf,
            gpu_buf,
        };
        assert!(
            self.jobs.insert(id, state).is_none(),
            "duplicate job id {id}"
        );
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.req_begin(id, now);
            obs.span_begin("host", "sw-execute", id, now);
            obs.count("host", "jobs.submitted", 1);
        }
        self.advance(ctx, id);
    }

    /// Peeks whether the op after `step` is a GPU-processed step.
    fn next_is_process(&self, id: u64, step: usize) -> bool {
        let job = &self.jobs[&id].job;
        matches!(job.ops.get(step + 1), Some(D2dOp::Process { .. }))
    }

    fn advance(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let (step, total) = {
            let s = &self.jobs[&id];
            (s.step, s.job.ops.len())
        };
        if step >= total {
            self.finish(ctx, id);
            return;
        }
        let op = self.jobs[&id].job.ops[step].clone();
        match op {
            D2dOp::SsdRead { ssd, lba, len } => self.do_ssd_read(ctx, id, ssd, lba, len),
            D2dOp::SsdWrite { ssd, lba } => self.do_ssd_write(ctx, id, ssd, lba),
            D2dOp::Process { function, aux } => self.do_process(ctx, id, function, aux),
            D2dOp::NicSend { flow, seq } => self.do_send(ctx, id, flow, seq),
            D2dOp::NicRecv { flow, len } => self.do_recv(ctx, id, flow, len),
            D2dOp::MemRead { len } => self.do_mem_read(ctx, id, len),
        }
    }

    fn do_mem_read(&mut self, ctx: &mut Ctx<'_>, id: u64, len: usize) {
        // Cache-hit fast path: the bytes are already resident in host
        // DRAM, so the kernel only pays the memcpy into the job's staging
        // buffer — no flash, no PCIe block transfer.
        let token = self.token_for(id);
        let state = self.jobs.get_mut(&id).expect("live job");
        state.waiting = Some(Waiting::MemFill { len });
        let cost = self.costs.copy_cost(len).max(1);
        let tag = state.job.tag;
        let cpu = self.wiring.cpu;
        ctx.send_now(
            cpu,
            CpuJob {
                token,
                cost_ns: cost,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn do_ssd_read(&mut self, ctx: &mut Ctx<'_>, id: u64, ssd: usize, lba: u64, len: usize) {
        // P2P: if the data is about to be processed on the GPU, read
        // straight into GPU memory (GPUDirect).
        let to_gpu = self.design == SwDesign::SwP2p
            && self.next_is_process(id, self.jobs[&id].step)
            && self.wiring.gpu.is_some();
        let token = self.token_for(id);
        let state = self.jobs.get_mut(&id).expect("live job");
        let buf = if to_gpu {
            state.gpu_buf.expect("gpu staged")
        } else {
            state.host_buf
        };
        state.payload = PayloadLoc {
            addr: buf,
            len,
            in_gpu: to_gpu,
        };
        state.waiting = Some(Waiting::Block);
        let tag = state.job.tag;
        let driver = self.wiring.nvme_drivers[ssd];
        ctx.send_now(
            driver,
            BlockRequest {
                id: token,
                op: BlockOp::Read,
                lba,
                len,
                buf,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn do_ssd_write(&mut self, ctx: &mut Ctx<'_>, id: u64, ssd: usize, lba: u64) {
        // The SSD pulls write data via PRPs; under P2P it may pull from
        // GPU memory, otherwise the payload must be in host DRAM first.
        let needs_stage = {
            let s = &self.jobs[&id];
            s.payload.in_gpu && self.design != SwDesign::SwP2p
        };
        if needs_stage {
            self.copy_gpu_host(ctx, id, false, AfterCopy::Advance);
            return;
        }
        let token = self.token_for(id);
        let state = self.jobs.get_mut(&id).expect("live job");
        state.waiting = Some(Waiting::Block);
        let tag = state.job.tag;
        let driver = self.wiring.nvme_drivers[ssd];
        let (buf, len) = (state.payload.addr, state.payload.len);
        ctx.send_now(
            driver,
            BlockRequest {
                id: token,
                op: BlockOp::Write,
                lba,
                len: len.div_ceil(4096) * 4096,
                buf,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn do_process(&mut self, ctx: &mut Ctx<'_>, id: u64, function: NdpFunction, aux: Vec<u8>) {
        if self.wiring.gpu.is_none() {
            // No accelerator: hash on the CPU.
            let token = self.token_for(id);
            let state = self.jobs.get_mut(&id).expect("live job");
            state.waiting = Some(Waiting::CpuHash { function, aux });
            let cost = (state.payload.len as f64 / self.costs.cpu_hash_bytes_per_ns).ceil() as u64;
            let tag = state.job.tag;
            let cpu = self.wiring.cpu;
            ctx.send_now(
                cpu,
                CpuJob {
                    token,
                    cost_ns: cost,
                    tag,
                    reply_to: ctx.self_id(),
                },
            );
            return;
        }
        let in_gpu = self.jobs[&id].payload.in_gpu;
        if !in_gpu {
            // Stage into GPU memory first (cudaMemcpy H2D / P2P DMA).
            self.copy_gpu_host(ctx, id, true, AfterCopy::RunGpu { function, aux });
            return;
        }
        self.launch_gpu(ctx, id, function, aux);
    }

    fn launch_gpu(&mut self, ctx: &mut Ctx<'_>, id: u64, function: NdpFunction, aux: Vec<u8>) {
        let token = self.token_for(id);
        let state = self.jobs.get_mut(&id).expect("live job");
        let is_digest = function.is_digest();
        state.waiting = Some(Waiting::Gpu {
            is_digest,
            function,
        });
        // GPU control CPU time gets its own utilization tag so the
        // Figure 12-style breakdowns separate it from kernel work.
        let tag = "gpu-control";
        let _ = state.job.tag;
        let (driver, handle) = self.wiring.gpu.as_ref().expect("gpu attached");
        // Output goes next to the input in GPU memory (digests) or into the
        // second half of the job's GPU slot (transforms).
        let out_addr = state.gpu_buf.expect("gpu staged") + self.wiring.slot_len / 2;
        let input_addr = state.payload.addr;
        let input_len = state.payload.len;
        let _ = handle;
        let driver = *driver;
        ctx.send_now(
            driver,
            GpuOpRequest {
                id: token,
                function,
                aux,
                input_addr,
                input_len,
                output_addr: out_addr,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    /// Starts a host↔GPU staging copy (`to_gpu` chooses direction).
    fn copy_gpu_host(&mut self, ctx: &mut Ctx<'_>, id: u64, to_gpu: bool, then: AfterCopy) {
        let token = self.token_for(id);
        let state = self.jobs.get_mut(&id).expect("live job");
        state.waiting = Some(Waiting::Copy { then });
        state.copy_started = ctx.now();
        let (src, dst) = if to_gpu {
            (state.payload.addr, state.gpu_buf.expect("gpu attached"))
        } else {
            (state.payload.addr, state.host_buf)
        };
        let len = state.payload.len;
        state.payload = PayloadLoc {
            addr: dst,
            len,
            in_gpu: to_gpu,
        };
        // The CUDA driver charges setup CPU time; the copy itself is DMA.
        let setup = self.costs.gpu_copy_setup_ns;
        let tag = "gpu-copy";
        let _ = state.job.tag;
        let cpu = self.wiring.cpu;
        let cpu_token = self.token_for(id);
        // The CPU setup and the DMA run back-to-back; we only gate job
        // progress on the DMA completion and fold the setup into GPU
        // control accounting.
        ctx.send_now(
            cpu,
            CpuJob {
                token: cpu_token,
                cost_ns: setup,
                tag,
                reply_to: ctx.self_id(),
            },
        );
        self.tokens.remove(&cpu_token); // accounted, no continuation
        let fabric = self.wiring.fabric;
        ctx.send_in(
            setup,
            fabric,
            DmaRequest {
                id: token,
                src,
                dst,
                len,
                class: TlpClass::Data,
                reply_to: ctx.self_id(),
            },
        );
        let state = self.jobs.get_mut(&id).expect("live job");
        state.breakdown.add(Category::GpuControl, setup);
    }

    fn do_send(&mut self, ctx: &mut Ctx<'_>, id: u64, flow: dcs_nic::TcpFlow, seq: u32) {
        // Under SwOpt/Linux the NIC gathers from host memory; stage out of
        // the GPU if needed. Under SwP2p GPUDirect lets the NIC gather
        // straight from GPU memory.
        let needs_stage = {
            let s = &self.jobs[&id];
            s.payload.in_gpu && self.design != SwDesign::SwP2p
        };
        if needs_stage {
            self.copy_gpu_host(ctx, id, false, AfterCopy::Advance);
            return;
        }
        let token = self.token_for(id);
        let state = self.jobs.get_mut(&id).expect("live job");
        state.waiting = Some(Waiting::Send);
        let tag = state.job.tag;
        let nic = self.wiring.nic_driver;
        ctx.send_now(
            nic,
            SendRequest {
                id: token,
                flow,
                seq,
                payload_addr: state.payload.addr,
                len: state.payload.len,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn do_recv(&mut self, ctx: &mut Ctx<'_>, id: u64, flow: dcs_nic::TcpFlow, len: usize) {
        let token = self.token_for(id);
        let state = self.jobs.get_mut(&id).expect("live job");
        state.waiting = Some(Waiting::Recv);
        state.payload = PayloadLoc {
            addr: state.host_buf,
            len,
            in_gpu: false,
        };
        let tag = state.job.tag;
        let nic = self.wiring.nic_driver;
        ctx.send_now(
            nic,
            RecvExpect {
                id: token,
                flow,
                len,
                into: state.host_buf,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let state = self.jobs.remove(&id).expect("live job");
        ctx.world().stats.counter("executor.jobs_done").add(1);
        // End-to-end integrity audit: record what this job is reporting
        // as its result so tests can cross-check "completed ok" against
        // the actual payload bytes.
        {
            let payload = ctx
                .world_ref()
                .expect::<PhysMemory>()
                .read(state.payload.addr, state.payload.len);
            dcs_sim::integrity::audit(ctx.world(), id, state.ok, &payload);
        }
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.span_end("host", "sw-execute", id, now);
            obs.req_end(id, "host:sw-execute", now);
            obs.count("host", "jobs.done", 1);
        }
        ctx.send_now(
            state.job.reply_to,
            D2dDone {
                id,
                ok: state.ok,
                breakdown: state.breakdown,
                digest: state.digest,
                payload_len: state.payload.len,
            },
        );
    }

    fn step_done(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let state = self.jobs.get_mut(&id).expect("live job");
        state.step += 1;
        state.waiting = None;
        self.advance(ctx, id);
    }
}

impl Component for SwExecutor {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<D2dJob>() {
            Ok(job) => {
                self.start_job(ctx, job);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<BlockDone>() {
            Ok(done) => {
                let id = self.tokens.remove(&done.id).expect("token routed");
                let state = self.jobs.get_mut(&id).expect("live job");
                debug_assert!(matches!(state.waiting, Some(Waiting::Block)));
                state.breakdown.merge(&done.breakdown);
                state.ok &= done.ok;
                self.step_done(ctx, id);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SendDone>() {
            Ok(done) => {
                let id = self.tokens.remove(&done.id).expect("token routed");
                let state = self.jobs.get_mut(&id).expect("live job");
                state.breakdown.merge(&done.breakdown);
                state.ok &= done.ok;
                self.step_done(ctx, id);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RecvDone>() {
            Ok(done) => {
                let id = self.tokens.remove(&done.id).expect("token routed");
                let state = self.jobs.get_mut(&id).expect("live job");
                state.breakdown.merge(&done.breakdown);
                state.ok &= done.ok;
                self.step_done(ctx, id);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<GpuOpDone>() {
            Ok(done) => {
                let id = self.tokens.remove(&done.id).expect("token routed");
                let (is_digest, function) = {
                    let state = &self.jobs[&id];
                    match &state.waiting {
                        Some(Waiting::Gpu {
                            is_digest,
                            function,
                        }) => (*is_digest, *function),
                        other => {
                            panic!("GpuOpDone while not waiting on GPU: {:?}", other.is_some())
                        }
                    }
                };
                let out_addr =
                    self.jobs[&id].gpu_buf.expect("gpu staged") + self.wiring.slot_len / 2;
                if is_digest {
                    let dlen = function.digest_len().expect("digest function");
                    let digest = ctx.world_ref().expect::<PhysMemory>().read(out_addr, dlen);
                    let state = self.jobs.get_mut(&id).expect("live job");
                    state.digest = Some(digest);
                    // Fetching the digest to the host is a small D2H read,
                    // folded into the GPU-control segment.
                    state.breakdown.merge(&done.breakdown);
                    state.ok &= done.ok;
                } else {
                    let state = self.jobs.get_mut(&id).expect("live job");
                    state.payload = PayloadLoc {
                        addr: out_addr,
                        len: done.output_len,
                        in_gpu: true,
                    };
                    state.breakdown.merge(&done.breakdown);
                    state.ok &= done.ok;
                }
                self.step_done(ctx, id);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<DmaComplete>() {
            Ok(done) => {
                let id = self.tokens.remove(&done.id).expect("token routed");
                let copy_time = {
                    let state = self.jobs.get_mut(&id).expect("live job");
                    ctx.now() - state.copy_started
                };
                let then = {
                    let state = self.jobs.get_mut(&id).expect("live job");
                    state.breakdown.add(Category::GpuCopy, copy_time);
                    if !done.status.is_ok() {
                        // Poisoned or timed-out staging copy: the payload
                        // can't be trusted, so the job is marked failed
                        // but still runs to completion (steps that parse
                        // the payload tolerate garbage bytes).
                        state.ok = false;
                        ctx.world().stats.counter("executor.poisoned_copies").add(1);
                    }
                    match state.waiting.take() {
                        Some(Waiting::Copy { then }) => then,
                        _ => panic!("DmaComplete while not waiting on a copy"),
                    }
                };
                match then {
                    AfterCopy::RunGpu { function, aux } => self.launch_gpu(ctx, id, function, aux),
                    AfterCopy::Advance => {
                        // The copy was a prerequisite of the *current* op;
                        // re-run it now that the payload is in host memory.
                        self.advance(ctx, id);
                    }
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<CpuJobDone>() {
            Ok(done) => {
                let Some(id) = self.tokens.remove(&done.token) else {
                    // Fire-and-forget accounting job (copy setup).
                    return;
                };
                let (function, aux, addr, len, start) = {
                    let state = self.jobs.get_mut(&id).expect("live job");
                    match state.waiting.take() {
                        Some(Waiting::CpuHash { function, aux }) => (
                            function,
                            aux,
                            state.payload.addr,
                            state.payload.len,
                            state.copy_started,
                        ),
                        Some(Waiting::MemFill { len }) => {
                            // Cache copy finished: the staging buffer is
                            // the payload now.
                            let host_buf = state.host_buf;
                            state.payload = PayloadLoc {
                                addr: host_buf,
                                len,
                                in_gpu: false,
                            };
                            let cost = self.costs.copy_cost(len).max(1);
                            state.breakdown.add(Category::DataCopy, cost);
                            self.step_done(ctx, id);
                            return;
                        }
                        _ => panic!("CpuJobDone while not hashing on CPU"),
                    }
                };
                let _ = start;
                let input = ctx.world_ref().expect::<PhysMemory>().read(addr, len);
                let result = function.apply(&input, &aux);
                let state = self.jobs.get_mut(&id).expect("live job");
                match result {
                    Ok(out) => {
                        if let Some(d) = out.digest {
                            state.digest = Some(d);
                        }
                        if let Some(data) = out.data {
                            let host_buf = state.host_buf;
                            state.payload = PayloadLoc {
                                addr: host_buf,
                                len: data.len(),
                                in_gpu: false,
                            };
                            ctx.world()
                                .expect_mut::<PhysMemory>()
                                .write(host_buf, &data);
                        }
                        let cost = (len as f64 / self.costs.cpu_hash_bytes_per_ns).ceil() as u64;
                        let state = self.jobs.get_mut(&id).expect("live job");
                        state.breakdown.add(Category::Hash, cost);
                    }
                    Err(_) => state.ok = false,
                }
                self.step_done(ctx, id);
            }
            Err(other) => panic!("SwExecutor received unexpected message: {other:?}"),
        }
    }
}
