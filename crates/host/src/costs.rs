//! The kernel cost model.
//!
//! Each field is the CPU time one invocation of a software routine
//! occupies, in nanoseconds on a 2.3 GHz Xeon E5-2630 core (Table V).
//! Values are calibrated so the *shape* of the paper's Figures 2, 3, 8 and
//! 11 holds: device control and boundary crossings dominate the software
//! side of an optimized I/O path, vanilla-Linux paths pay page-cache and
//! socket-buffer management on top, and per-byte costs (copies, TCP
//! processing) scale with transfer size. EXPERIMENTS.md records the
//! resulting paper-vs-measured comparison.

/// Whether a driver path models the stock kernel or the optimized stacks
/// the paper builds on (§III-E: direct I/O, page-cache and socket-buffer
/// bypass, dedicated buffers).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelMode {
    /// Stock kernel: page cache, socket buffers, user↔kernel copies.
    Vanilla,
    /// Optimized stacks: direct I/O, zero-copy, dedicated buffers.
    Optimized,
}

/// CPU costs of kernel software routines, in nanoseconds per invocation
/// (or per byte where noted).
#[derive(Clone, Debug)]
pub struct KernelCosts {
    /// User→kernel→user boundary crossing for one syscall/ioctl.
    pub syscall_ns: u64,
    /// File-descriptor → inode resolution and permission checks.
    pub vfs_lookup_ns: u64,
    /// File-system extent/block mapping for one request.
    pub fs_block_map_ns: u64,
    /// Page-cache lookup (vanilla mode only).
    pub page_cache_lookup_ns: u64,
    /// Page-cache insertion/bookkeeping per request (vanilla mode only).
    pub page_cache_insert_ns: u64,
    /// Block-layer request build + NVMe driver submit (bio, tagging,
    /// doorbell write).
    pub block_submit_ns: u64,
    /// Block-layer per-page work (bio segments, mapping) per 4 KiB page.
    pub block_per_page_ns: u64,
    /// Interrupt entry/dispatch.
    pub irq_entry_ns: u64,
    /// Block/NIC completion path: CQ processing, request teardown, wakeup.
    pub completion_path_ns: u64,
    /// Context switch when a blocked task resumes.
    pub context_switch_ns: u64,
    /// Socket/TCP transmit setup per operation (locks, cb setup).
    pub tcp_tx_setup_ns: u64,
    /// TCP transmit work per packet (headers handled by LSO; this is
    /// skb/queue management).
    pub tcp_tx_per_packet_ns: u64,
    /// TCP receive work per packet (protocol processing, reassembly).
    pub tcp_rx_per_packet_ns: u64,
    /// Socket-buffer management per operation (vanilla mode only).
    pub socket_buffer_ns: u64,
    /// memcpy throughput for kernel↔user and bounce-buffer copies,
    /// in bytes per nanosecond (12 ≈ 12 GB/s).
    pub copy_bytes_per_ns: f64,
    /// CUDA-driver cost to set up one async memcpy (cudaMemcpy overhead).
    pub gpu_copy_setup_ns: u64,
    /// CPU hashing throughput when no accelerator is used, in bytes/ns.
    pub cpu_hash_bytes_per_ns: f64,
    /// CUDA-driver cost to launch a kernel (ioctl + driver work).
    pub gpu_launch_ns: u64,
    /// CUDA-driver cost to synchronize/complete a kernel.
    pub gpu_sync_ns: u64,
    /// HDC Driver: ioctl entry + command marshalling (DCS-ctrl path).
    pub hdc_ioctl_ns: u64,
    /// HDC Driver: metadata retrieval from VFS / TCP stack per command.
    pub hdc_metadata_ns: u64,
    /// HDC Driver: completion interrupt handling per command.
    pub hdc_completion_ns: u64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            syscall_ns: 700,
            vfs_lookup_ns: 900,
            fs_block_map_ns: 2_200,
            page_cache_lookup_ns: 1_200,
            page_cache_insert_ns: 2_600,
            block_submit_ns: 2_000,
            block_per_page_ns: 300,
            irq_entry_ns: 600,
            completion_path_ns: 1_900,
            context_switch_ns: 1_300,
            tcp_tx_setup_ns: 1_600,
            tcp_tx_per_packet_ns: 2_200,
            tcp_rx_per_packet_ns: 3_000,
            socket_buffer_ns: 2_400,
            copy_bytes_per_ns: 7.0,
            gpu_copy_setup_ns: 9_000,
            cpu_hash_bytes_per_ns: 1.2,
            gpu_launch_ns: 16_000,
            gpu_sync_ns: 13_000,
            hdc_ioctl_ns: 900,
            hdc_metadata_ns: 1_400,
            hdc_completion_ns: 1_100,
        }
    }
}

impl KernelCosts {
    /// Cost of copying `len` bytes with the CPU.
    pub fn copy_cost(&self, len: usize) -> u64 {
        (len as f64 / self.copy_bytes_per_ns).ceil() as u64
    }

    /// Full storage software cost on the submit side for one request of
    /// `len` bytes (syscall + VFS + FS mapping + optional page cache +
    /// driver submit + per-page block-layer work).
    pub fn storage_submit_cost(&self, mode: KernelMode, len: usize) -> u64 {
        let pages = len.div_ceil(4096) as u64;
        let base = self.syscall_ns
            + self.vfs_lookup_ns
            + self.fs_block_map_ns
            + self.block_submit_ns
            + self.block_per_page_ns * pages;
        match mode {
            KernelMode::Vanilla => base + self.page_cache_lookup_ns + self.page_cache_insert_ns,
            KernelMode::Optimized => base,
        }
    }

    /// Completion-side storage cost (IRQ + completion + context switch).
    pub fn storage_complete_cost(&self) -> u64 {
        self.irq_entry_ns + self.completion_path_ns + self.context_switch_ns
    }

    /// Transmit-side network software cost for `packets` packets of an
    /// operation (socket setup + per-packet work + optional buffering).
    pub fn net_tx_cost(&self, mode: KernelMode, packets: usize) -> u64 {
        let base =
            self.syscall_ns + self.tcp_tx_setup_ns + self.tcp_tx_per_packet_ns * packets as u64;
        match mode {
            KernelMode::Vanilla => base + self.socket_buffer_ns,
            KernelMode::Optimized => base,
        }
    }

    /// Receive-side network software cost for `packets` packets.
    pub fn net_rx_cost(&self, mode: KernelMode, packets: usize) -> u64 {
        let base = self.irq_entry_ns
            + self.tcp_rx_per_packet_ns * packets as u64
            + self.completion_path_ns;
        match mode {
            KernelMode::Vanilla => base + self.socket_buffer_ns,
            KernelMode::Optimized => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_linearly() {
        let c = KernelCosts::default();
        assert_eq!(c.copy_cost(0), 0);
        assert_eq!(c.copy_cost(7_000), 1_000);
        assert!(c.copy_cost(1) >= 1);
    }

    #[test]
    fn vanilla_paths_cost_more_than_optimized() {
        let c = KernelCosts::default();
        assert!(
            c.storage_submit_cost(KernelMode::Vanilla, 4096)
                > c.storage_submit_cost(KernelMode::Optimized, 4096)
        );
        assert!(
            c.storage_submit_cost(KernelMode::Optimized, 65536)
                > c.storage_submit_cost(KernelMode::Optimized, 4096)
        );
        assert!(c.net_tx_cost(KernelMode::Vanilla, 4) > c.net_tx_cost(KernelMode::Optimized, 4));
        assert!(c.net_rx_cost(KernelMode::Vanilla, 4) > c.net_rx_cost(KernelMode::Optimized, 4));
    }

    #[test]
    fn per_packet_costs_scale() {
        let c = KernelCosts::default();
        let one = c.net_tx_cost(KernelMode::Optimized, 1);
        let ten = c.net_tx_cost(KernelMode::Optimized, 10);
        assert_eq!(ten - one, 9 * c.tcp_tx_per_packet_ns);
    }
}
