//! The host GPU driver (CUDA-runtime stand-in).
//!
//! The baseline designs accelerate intermediate processing on the GPU, and
//! the paper's point is precisely what that costs the host: a driver
//! ioctl to launch each kernel and another round of driver work to
//! synchronize on completion, all on the CPU (Figures 3 and 11b's
//! "GPU control" segments). The data movement to and from GPU memory is
//! done by the caller over the normal PCIe fabric, matching how the
//! baselines differ (SwOpt copies host↔GPU; SwP2p DMAs peer-to-peer).

use dcs_sim::DetMap;

use dcs_gpu::{GpuHandle, KernelDone, LaunchKernel};
use dcs_ndp::NdpFunction;
use dcs_pcie::PhysAddr;
use dcs_sim::{Breakdown, Category, Component, ComponentId, Ctx, Msg, SimTime};

use crate::costs::KernelCosts;
use crate::cpu::{CpuJob, CpuJobDone};

/// Run `function` over data already resident in GPU memory.
#[derive(Debug, Clone)]
pub struct GpuOpRequest {
    /// Requester-chosen identifier echoed in [`GpuOpDone`].
    pub id: u64,
    /// The processing function.
    pub function: NdpFunction,
    /// Function parameters (AES key‖nonce).
    pub aux: Vec<u8>,
    /// Input address in GPU memory.
    pub input_addr: PhysAddr,
    /// Input length in bytes.
    pub input_len: usize,
    /// Output address in GPU memory.
    pub output_addr: PhysAddr,
    /// CPU-utilization tag.
    pub tag: &'static str,
    /// Component notified on completion.
    pub reply_to: ComponentId,
}

/// Completion of a [`GpuOpRequest`].
#[derive(Debug, Clone)]
pub struct GpuOpDone {
    /// Identifier from the originating request.
    pub id: u64,
    /// Whether the kernel succeeded.
    pub ok: bool,
    /// Bytes written at the output address.
    pub output_len: usize,
    /// Latency breakdown (GPU control vs. compute).
    pub breakdown: Breakdown,
}

struct Pending {
    req: GpuOpRequest,
    launched_at: SimTime,
    kernel_done_at: Option<SimTime>,
    ok: bool,
    output_len: usize,
}

enum CpuPhase {
    Launch { token: u64 },
    Sync { token: u64 },
}

/// The driver component. One instance drives one GPU.
pub struct HostGpuDriver {
    cpu: ComponentId,
    gpu: GpuHandle,
    costs: KernelCosts,
    pending: DetMap<u64, Pending>,
    cpu_phases: DetMap<u64, CpuPhase>,
    next_token: u64,
}

impl HostGpuDriver {
    /// Creates the driver.
    pub fn new(cpu: ComponentId, gpu: GpuHandle, costs: KernelCosts) -> Self {
        HostGpuDriver {
            cpu,
            gpu,
            costs,
            pending: DetMap::new(),
            cpu_phases: DetMap::new(),
            next_token: 1,
        }
    }

    fn cpu_job(&mut self, ctx: &mut Ctx<'_>, cost: u64, tag: &'static str, phase: CpuPhase) {
        let t = self.next_token;
        self.next_token += 1;
        self.cpu_phases.insert(t, phase);
        let cpu = self.cpu;
        ctx.send_now(
            cpu,
            CpuJob {
                token: t,
                cost_ns: cost,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }
}

impl Component for HostGpuDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<GpuOpRequest>() {
            Ok(req) => {
                let token = self.next_token;
                self.next_token += 1;
                let tag = req.tag;
                self.pending.insert(
                    token,
                    Pending {
                        req,
                        launched_at: ctx.now(),
                        kernel_done_at: None,
                        ok: false,
                        output_len: 0,
                    },
                );
                let cost = self.costs.gpu_launch_ns;
                self.cpu_job(ctx, cost, tag, CpuPhase::Launch { token });
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(done) => {
                match self.cpu_phases.remove(&done.token).expect("live cpu phase") {
                    CpuPhase::Launch { token } => {
                        let p = self.pending.get_mut(&token).expect("live op");
                        p.launched_at = ctx.now();
                        let launch = LaunchKernel {
                            id: token,
                            function: p.req.function,
                            input_addr: p.req.input_addr,
                            input_len: p.req.input_len,
                            aux: p.req.aux.clone(),
                            output_addr: p.req.output_addr,
                        };
                        let gpu = self.gpu.device;
                        ctx.send_now(gpu, launch);
                    }
                    CpuPhase::Sync { token } => {
                        let p = self.pending.remove(&token).expect("live op");
                        let kdone = p.kernel_done_at.expect("kernel completed");
                        let mut breakdown = Breakdown::new();
                        breakdown.add(Category::Hash, kdone - p.launched_at);
                        breakdown.add(
                            Category::GpuControl,
                            self.costs.gpu_launch_ns + self.costs.gpu_sync_ns,
                        );
                        ctx.send_now(
                            p.req.reply_to,
                            GpuOpDone {
                                id: p.req.id,
                                ok: p.ok,
                                output_len: p.output_len,
                                breakdown,
                            },
                        );
                    }
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<KernelDone>() {
            Ok(done) => {
                let tag = {
                    let p = self.pending.get_mut(&done.id).expect("live op");
                    p.kernel_done_at = Some(ctx.now());
                    p.ok = done.ok;
                    p.output_len = done.output_len;
                    p.req.tag
                };
                let cost = self.costs.gpu_sync_ns;
                let token = done.id;
                self.cpu_job(ctx, cost, tag, CpuPhase::Sync { token });
            }
            Err(other) => panic!("HostGpuDriver received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPool;
    use dcs_gpu::{install_gpu, GpuConfig};
    use dcs_pcie::{PhysMemory, PortId};
    use dcs_sim::Simulator;

    struct Caller {
        driver: ComponentId,
        done: Vec<GpuOpDone>,
    }

    #[derive(Debug)]
    struct Go(GpuOpRequest);

    impl Component for Caller {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<Go>() {
                Ok(Go(req)) => {
                    let d = self.driver;
                    ctx.send_now(d, req);
                    return;
                }
                Err(m) => m,
            };
            let d = msg
                .downcast::<GpuOpDone>()
                .expect("caller gets gpu completions");
            ctx.world().stats.counter("caller.done").add(1);
            if d.ok {
                ctx.world().stats.counter("caller.ok").add(1);
            }
            self.done.push(d);
        }
    }

    #[test]
    fn gpu_op_charges_control_cpu_and_produces_digest() {
        let mut sim = Simulator::new(2);
        sim.world_mut().insert(PhysMemory::new());
        let cpu = sim.add("cpu", CpuPool::new("node0", 4));
        let gpu = install_gpu(&mut sim, GpuConfig::default(), "gpu0", PortId(3));
        let driver = sim.add(
            "gpu-driver",
            HostGpuDriver::new(cpu, gpu.clone(), KernelCosts::default()),
        );
        let caller = sim.reserve("caller");
        sim.install(
            caller,
            Caller {
                driver,
                done: vec![],
            },
        );
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(gpu.memory.start, b"abc");
        sim.kickoff(
            caller,
            Go(GpuOpRequest {
                id: 1,
                function: NdpFunction::Md5,
                aux: vec![],
                input_addr: gpu.memory.start,
                input_len: 3,
                output_addr: gpu.memory.start + 0x1000,
                tag: "gpu-control",
                reply_to: caller,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("caller.ok"), 1);
        let digest = sim
            .world()
            .expect::<PhysMemory>()
            .read(gpu.memory.start + 0x1000, 16);
        assert_eq!(dcs_ndp::to_hex(&digest), "900150983cd24fb0d6963f7d28e17f72");
        // CPU accounting includes launch + sync.
        let stats = sim.world().expect::<crate::cpu::CpuStats>();
        let costs = KernelCosts::default();
        assert_eq!(
            stats.pool("node0").unwrap().tracker.busy_for("gpu-control"),
            costs.gpu_launch_ns + costs.gpu_sync_ns
        );
    }
}
