//! An idealized consolidated device — the *device integration* reference
//! point of Figure 3 and Table I.
//!
//! QuickSAN/BlueDBM-style devices fuse storage, network, and processing
//! behind one internal interconnect: data never crosses the PCIe switch
//! and control never leaves the device. This executor models that upper
//! bound analytically: per-op device service times (flash, processing,
//! wire) plus a tiny internal control overhead, with a single syscall of
//! host software per job. It really moves and processes the bytes (so
//! digests remain comparable), but intentionally skips fabric contention —
//! it exists to show how close DCS-ctrl gets to a fused design while
//! keeping off-the-shelf devices.

use dcs_sim::DetMap;

use dcs_nvme::{NvmeConfig, LBA_SIZE};
use dcs_pcie::{AddrRange, PhysMemory};
use dcs_sim::{time, Bandwidth, Breakdown, Category, Component, ComponentId, Ctx, Msg};

use crate::costs::KernelCosts;
use crate::cpu::{CpuJob, CpuJobDone};
use crate::job::{D2dDone, D2dJob, D2dOp};

/// Timing parameters of the consolidated device.
#[derive(Clone, Debug)]
pub struct IntegrationConfig {
    /// Flash timing (same silicon as the discrete SSD).
    pub nvme: NvmeConfig,
    /// Internal interconnect bandwidth between the fused engines.
    pub internal_bandwidth: Bandwidth,
    /// Hardware control overhead per device operation.
    pub control_ns: u64,
    /// Processing throughput of the integrated accelerator.
    pub processing: Bandwidth,
    /// Network line rate of the integrated NIC.
    pub wire: Bandwidth,
    /// One-way network propagation.
    pub propagation_ns: u64,
}

impl Default for IntegrationConfig {
    fn default() -> Self {
        IntegrationConfig {
            nvme: NvmeConfig::default(),
            internal_bandwidth: Bandwidth::gbps(64.0),
            control_ns: 300,
            processing: Bandwidth::gbps(40.0),
            wire: Bandwidth::gbps(10.0),
            propagation_ns: time::us(2),
        }
    }
}

/// The idealized integrated-device executor.
///
/// Accepts the same [`D2dJob`]s as every other executor. Storage reads
/// take their data from the given flash region so end-to-end digests match
/// the discrete designs.
pub struct IntegratedExecutor {
    config: IntegrationConfig,
    costs: KernelCosts,
    cpu: ComponentId,
    /// Flash backing region (shared layout with the discrete SSD model).
    flash: AddrRange,
    pending: DetMap<u64, D2dJob>,
    next_token: u64,
    tokens: DetMap<u64, u64>,
}

/// Internal: all device work for a job has elapsed.
#[derive(Debug)]
struct DeviceDone {
    job_id: u64,
    breakdown: Breakdown,
    digest: Option<Vec<u8>>,
    ok: bool,
    payload_len: usize,
}

impl IntegratedExecutor {
    /// Creates the executor over a flash region.
    pub fn new(
        config: IntegrationConfig,
        costs: KernelCosts,
        cpu: ComponentId,
        flash: AddrRange,
    ) -> Self {
        IntegratedExecutor {
            config,
            costs,
            cpu,
            flash,
            pending: DetMap::new(),
            next_token: 1,
            tokens: DetMap::new(),
        }
    }

    /// Computes device time and runs the real data path for `job`.
    fn execute(&self, ctx: &mut Ctx<'_>, job: &D2dJob) -> DeviceDone {
        let mut breakdown = Breakdown::new();
        let mut payload: Vec<u8> = Vec::new();
        let mut digest = None;
        let mut ok = true;
        for op in &job.ops {
            breakdown.add(Category::DeviceControl, self.config.control_ns);
            match op {
                D2dOp::SsdRead { lba, len, .. } => {
                    let t = self.config.nvme.read_latency_ns
                        + self.config.nvme.read_bandwidth.transfer_time(*len)
                        + self.config.internal_bandwidth.transfer_time(*len);
                    breakdown.add(Category::Read, t);
                    payload = ctx
                        .world_ref()
                        .expect::<PhysMemory>()
                        .read(self.flash.start + *lba * LBA_SIZE, *len);
                }
                D2dOp::SsdWrite { lba, .. } => {
                    let t = self.config.nvme.write_latency_ns
                        + self
                            .config
                            .nvme
                            .write_bandwidth
                            .transfer_time(payload.len())
                        + self.config.internal_bandwidth.transfer_time(payload.len());
                    breakdown.add(Category::Write, t);
                    ctx.world()
                        .expect_mut::<PhysMemory>()
                        .write(self.flash.start + *lba * LBA_SIZE, &payload);
                }
                D2dOp::Process { function, aux } => {
                    let t = self.config.processing.transfer_time(payload.len());
                    breakdown.add(Category::Hash, t);
                    match function.apply(&payload, aux) {
                        Ok(out) => {
                            if let Some(d) = out.digest {
                                digest = Some(d);
                            }
                            if let Some(data) = out.data {
                                payload = data;
                            }
                        }
                        Err(_) => ok = false,
                    }
                }
                D2dOp::NicSend { .. } => {
                    let t =
                        self.config.wire.transfer_time(payload.len()) + self.config.propagation_ns;
                    breakdown.add(Category::Wire, t);
                }
                D2dOp::NicRecv { len, .. } => {
                    let t = self.config.wire.transfer_time(*len) + self.config.propagation_ns;
                    breakdown.add(Category::Wire, t);
                    // Integrated receive synthesizes the payload locally
                    // (the fused device has no discrete peer in this
                    // reference model).
                    payload = vec![0u8; *len];
                }
                D2dOp::MemRead { len } => {
                    // Cache-hit fast path: the fused device pulls the
                    // bytes from host DRAM over its internal interconnect.
                    let t = self.config.internal_bandwidth.transfer_time(*len);
                    breakdown.add(Category::DataCopy, t);
                    payload = vec![0u8; *len];
                }
            }
        }
        DeviceDone {
            job_id: job.id,
            breakdown,
            digest,
            ok,
            payload_len: payload.len(),
        }
    }
}

impl Component for IntegratedExecutor {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<D2dJob>() {
            Ok(job) => {
                // One syscall of host software per job.
                let token = self.next_token;
                self.next_token += 1;
                self.tokens.insert(token, job.id);
                let cpu = self.cpu;
                let tag = job.tag;
                self.pending.insert(job.id, job);
                let cost = self.costs.syscall_ns + self.costs.vfs_lookup_ns;
                ctx.send_now(
                    cpu,
                    CpuJob {
                        token,
                        cost_ns: cost,
                        tag,
                        reply_to: ctx.self_id(),
                    },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(done) => {
                let job_id = self.tokens.remove(&done.token).expect("token routed");
                let job = self.pending.get(&job_id).expect("live job").clone();
                let mut result = self.execute(ctx, &job);
                result.breakdown.add(
                    Category::DeviceControl,
                    self.costs.syscall_ns + self.costs.vfs_lookup_ns,
                );
                let delay = result.breakdown.total();
                ctx.send_self_in(delay, result);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<DeviceDone>() {
            Ok(done) => {
                let job = self.pending.remove(&done.job_id).expect("live job");
                ctx.send_now(
                    job.reply_to,
                    D2dDone {
                        id: done.job_id,
                        ok: done.ok,
                        breakdown: done.breakdown,
                        digest: done.digest,
                        payload_len: done.payload_len,
                    },
                );
            }
            Err(other) => panic!("IntegratedExecutor received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPool;
    use dcs_ndp::NdpFunction;
    use dcs_pcie::PortId;
    use dcs_sim::Simulator;

    struct Sink;
    impl Component for Sink {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let d = msg
                .downcast::<D2dDone>()
                .expect("sink gets job completions");
            ctx.world().stats.counter("sink.done").add(1);
            if let Some(digest) = d.digest {
                assert_eq!(
                    dcs_ndp::to_hex(&digest),
                    dcs_ndp::to_hex(&dcs_ndp::md5::md5(&vec![0x11u8; 8192]))
                );
                ctx.world().stats.counter("sink.digest_ok").add(1);
            }
        }
    }

    #[test]
    fn integrated_read_hash_send_is_fast_and_correct() {
        let mut sim = Simulator::new(4);
        sim.world_mut().insert(PhysMemory::new());
        let flash = sim.world_mut().expect_mut::<PhysMemory>().alloc_region(
            "fused-flash",
            1 << 30,
            PortId(1),
        );
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(flash.start, &vec![0x11u8; 8192]);
        let cpu = sim.add("cpu", CpuPool::new("node0", 6));
        let exec = sim.add(
            "integrated",
            IntegratedExecutor::new(
                IntegrationConfig::default(),
                KernelCosts::default(),
                cpu,
                flash,
            ),
        );
        let sink = sim.add("sink", Sink);
        sim.kickoff(
            exec,
            D2dJob {
                id: 1,
                ops: vec![
                    D2dOp::SsdRead {
                        ssd: 0,
                        lba: 0,
                        len: 8192,
                    },
                    D2dOp::Process {
                        function: NdpFunction::Md5,
                        aux: vec![],
                    },
                    D2dOp::NicSend {
                        flow: dcs_nic::TcpFlow::example(1, 2, 3, 4),
                        seq: 0,
                    },
                ],
                reply_to: sink,
                tag: "fused",
            },
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.done"), 1);
        assert_eq!(sim.world().stats.counter_value("sink.digest_ok"), 1);
        // The fused device should complete well under 50us for 8 KiB.
        assert!(sim.now().as_nanos() < time::us(50), "{}", sim.now());
    }
}
