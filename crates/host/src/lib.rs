//! # dcs-host — the host software stack and the baseline designs
//!
//! DCS-ctrl's evaluation is entirely *relative*: every figure compares the
//! HDC Engine against software designs running on the host CPU. This crate
//! models that side of the comparison:
//!
//! * [`costs`] — the cost model for kernel routines (syscalls, VFS,
//!   block layer, TCP/IP, page cache, copies), in vanilla-Linux and
//!   optimized (§III-E-style) variants.
//! * [`cpu`] — the CPU pool: every software routine runs as a timed job on
//!   a core, producing the busy-time breakdowns behind Figures 3b, 8, 12
//!   and 13.
//! * [`job`] — the design-independent description of a multi-device task
//!   ([`D2dJob`]): read from SSD, process, send to NIC, … Every design
//!   (the baselines here, the HDC Engine in `dcs-core`) executes the same
//!   job type, so experiments compare like for like.
//! * [`nvme_driver`] / [`nic_driver`] / [`gpu_driver`] — host kernel
//!   drivers: they speak the same rings/doorbells/MSIs as the HDC Engine's
//!   hardware controllers, but charge CPU time for every step.
//! * [`executor`] — the baseline orchestrators: `Linux` (vanilla kernel),
//!   `SwOpt` (optimized kernel, host-staged data), `SwP2p` (optimized
//!   kernel + peer-to-peer data path where device capabilities allow).
//! * [`integration`] — an idealized consolidated device (the
//!   *device integration* reference point of Figure 3).
//! * [`node`] — wiring helpers that assemble a full host node.

pub mod costs;
pub mod cpu;
pub mod executor;
pub mod gpu_driver;
pub mod integration;
pub mod job;
pub mod nic_driver;
pub mod node;
pub mod nvme_driver;

pub use costs::{KernelCosts, KernelMode};
pub use cpu::{CpuJob, CpuJobDone, CpuPool, CpuStats};
pub use executor::{ExecutorWiring, SwDesign, SwExecutor};
pub use gpu_driver::{GpuOpDone, GpuOpRequest, HostGpuDriver};
pub use integration::{IntegratedExecutor, IntegrationConfig};
pub use job::{D2dDone, D2dJob, D2dOp, Design};
pub use nic_driver::{
    HostNicDriver, NicDriverConfig, RecvDone, RecvExpect, SendDone, SendRequest, StartNicDriver,
};
pub use node::{build_node, build_pair, HostNode, HostNodeBuilder};
pub use nvme_driver::{BlockDone, BlockOp, BlockRequest, HostNvmeDriver};
