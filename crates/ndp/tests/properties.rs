//! Property-based tests of the data-processing algorithms.

use dcs_ndp::aes::Aes256;
use dcs_ndp::crc32::{crc32, crc32_update, Crc32};
use dcs_ndp::deflate::{deflate_compress, deflate_decompress, gzip_compress, gzip_decompress};
use dcs_ndp::md5::{md5, Md5};
use dcs_ndp::sha1::{sha1, Sha1};
use dcs_ndp::sha256::{sha256, Sha256};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DEFLATE decompression inverts compression on arbitrary inputs.
    #[test]
    fn deflate_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let compressed = deflate_compress(&data);
        prop_assert_eq!(deflate_decompress(&compressed).unwrap(), data);
    }

    /// GZIP framing (with CRC + length trailer) round-trips too.
    #[test]
    fn gzip_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..10_000)) {
        prop_assert_eq!(gzip_decompress(&gzip_compress(&data)).unwrap(), data);
    }

    /// Truncating a gzip stream never yields the original data.
    #[test]
    fn gzip_truncation_detected(
        data in proptest::collection::vec(any::<u8>(), 1..4_000),
        cut_fraction in 0.0f64..0.999,
    ) {
        let gz = gzip_compress(&data);
        let cut = ((gz.len() as f64) * cut_fraction) as usize;
        let r = gzip_decompress(&gz[..cut]);
        prop_assert!(r.is_err(), "truncated stream must not validate");
    }

    /// AES-256-CTR is its own inverse for any key, nonce, and length.
    #[test]
    fn aes_ctr_inverse(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform16(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..5_000),
    ) {
        let aes = Aes256::new(&key);
        let ct = aes.ctr_crypt(&nonce, &data);
        prop_assert_eq!(aes.ctr_crypt(&nonce, &ct), data);
    }

    /// Block decrypt inverts block encrypt for any key and block.
    #[test]
    fn aes_block_inverse(
        key in proptest::array::uniform32(any::<u8>()),
        block in proptest::array::uniform16(any::<u8>()),
    ) {
        let aes = Aes256::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// Incremental hashing over arbitrary chunkings equals one-shot.
    #[test]
    fn hashes_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..8_000),
        chunk in 1usize..512,
    ) {
        let mut m = Md5::new();
        let mut s1 = Sha1::new();
        let mut s2 = Sha256::new();
        let mut c = Crc32::new();
        for part in data.chunks(chunk) {
            m.update(part);
            s1.update(part);
            s2.update(part);
            c.update(part);
        }
        prop_assert_eq!(m.finalize(), md5(&data));
        prop_assert_eq!(s1.finalize(), sha1(&data));
        prop_assert_eq!(s2.finalize(), sha256(&data));
        prop_assert_eq!(c.finalize(), crc32(&data));
    }

    /// CRC chaining across any split equals the one-shot CRC.
    #[test]
    fn crc_chaining(data in proptest::collection::vec(any::<u8>(), 0..4_000), split in 0usize..4_000) {
        let split = split.min(data.len());
        let first = crc32(&data[..split]);
        prop_assert_eq!(crc32_update(first, &data[split..]), crc32(&data));
    }

    /// Distinct single-byte flips change the MD5 (no trivial collisions on
    /// the tested sizes).
    #[test]
    fn md5_sensitivity(
        mut data in proptest::collection::vec(any::<u8>(), 1..2_000),
        idx in 0usize..2_000,
        flip in 1u8..=255,
    ) {
        let idx = idx % data.len();
        let original = md5(&data);
        data[idx] ^= flip;
        prop_assert_ne!(md5(&data), original);
    }
}
