//! Randomized property tests of the data-processing algorithms, driven
//! by the deterministic in-repo [`Rng`] (the container builds offline, so
//! no external property-testing framework is available).

use dcs_ndp::aes::Aes256;
use dcs_ndp::crc32::{crc32, crc32_update, Crc32};
use dcs_ndp::deflate::{deflate_compress, deflate_decompress, gzip_compress, gzip_decompress};
use dcs_ndp::md5::{md5, Md5};
use dcs_ndp::sha1::{sha1, Sha1};
use dcs_ndp::sha256::{sha256, Sha256};
use dcs_sim::Rng;

fn random_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len as u64 + 1) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// DEFLATE decompression inverts compression on arbitrary inputs.
#[test]
fn deflate_roundtrip() {
    let mut rng = Rng::new(0xDEF1A7E);
    for _ in 0..32 {
        let data = random_bytes(&mut rng, 20_000);
        let compressed = deflate_compress(&data);
        assert_eq!(deflate_decompress(&compressed).unwrap(), data);
    }
}

/// GZIP framing (with CRC + length trailer) round-trips too.
#[test]
fn gzip_roundtrip() {
    let mut rng = Rng::new(0x621F);
    for _ in 0..32 {
        let data = random_bytes(&mut rng, 10_000);
        assert_eq!(gzip_decompress(&gzip_compress(&data)).unwrap(), data);
    }
}

/// Truncating a gzip stream never yields the original data.
#[test]
fn gzip_truncation_detected() {
    let mut rng = Rng::new(0x621F_7214);
    for _ in 0..64 {
        let mut data = random_bytes(&mut rng, 4_000);
        if data.is_empty() {
            data.push(0);
        }
        let gz = gzip_compress(&data);
        let cut = ((gz.len() as f64) * (rng.gen_f64() * 0.999)) as usize;
        assert!(
            gzip_decompress(&gz[..cut]).is_err(),
            "truncated stream must not validate"
        );
    }
}

/// AES-256-CTR is its own inverse for any key, nonce, and length.
#[test]
fn aes_ctr_inverse() {
    let mut rng = Rng::new(0xAE5C72);
    for _ in 0..64 {
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut nonce);
        let data = random_bytes(&mut rng, 5_000);
        let aes = Aes256::new(&key);
        let ct = aes.ctr_crypt(&nonce, &data);
        assert_eq!(aes.ctr_crypt(&nonce, &ct), data);
    }
}

/// Block decrypt inverts block encrypt for any key and block.
#[test]
fn aes_block_inverse() {
    let mut rng = Rng::new(0xAE5B10C);
    for _ in 0..64 {
        let mut key = [0u8; 32];
        let mut block = [0u8; 16];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut block);
        let aes = Aes256::new(&key);
        assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }
}

/// Incremental hashing over arbitrary chunkings equals one-shot.
#[test]
fn hashes_chunking_invariant() {
    let mut rng = Rng::new(0x4A54C4C);
    for _ in 0..32 {
        let data = random_bytes(&mut rng, 8_000);
        let chunk = rng.gen_range(1..512) as usize;
        let mut m = Md5::new();
        let mut s1 = Sha1::new();
        let mut s2 = Sha256::new();
        let mut c = Crc32::new();
        for part in data.chunks(chunk) {
            m.update(part);
            s1.update(part);
            s2.update(part);
            c.update(part);
        }
        assert_eq!(m.finalize(), md5(&data));
        assert_eq!(s1.finalize(), sha1(&data));
        assert_eq!(s2.finalize(), sha256(&data));
        assert_eq!(c.finalize(), crc32(&data));
    }
}

/// CRC chaining across any split equals the one-shot CRC.
#[test]
fn crc_chaining() {
    let mut rng = Rng::new(0xC2CC4A1);
    for _ in 0..64 {
        let data = random_bytes(&mut rng, 4_000);
        let split = (rng.gen_range(0..4_000) as usize).min(data.len());
        let first = crc32(&data[..split]);
        assert_eq!(crc32_update(first, &data[split..]), crc32(&data));
    }
}

/// Distinct single-byte flips change the MD5 (no trivial collisions on
/// the tested sizes).
#[test]
fn md5_sensitivity() {
    let mut rng = Rng::new(0x4D55E25);
    for _ in 0..64 {
        let mut data = random_bytes(&mut rng, 2_000);
        if data.is_empty() {
            data.push(0x5A);
        }
        let idx = rng.gen_range(0..data.len() as u64) as usize;
        let flip = rng.gen_range(1..256) as u8;
        let original = md5(&data);
        data[idx] ^= flip;
        assert_ne!(md5(&data), original);
    }
}
