//! CRC-32 (IEEE 802.3 polynomial, reflected — the variant used by Ethernet,
//! zlib/gzip, and HDFS block checksums).
//!
//! HDFS performs a CRC32 integrity check on every received block during
//! balancing (§V-C2 of the paper); the HDC Engine offloads it to a CRC NDP
//! unit whose FPGA cost Table III puts at a mere 93 LUTs.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lookup table, one entry per byte value, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut crc = n as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        table[n] = crc;
        n += 1;
    }
    table
}

/// Incremental CRC-32 state.
///
/// ```
/// use dcs_ndp::crc32::Crc32;
/// let mut c = Crc32::new();
/// c.update(b"123");
/// c.update(b"456789");
/// assert_eq!(c.finalize(), 0xCBF4_3926);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Completes the checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// Continues a CRC from a previously finalized value (used to chain block
/// checksums across segments, as gzip trailers require).
pub fn crc32_update(prev: u32, data: &[u8]) -> u32 {
    let mut c = Crc32 {
        state: prev ^ 0xFFFF_FFFF,
    };
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn chained_update_matches_oneshot() {
        let data = b"hello crc world";
        let first = crc32(&data[..5]);
        assert_eq!(crc32_update(first, &data[5..]), crc32(data));
    }

    #[test]
    fn incremental_matches_any_split() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
        let reference = crc32(&data);
        for split in [1usize, 255, 256, 4095] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), reference, "split {split}");
        }
    }
}
