//! SHA-1 message digest (FIPS 180-4 / RFC 3174).
//!
//! One of the six IP cores Table III of the paper synthesizes for the HDC
//! Engine's NDP bank.

/// Incremental SHA-1 state.
///
/// ```
/// use dcs_ndp::sha1::sha1;
/// assert_eq!(dcs_ndp::to_hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Digest length in bytes.
    pub const DIGEST_LEN: usize = 20;

    /// A fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything fit in the partial buffer; the remainder
                // handling below must not clobber `buf_len`.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Completes the hash, returning the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, slot) in w.iter_mut().take(16).enumerate() {
            *slot = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999u32),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    /// FIPS 180-4 / RFC 3174 vectors.
    #[test]
    fn standard_vectors() {
        let vectors: [(&[u8], &str); 4] = [
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expected) in vectors {
            assert_eq!(to_hex(&sha1(input)), expected);
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 % 256) as u8).collect();
        let reference = sha1(&data);
        let mut h = Sha1::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), reference);
    }
}
