//! The uniform dispatch surface for NDP units.
//!
//! The HDC Engine's near-device processing bank (§III-D) exposes a small
//! menu of functions — the rows of Table III — selected per D2D command by
//! a function identifier plus auxiliary data (keys, nonces). This module
//! gives every function one calling convention so the engine, the GPU
//! baseline, and the host-CPU baseline all run the *same* computation and
//! end-to-end tests can compare their outputs byte for byte.

use crate::aes::Aes256;
use crate::crc32::crc32;
use crate::deflate::{gzip_compress, gzip_decompress};
use crate::md5::md5;
use crate::sha1::sha1;
use crate::sha256::sha256;

/// The intermediate-processing functions of Table III (plus the inverse
/// transforms needed for receive paths).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NdpFunction {
    /// MD5 digest (Swift/S3/Azure object integrity).
    Md5,
    /// SHA-1 digest.
    Sha1,
    /// SHA-256 digest.
    Sha256,
    /// CRC-32 checksum (HDFS block integrity).
    Crc32,
    /// AES-256-CTR encryption (aux = 32-byte key ‖ 16-byte nonce).
    Aes256Encrypt,
    /// AES-256-CTR decryption (same aux layout; CTR is self-inverse).
    Aes256Decrypt,
    /// GZIP compression.
    GzipCompress,
    /// GZIP decompression.
    GzipDecompress,
}

impl NdpFunction {
    /// All functions, in Table III row order (the inverse transforms share
    /// their row's hardware).
    pub const ALL: [NdpFunction; 8] = [
        NdpFunction::Md5,
        NdpFunction::Sha1,
        NdpFunction::Sha256,
        NdpFunction::Crc32,
        NdpFunction::Aes256Encrypt,
        NdpFunction::Aes256Decrypt,
        NdpFunction::GzipCompress,
        NdpFunction::GzipDecompress,
    ];

    /// Short name used in reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            NdpFunction::Md5 => "md5",
            NdpFunction::Sha1 => "sha1",
            NdpFunction::Sha256 => "sha256",
            NdpFunction::Crc32 => "crc32",
            NdpFunction::Aes256Encrypt => "aes256-encrypt",
            NdpFunction::Aes256Decrypt => "aes256-decrypt",
            NdpFunction::GzipCompress => "gzip-compress",
            NdpFunction::GzipDecompress => "gzip-decompress",
        }
    }

    /// Digest length in bytes for digest functions, `None` for transforms.
    pub fn digest_len(self) -> Option<usize> {
        match self {
            NdpFunction::Md5 => Some(16),
            NdpFunction::Sha1 => Some(20),
            NdpFunction::Sha256 => Some(32),
            NdpFunction::Crc32 => Some(4),
            _ => None,
        }
    }

    /// Whether the function leaves the data stream unchanged and only
    /// produces a digest (integrity checks) rather than transforming it.
    pub fn is_digest(self) -> bool {
        matches!(
            self,
            NdpFunction::Md5 | NdpFunction::Sha1 | NdpFunction::Sha256 | NdpFunction::Crc32
        )
    }

    /// Executes the function over `input`.
    ///
    /// `aux` carries function-specific parameters: for the AES variants it
    /// must be the 32-byte key followed by the 16-byte CTR nonce; other
    /// functions ignore it.
    ///
    /// # Errors
    ///
    /// Returns [`NdpError`] if `aux` is malformed or (for
    /// [`NdpFunction::GzipDecompress`]) the input is not a valid gzip
    /// stream.
    pub fn apply(self, input: &[u8], aux: &[u8]) -> Result<NdpOutput, NdpError> {
        match self {
            NdpFunction::Md5 => Ok(NdpOutput::digest(md5(input).to_vec())),
            NdpFunction::Sha1 => Ok(NdpOutput::digest(sha1(input).to_vec())),
            NdpFunction::Sha256 => Ok(NdpOutput::digest(sha256(input).to_vec())),
            NdpFunction::Crc32 => Ok(NdpOutput::digest(crc32(input).to_be_bytes().to_vec())),
            NdpFunction::Aes256Encrypt | NdpFunction::Aes256Decrypt => {
                if aux.len() != 48 {
                    return Err(NdpError::BadAux {
                        function: self,
                        expected: "32-byte key followed by 16-byte nonce",
                    });
                }
                let key: [u8; 32] = aux[..32].try_into().expect("length checked");
                let nonce: [u8; 16] = aux[32..].try_into().expect("length checked");
                let aes = Aes256::new(&key);
                Ok(NdpOutput::transformed(aes.ctr_crypt(&nonce, input)))
            }
            NdpFunction::GzipCompress => Ok(NdpOutput::transformed(gzip_compress(input))),
            NdpFunction::GzipDecompress => gzip_decompress(input)
                .map(NdpOutput::transformed)
                .map_err(|source| NdpError::Inflate { source }),
        }
    }
}

impl std::fmt::Display for NdpFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an NDP function produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NdpOutput {
    /// For digest functions: the digest bytes; the data stream itself is
    /// unchanged. For transforms: `None`.
    pub digest: Option<Vec<u8>>,
    /// For transform functions: the transformed data that continues down
    /// the D2D pipeline. For digests: `None` (caller keeps the input).
    pub data: Option<Vec<u8>>,
}

impl NdpOutput {
    fn digest(d: Vec<u8>) -> Self {
        NdpOutput {
            digest: Some(d),
            data: None,
        }
    }

    fn transformed(d: Vec<u8>) -> Self {
        NdpOutput {
            digest: None,
            data: Some(d),
        }
    }

    /// The bytes that flow onward: the transformed data, or `input` itself
    /// for digest functions.
    pub fn forward_data<'a>(&'a self, input: &'a [u8]) -> &'a [u8] {
        self.data.as_deref().unwrap_or(input)
    }
}

/// Errors from [`NdpFunction::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdpError {
    /// The auxiliary parameter block had the wrong shape.
    BadAux {
        /// Function that rejected the aux data.
        function: NdpFunction,
        /// What the function expected.
        expected: &'static str,
    },
    /// Decompression failed.
    Inflate {
        /// The underlying inflate failure.
        source: crate::deflate::InflateError,
    },
}

impl std::fmt::Display for NdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NdpError::BadAux { function, expected } => {
                write!(f, "{function} requires aux data: {expected}")
            }
            NdpError::Inflate { source } => write!(f, "decompression failed: {source}"),
        }
    }
}

impl std::error::Error for NdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NdpError::Inflate { source } => Some(source),
            NdpError::BadAux { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    #[test]
    fn digest_functions_pass_data_through() {
        let input = b"integrity-checked payload";
        for f in [
            NdpFunction::Md5,
            NdpFunction::Sha1,
            NdpFunction::Sha256,
            NdpFunction::Crc32,
        ] {
            let out = f.apply(input, &[]).unwrap();
            assert!(f.is_digest());
            assert!(out.digest.is_some(), "{f}");
            assert_eq!(out.forward_data(input), input, "{f}");
        }
    }

    #[test]
    fn md5_digest_matches_direct_call() {
        let out = NdpFunction::Md5.apply(b"abc", &[]).unwrap();
        assert_eq!(
            to_hex(out.digest.as_ref().unwrap()),
            "900150983cd24fb0d6963f7d28e17f72"
        );
    }

    #[test]
    fn aes_roundtrip_through_dispatch() {
        let mut aux = vec![7u8; 32];
        aux.extend([9u8; 16]);
        let pt = b"secret object contents".to_vec();
        let enc = NdpFunction::Aes256Encrypt.apply(&pt, &aux).unwrap();
        let ct = enc.data.clone().unwrap();
        assert_ne!(ct, pt);
        let dec = NdpFunction::Aes256Decrypt.apply(&ct, &aux).unwrap();
        assert_eq!(dec.data.unwrap(), pt);
    }

    #[test]
    fn aes_rejects_malformed_aux() {
        let err = NdpFunction::Aes256Encrypt
            .apply(b"x", &[0u8; 10])
            .unwrap_err();
        assert!(matches!(err, NdpError::BadAux { .. }));
        assert!(err.to_string().contains("32-byte key"));
    }

    #[test]
    fn gzip_roundtrip_through_dispatch() {
        let data = b"compress me please, there is repetition repetition".repeat(8);
        let gz = NdpFunction::GzipCompress
            .apply(&data, &[])
            .unwrap()
            .data
            .unwrap();
        assert!(gz.len() < data.len());
        let back = NdpFunction::GzipDecompress
            .apply(&gz, &[])
            .unwrap()
            .data
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn gzip_decompress_surfaces_inflate_errors() {
        let err = NdpFunction::GzipDecompress
            .apply(b"not gzip at all!!!", &[])
            .unwrap_err();
        assert!(matches!(err, NdpError::Inflate { .. }));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = NdpFunction::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NdpFunction::ALL.len());
    }
}
