//! DEFLATE (RFC 1951) compression/decompression and GZIP (RFC 1952)
//! framing, from scratch.
//!
//! HDFS and Amazon S3 GZIP objects between storage and network operations
//! (Table II); the paper's NDP bank includes a GZIP IP core (Table III).
//! The compressor here uses LZ77 with hash-chain matching and lazy
//! evaluation, emitting fixed-Huffman blocks with a stored-block fallback
//! for incompressible data. The decompressor handles all three DEFLATE
//! block types (stored, fixed Huffman, dynamic Huffman), so output from
//! zlib/gzip implementations inflates correctly too.

use crate::crc32::Crc32;

/// Errors from inflating malformed or truncated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InflateError {
    /// Input ended in the middle of a block.
    UnexpectedEof,
    /// Reserved block type 0b11 encountered.
    InvalidBlockType,
    /// A Huffman code not present in the code table was read.
    InvalidCode,
    /// A match distance pointed before the start of the output.
    DistanceTooFar,
    /// A stored block's LEN and NLEN fields disagree.
    StoredLengthMismatch,
    /// A dynamic-Huffman code-length table was inconsistent.
    InvalidCodeLengths,
    /// The gzip magic bytes were wrong.
    BadGzipMagic,
    /// The gzip header used an unsupported compression method or flag.
    UnsupportedGzip,
    /// The gzip trailer CRC did not match the inflated data.
    BadChecksum,
    /// The gzip trailer length did not match the inflated data.
    BadLength,
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            InflateError::UnexpectedEof => "unexpected end of compressed input",
            InflateError::InvalidBlockType => "reserved deflate block type",
            InflateError::InvalidCode => "invalid huffman code",
            InflateError::DistanceTooFar => "match distance exceeds produced output",
            InflateError::StoredLengthMismatch => "stored block length check failed",
            InflateError::InvalidCodeLengths => "inconsistent dynamic huffman code lengths",
            InflateError::BadGzipMagic => "not a gzip stream",
            InflateError::UnsupportedGzip => "unsupported gzip method or flags",
            InflateError::BadChecksum => "gzip crc mismatch",
            InflateError::BadLength => "gzip length mismatch",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InflateError {}

// ---------------------------------------------------------------------------
// Bit I/O (DEFLATE packs bits LSB-first; Huffman codes go MSB-first).
// ---------------------------------------------------------------------------

struct BitWriter {
    out: Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            bit_buf: 0,
            bit_count: 0,
        }
    }

    /// Writes `n` bits of `value`, least-significant bit first.
    fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        self.bit_buf |= (value as u64) << self.bit_count;
        self.bit_count += n;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes a Huffman code: its bits go most-significant first.
    fn write_huffman(&mut self, code: u32, len: u32) {
        let mut reversed = 0u32;
        for i in 0..len {
            reversed |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.write_bits(reversed, len);
    }

    /// Pads to a byte boundary with zero bits.
    fn align_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    fn refill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buf |= (self.data[self.pos] as u64) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Reads `n` bits LSB-first.
    fn read_bits(&mut self, n: u32) -> Result<u32, InflateError> {
        debug_assert!(n <= 32);
        self.refill();
        if self.bit_count < n {
            return Err(InflateError::UnexpectedEof);
        }
        let v = (self.bit_buf & ((1u64 << n) - 1)) as u32;
        let v = if n == 0 { 0 } else { v };
        self.bit_buf >>= n;
        self.bit_count -= n;
        Ok(v)
    }

    /// Reads one bit.
    fn read_bit(&mut self) -> Result<u32, InflateError> {
        self.read_bits(1)
    }

    /// Discards bits to the next byte boundary and returns the byte offset.
    fn align_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Reads `n` whole bytes (must be byte-aligned).
    fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, InflateError> {
        debug_assert!(self.bit_count.is_multiple_of(8));
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if self.bit_count >= 8 {
                out.push((self.bit_buf & 0xFF) as u8);
                self.bit_buf >>= 8;
                self.bit_count -= 8;
            } else if self.pos < self.data.len() {
                out.push(self.data[self.pos]);
                self.pos += 1;
            } else {
                return Err(InflateError::UnexpectedEof);
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Length / distance code tables (RFC 1951 §3.2.5).
// ---------------------------------------------------------------------------

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Maps a match length (3..=258) to `(code_index, extra_bits, extra_value)`.
fn length_to_code(len: u16) -> (usize, u32, u32) {
    debug_assert!((3..=258).contains(&len));
    let idx = match LENGTH_BASE.binary_search(&len) {
        Ok(i) => {
            // Length 258 must use code 285 (the last), not a shorter code
            // that happens to share the base.
            if len == 258 {
                28
            } else {
                i
            }
        }
        Err(i) => i - 1,
    };
    let extra = LENGTH_EXTRA[idx];
    (idx, extra, (len - LENGTH_BASE[idx]) as u32)
}

/// Maps a match distance (1..=32768) to `(code_index, extra_bits, extra)`.
fn dist_to_code(dist: u16) -> (usize, u32, u32) {
    debug_assert!(dist >= 1);
    let idx = match DIST_BASE.binary_search(&dist) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    (idx, DIST_EXTRA[idx], (dist - DIST_BASE[idx]) as u32)
}

/// Fixed Huffman literal/length code for a symbol (RFC 1951 §3.2.6).
fn fixed_lit_code(sym: u32) -> (u32, u32) {
    match sym {
        0..=143 => (0b0011_0000 + sym, 8),
        144..=255 => (0b1_1001_0000 + (sym - 144), 9),
        256..=279 => (sym - 256, 7),
        280..=287 => (0b1100_0000 + (sym - 280), 8),
        _ => unreachable!("literal/length symbol out of range"),
    }
}

// ---------------------------------------------------------------------------
// Canonical Huffman decoding.
// ---------------------------------------------------------------------------

/// A canonical Huffman decoder built from per-symbol code lengths.
struct HuffmanDecoder {
    /// `counts[l]` = number of codes of length `l`.
    counts: [u16; 16],
    /// Symbols ordered by (length, symbol) — canonical order.
    symbols: Vec<u16>,
}

impl HuffmanDecoder {
    fn from_lengths(lengths: &[u8]) -> Result<Self, InflateError> {
        let mut counts = [0u16; 16];
        for &l in lengths {
            if l as usize >= 16 {
                return Err(InflateError::InvalidCodeLengths);
            }
            counts[l as usize] += 1;
        }
        counts[0] = 0;
        // Over-subscribed tables are invalid; incomplete ones are tolerated
        // (some encoders emit a single-code distance table).
        let mut left = 1i32;
        for &count in &counts[1..16] {
            left <<= 1;
            left -= count as i32;
            if left < 0 {
                return Err(InflateError::InvalidCodeLengths);
            }
        }
        let mut offsets = [0u16; 16];
        for l in 1..15 {
            offsets[l + 1] = offsets[l] + counts[l];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l != 0).count()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l != 0 {
                symbols[offsets[l as usize] as usize] = sym as u16;
                offsets[l as usize] += 1;
            }
        }
        Ok(HuffmanDecoder { counts, symbols })
    }

    /// Decodes one symbol, reading bits MSB-of-code-first.
    fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, InflateError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= reader.read_bit()? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(InflateError::InvalidCode)
    }
}

// ---------------------------------------------------------------------------
// Compression: LZ77 with hash chains + fixed-Huffman emission.
// ---------------------------------------------------------------------------

const WINDOW_SIZE: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
const MAX_CHAIN: usize = 128;

fn hash3(data: &[u8], pos: usize) -> usize {
    let v = (data[pos] as u32) | ((data[pos + 1] as u32) << 8) | ((data[pos + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// One LZ77 token.
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

fn lz77_tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    if data.len() < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW_SIZE];

    let find_match = |head: &[usize], prev: &[usize], pos: usize| -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0;
        let mut cand = head[hash3(data, pos)];
        let max_len = (data.len() - pos).min(MAX_MATCH);
        let mut chain = 0;
        while cand != usize::MAX && chain < MAX_CHAIN {
            // Slots in `prev` are recycled modulo the window, so a stale
            // entry can point forward; that also terminates the chain.
            if cand >= pos || pos - cand > WINDOW_SIZE {
                break;
            }
            let mut l = 0;
            while l < max_len && data[cand + l] == data[pos + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = pos - cand;
                if l == max_len {
                    break;
                }
            }
            cand = prev[cand % WINDOW_SIZE];
            chain += 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    };

    let insert = |head: &mut [usize], prev: &mut [usize], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            prev[pos % WINDOW_SIZE] = head[h];
            head[h] = pos;
        }
    };

    let mut pos = 0;
    let mut pending: Option<(usize, usize)> = None; // lazy-match candidate at pos-1
    while pos < data.len() {
        let here = find_match(&head, &prev, pos);
        match (pending.take(), here) {
            (Some((plen, _)), Some((len, dist))) if len > plen => {
                // The match starting now is better: emit the previous byte
                // as a literal and keep evaluating from here.
                tokens.push(Token::Literal(data[pos - 1]));
                insert(&mut head, &mut prev, pos);
                pending = Some((len, dist));
                pos += 1;
                // Next iteration compares the deferred match (now at pos-1)
                // against whatever starts at the new pos.
                continue;
            }
            (Some((plen, pdist)), _) => {
                // Previous position's match wins; emit it (it covers pos-1..).
                tokens.push(Token::Match {
                    len: plen as u16,
                    dist: pdist as u16,
                });
                // Insert hash entries for the matched span (skipping pos-1,
                // already inserted).
                let end = (pos - 1) + plen;
                while pos < end {
                    insert(&mut head, &mut prev, pos);
                    pos += 1;
                }
                continue;
            }
            (None, Some((len, dist))) => {
                // Defer: maybe pos+1 has a longer match (lazy evaluation).
                insert(&mut head, &mut prev, pos);
                pending = Some((len, dist));
                pos += 1;
                continue;
            }
            (None, None) => {
                tokens.push(Token::Literal(data[pos]));
                insert(&mut head, &mut prev, pos);
                pos += 1;
            }
        }
    }
    if let Some((plen, pdist)) = pending {
        tokens.push(Token::Match {
            len: plen as u16,
            dist: pdist as u16,
        });
    }
    tokens
}

/// Compresses `data` into a raw DEFLATE stream.
///
/// Emits a single fixed-Huffman block, or a stored block when that would be
/// smaller (incompressible input).
pub fn deflate_compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz77_tokenize(data);
    let mut w = BitWriter::new();
    w.write_bits(1, 1); // BFINAL
    w.write_bits(1, 2); // BTYPE = fixed Huffman
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                let (code, len) = fixed_lit_code(b as u32);
                w.write_huffman(code, len);
            }
            Token::Match { len, dist } => {
                let (lidx, lextra_bits, lextra) = length_to_code(len);
                let (code, clen) = fixed_lit_code(257 + lidx as u32);
                w.write_huffman(code, clen);
                if lextra_bits > 0 {
                    w.write_bits(lextra, lextra_bits);
                }
                let (didx, dextra_bits, dextra) = dist_to_code(dist);
                w.write_huffman(didx as u32, 5);
                if dextra_bits > 0 {
                    w.write_bits(dextra, dextra_bits);
                }
            }
        }
    }
    let (eob_code, eob_len) = fixed_lit_code(256);
    w.write_huffman(eob_code, eob_len);
    let compressed = w.finish();

    // Stored-block fallback: 5 bytes of framing per 65535-byte chunk.
    let stored_size = 1 + data.len() + 5 * data.len().div_ceil(65535).max(1);
    if compressed.len() > stored_size {
        deflate_store(data)
    } else {
        compressed
    }
}

/// Emits `data` as uncompressed stored blocks (the escape hatch for
/// incompressible input).
pub fn deflate_store(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[][..]]
    } else {
        data.chunks(65535).collect()
    };
    for (i, chunk) in chunks.iter().enumerate() {
        let last = i == chunks.len() - 1;
        w.write_bits(last as u32, 1);
        w.write_bits(0, 2); // BTYPE = stored
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bits(len as u32, 16);
        w.write_bits(!len as u32, 16);
        for &b in *chunk {
            w.write_bits(b as u32, 8);
        }
    }
    w.finish()
}

/// Decompresses a raw DEFLATE stream.
///
/// # Errors
///
/// Returns an [`InflateError`] for truncated or malformed input.
pub fn deflate_decompress(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bit()?;
        let btype = r.read_bits(2)?;
        match btype {
            0 => inflate_stored(&mut r, &mut out)?,
            1 => {
                let (lit, dist) = fixed_decoders();
                inflate_block(&mut r, &mut out, &lit, &dist)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &mut out, &lit, &dist)?;
            }
            _ => return Err(InflateError::InvalidBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), InflateError> {
    r.align_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        return Err(InflateError::StoredLengthMismatch);
    }
    out.extend(r.read_bytes(len as usize)?);
    Ok(())
}

fn fixed_decoders() -> (HuffmanDecoder, HuffmanDecoder) {
    let mut lit_lengths = [0u8; 288];
    for (sym, l) in lit_lengths.iter_mut().enumerate() {
        *l = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist_lengths = [5u8; 30];
    (
        HuffmanDecoder::from_lengths(&lit_lengths).expect("fixed table is valid"),
        HuffmanDecoder::from_lengths(&dist_lengths).expect("fixed table is valid"),
    )
}

/// Order in which code-length-code lengths are transmitted (RFC 1951).
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn read_dynamic_tables(
    r: &mut BitReader<'_>,
) -> Result<(HuffmanDecoder, HuffmanDecoder), InflateError> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    let mut clc_lengths = [0u8; 19];
    for &idx in CLC_ORDER.iter().take(hclen) {
        clc_lengths[idx] = r.read_bits(3)? as u8;
    }
    let clc = HuffmanDecoder::from_lengths(&clc_lengths)?;
    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let sym = clc.decode(r)?;
        match sym {
            0..=15 => {
                lengths[i] = sym as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(InflateError::InvalidCodeLengths);
                }
                let repeat = 3 + r.read_bits(2)? as usize;
                let prev = lengths[i - 1];
                for _ in 0..repeat {
                    if i >= lengths.len() {
                        return Err(InflateError::InvalidCodeLengths);
                    }
                    lengths[i] = prev;
                    i += 1;
                }
            }
            17 => {
                let repeat = 3 + r.read_bits(3)? as usize;
                i += repeat;
            }
            18 => {
                let repeat = 11 + r.read_bits(7)? as usize;
                i += repeat;
            }
            _ => return Err(InflateError::InvalidCode),
        }
    }
    if i > lengths.len() {
        return Err(InflateError::InvalidCodeLengths);
    }
    let lit = HuffmanDecoder::from_lengths(&lengths[..hlit])?;
    let dist = HuffmanDecoder::from_lengths(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &HuffmanDecoder,
    dist: &HuffmanDecoder,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let len = LENGTH_BASE[idx] as usize + r.read_bits(LENGTH_EXTRA[idx])? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err(InflateError::InvalidCode);
                }
                let distance = DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym])? as usize;
                if distance > out.len() {
                    return Err(InflateError::DistanceTooFar);
                }
                let start = out.len() - distance;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::InvalidCode),
        }
    }
}

// ---------------------------------------------------------------------------
// GZIP framing (RFC 1952).
// ---------------------------------------------------------------------------

/// Wraps `data` in a gzip member: 10-byte header, DEFLATE body, CRC32 +
/// length trailer.
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![
        0x1f, 0x8b, // magic
        0x08, // CM = deflate
        0x00, // FLG
        0, 0, 0, 0,    // MTIME
        0x00, // XFL
        0xff, // OS = unknown
    ];
    out.extend(deflate_compress(data));
    let mut crc = Crc32::new();
    crc.update(data);
    out.extend(crc.finalize().to_le_bytes());
    out.extend((data.len() as u32).to_le_bytes());
    out
}

/// Unwraps and inflates a gzip member, verifying the trailer.
///
/// # Errors
///
/// Returns an [`InflateError`] on framing, CRC, or inflate failures.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    if data.len() < 18 {
        return Err(InflateError::UnexpectedEof);
    }
    if data[0] != 0x1f || data[1] != 0x8b {
        return Err(InflateError::BadGzipMagic);
    }
    if data[2] != 0x08 {
        return Err(InflateError::UnsupportedGzip);
    }
    let flg = data[3];
    if flg & 0b1110_0000 != 0 {
        return Err(InflateError::UnsupportedGzip);
    }
    let mut pos = 10;
    if flg & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > data.len() {
            return Err(InflateError::UnexpectedEof);
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    if flg & 0x08 != 0 {
        // FNAME: zero-terminated
        pos += data[pos..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(InflateError::UnexpectedEof)?
            + 1;
    }
    if flg & 0x10 != 0 {
        // FCOMMENT
        pos += data[pos..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(InflateError::UnexpectedEof)?
            + 1;
    }
    if flg & 0x02 != 0 {
        // FHCRC
        pos += 2;
    }
    if pos + 8 > data.len() {
        return Err(InflateError::UnexpectedEof);
    }
    let body = &data[pos..data.len() - 8];
    let inflated = deflate_decompress(body)?;
    let trailer = &data[data.len() - 8..];
    let expect_crc = u32::from_le_bytes(trailer[0..4].try_into().expect("4 bytes"));
    let expect_len = u32::from_le_bytes(trailer[4..8].try_into().expect("4 bytes"));
    let mut crc = Crc32::new();
    crc.update(&inflated);
    if crc.finalize() != expect_crc {
        return Err(InflateError::BadChecksum);
    }
    if inflated.len() as u32 != expect_len {
        return Err(InflateError::BadLength);
    }
    Ok(inflated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let compressed = deflate_compress(data);
        let decompressed = deflate_decompress(&compressed).expect("valid stream");
        assert_eq!(
            decompressed,
            data,
            "roundtrip failed for {} bytes",
            data.len()
        );
    }

    #[test]
    fn roundtrip_basic_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello hello hello hello hello");
        roundtrip(&vec![0u8; 100_000]);
        let text = b"It is a truth universally acknowledged, that a single man in \
                     possession of a good fortune, must be in want of a wife. "
            .repeat(50);
        roundtrip(&text);
    }

    #[test]
    fn roundtrip_binary_patterns() {
        let ramp: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        roundtrip(&ramp);
        // Pseudorandom (incompressible) data exercises the stored fallback.
        let mut x = 0x12345678u32;
        let rand: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&rand);
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"abcabcabc".repeat(1000);
        let compressed = deflate_compress(&data);
        assert!(
            compressed.len() < data.len() / 10,
            "{} -> {}",
            data.len(),
            compressed.len()
        );
    }

    #[test]
    fn incompressible_data_uses_stored_fallback() {
        let mut x = 0x9E3779B9u32;
        let rand: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let compressed = deflate_compress(&rand);
        // Stored framing: 5 bytes per 64k chunk + 1.
        assert!(compressed.len() <= rand.len() + 16);
    }

    #[test]
    fn stored_blocks_roundtrip() {
        let data = b"stored block payload".repeat(10_000); // > 64 KiB
        let stored = deflate_store(&data);
        assert_eq!(deflate_decompress(&stored).unwrap(), data);
    }

    #[test]
    fn inflate_rejects_truncation() {
        let data = b"some reasonably long input with repeats repeats repeats".repeat(10);
        let compressed = deflate_compress(&data);
        for cut in [0, 1, compressed.len() / 2, compressed.len() - 1] {
            let r = deflate_decompress(&compressed[..cut]);
            assert!(
                r.is_err() || r.unwrap() != data,
                "cut {cut} must not roundtrip"
            );
        }
    }

    #[test]
    fn inflate_rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=3.
        let bad = [0b0000_0111u8];
        assert_eq!(
            deflate_decompress(&bad),
            Err(InflateError::InvalidBlockType)
        );
    }

    #[test]
    fn inflate_rejects_bad_stored_length() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_byte();
        w.write_bits(5, 16);
        w.write_bits(1234, 16); // wrong NLEN
        let bad = w.finish();
        assert_eq!(
            deflate_decompress(&bad),
            Err(InflateError::StoredLengthMismatch)
        );
    }

    /// A raw deflate stream with dynamic Huffman tables produced by zlib
    /// (level 9, wbits −15) — exercises the dynamic table reader against a
    /// third-party encoder. Fixture generated in `tests/data/`.
    #[test]
    fn inflate_dynamic_huffman_stream_from_zlib() {
        let stream = include_bytes!("../tests/data/dynamic.deflate");
        let expected = include_bytes!("../tests/data/dynamic.raw");
        assert_eq!((stream[0] >> 1) & 3, 2, "fixture must be a dynamic block");
        let out = deflate_decompress(stream).expect("zlib-produced stream");
        assert_eq!(out, expected);
    }

    /// A gzip member produced by CPython's gzip module round-trips through
    /// our decompressor, trailer checks included.
    #[test]
    fn gunzip_zlib_produced_member() {
        let gz = include_bytes!("../tests/data/lorem.gz");
        let expected = include_bytes!("../tests/data/dynamic.raw");
        assert_eq!(gzip_decompress(gz).unwrap(), expected);
    }

    #[test]
    fn gzip_roundtrip_and_trailer_checks() {
        let data = b"gzip framing test data, with some repetition repetition".repeat(20);
        let gz = gzip_compress(&data);
        assert_eq!(&gz[..2], &[0x1f, 0x8b]);
        assert_eq!(gzip_decompress(&gz).unwrap(), data);

        // Corrupt the CRC.
        let mut bad = gz.clone();
        let n = bad.len();
        bad[n - 5] ^= 0xFF;
        assert_eq!(gzip_decompress(&bad), Err(InflateError::BadChecksum));

        // Corrupt the magic.
        let mut bad = gz.clone();
        bad[0] = 0;
        assert_eq!(gzip_decompress(&bad), Err(InflateError::BadGzipMagic));
    }

    #[test]
    fn gzip_rejects_short_input() {
        assert_eq!(
            gzip_decompress(&[0x1f, 0x8b]),
            Err(InflateError::UnexpectedEof)
        );
    }

    #[test]
    fn length_code_boundaries() {
        assert_eq!(length_to_code(3), (0, 0, 0));
        assert_eq!(length_to_code(10), (7, 0, 0));
        assert_eq!(length_to_code(11), (8, 1, 0));
        assert_eq!(length_to_code(12), (8, 1, 1));
        assert_eq!(length_to_code(258), (28, 0, 0));
        // 257 must use code 284 with extra 26, not code 285.
        assert_eq!(length_to_code(257), (27, 5, 30));
    }

    #[test]
    fn dist_code_boundaries() {
        assert_eq!(dist_to_code(1), (0, 0, 0));
        assert_eq!(dist_to_code(4), (3, 0, 0));
        assert_eq!(dist_to_code(5), (4, 1, 0));
        assert_eq!(dist_to_code(32768), (29, 13, 8191));
    }

    #[test]
    fn fixed_code_table_matches_rfc() {
        assert_eq!(fixed_lit_code(0), (0x30, 8));
        assert_eq!(fixed_lit_code(143), (0xBF, 8));
        assert_eq!(fixed_lit_code(144), (0x190, 9));
        assert_eq!(fixed_lit_code(255), (0x1FF, 9));
        assert_eq!(fixed_lit_code(256), (0, 7));
        assert_eq!(fixed_lit_code(279), (0x17, 7));
        assert_eq!(fixed_lit_code(280), (0xC0, 8));
        assert_eq!(fixed_lit_code(287), (0xC7, 8));
    }

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xABCD, 16);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.read_bit().unwrap(), 1);
    }
}
