//! AES-256 (FIPS 197) block cipher with ECB and CTR modes.
//!
//! Scale-out storage services encrypt objects at rest and in flight
//! (AES-256 rows of Table II); the paper's NDP bank includes a tiny-AES IP
//! core that sustains 40.9 Gbps (Table III). This module supplies the
//! functional equivalent: key schedule, block encrypt/decrypt, and a CTR
//! mode that the NDP units use for length-preserving payload encryption.
//!
//! The S-box and its inverse are derived at compile time from the GF(2^8)
//! definition rather than pasted as opaque tables.

/// GF(2^8) multiplication modulo the AES polynomial x^8+x^4+x^3+x+1.
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) (0 maps to 0), via a^254.
const fn ginv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1; square-and-multiply with exponent 254 = 0b11111110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gmul(result, base);
        }
        base = gmul(base, base);
        exp >>= 1;
    }
    result
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let inv = ginv(i as u8);
        // Affine transform: b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63.
        let mut x = inv;
        let mut y = inv;
        let mut r = 0;
        while r < 4 {
            y = y.rotate_left(1);
            x ^= y;
            r += 1;
        }
        sbox[i] = x ^ 0x63;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const SBOX: [u8; 256] = build_sbox();
const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

/// Number of 32-bit words in an AES-256 key.
const NK: usize = 8;
/// Number of rounds for AES-256.
const NR: usize = 14;

/// An expanded AES-256 key, ready to encrypt or decrypt 16-byte blocks.
///
/// ```
/// use dcs_ndp::aes::Aes256;
/// let key = [0u8; 32];
/// let aes = Aes256::new(&key);
/// let block = [0u8; 16];
/// let ct = aes.encrypt_block(&block);
/// assert_eq!(aes.decrypt_block(&ct), block);
/// ```
#[derive(Clone)]
pub struct Aes256 {
    round_keys: [[u8; 16]; NR + 1],
}

impl std::fmt::Debug for Aes256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug.
        f.write_str("Aes256 { round_keys: [redacted] }")
    }
}

impl Aes256 {
    /// Block size in bytes.
    pub const BLOCK: usize = 16;
    /// Key size in bytes.
    pub const KEY_LEN: usize = 32;

    /// Expands a 32-byte key.
    pub fn new(key: &[u8; 32]) -> Self {
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for (i, word) in w.iter_mut().take(NK).enumerate() {
            word.copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon, 2);
            } else if i % NK == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes256 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    /// State layout: byte `state[r + 4c]` is row r, column c (FIPS 197).
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..NR {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[NR]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            Self::inv_shift_rows(&mut state);
            Self::inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// Encrypts whole blocks in ECB mode (test/verification use only — ECB
    /// leaks patterns and must not protect real data).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn ecb_encrypt(&self, data: &[u8]) -> Vec<u8> {
        assert!(
            data.len().is_multiple_of(Self::BLOCK),
            "ECB requires whole blocks"
        );
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks_exact(Self::BLOCK) {
            let block: [u8; 16] = chunk.try_into().expect("16-byte chunk");
            out.extend_from_slice(&self.encrypt_block(&block));
        }
        out
    }

    /// Decrypts whole blocks in ECB mode.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn ecb_decrypt(&self, data: &[u8]) -> Vec<u8> {
        assert!(
            data.len().is_multiple_of(Self::BLOCK),
            "ECB requires whole blocks"
        );
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks_exact(Self::BLOCK) {
            let block: [u8; 16] = chunk.try_into().expect("16-byte chunk");
            out.extend_from_slice(&self.decrypt_block(&block));
        }
        out
    }

    /// CTR-mode keystream application: encrypts or decrypts (the operation
    /// is its own inverse) `data` of any length under `nonce`.
    pub fn ctr_crypt(&self, nonce: &[u8; 16], data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut counter = u128::from_be_bytes(*nonce);
        for chunk in data.chunks(Self::BLOCK) {
            let ks = self.encrypt_block(&counter.to_be_bytes());
            out.extend(chunk.iter().zip(ks.iter()).map(|(d, k)| d ^ k));
            counter = counter.wrapping_add(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_hex, to_hex};

    #[test]
    fn sbox_matches_fips_spot_values() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    /// FIPS 197 appendix C.3 AES-256 known-answer test.
    #[test]
    fn fips197_c3() {
        let key: [u8; 32] =
            from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes256::new(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(to_hex(&ct), "8ea2b7ca516745bfeafc49904b496089");
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    /// NIST SP 800-38A F.1.5 ECB-AES256 vectors (first two blocks).
    #[test]
    fn sp800_38a_ecb() {
        let key: [u8; 32] =
            from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let aes = Aes256::new(&key);
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        let ct = aes.ecb_encrypt(&pt);
        assert_eq!(
            to_hex(&ct),
            "f3eed1bdb5d2a03c064b5a7e3db181f8591ccb10d410ed26dc5ba74a31362870"
        );
        assert_eq!(aes.ecb_decrypt(&ct), pt);
    }

    /// NIST SP 800-38A F.5.5 CTR-AES256 vector (first block).
    #[test]
    fn sp800_38a_ctr() {
        let key: [u8; 32] =
            from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let nonce: [u8; 16] = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let aes = Aes256::new(&key);
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
        let ct = aes.ctr_crypt(&nonce, &pt);
        assert_eq!(to_hex(&ct), "601ec313775789a5b7a7f504bbf3d228");
    }

    #[test]
    fn ctr_is_its_own_inverse_for_any_length() {
        let key = [7u8; 32];
        let nonce = [9u8; 16];
        let aes = Aes256::new(&key);
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let ct = aes.ctr_crypt(&nonce, &data);
            assert_eq!(aes.ctr_crypt(&nonce, &ct), data, "len {len}");
            if len >= 16 {
                assert_ne!(ct, data, "ciphertext must differ, len {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn ecb_rejects_partial_blocks() {
        let aes = Aes256::new(&[0u8; 32]);
        let _ = aes.ecb_encrypt(&[0u8; 15]);
    }

    #[test]
    fn debug_redacts_key_material() {
        let aes = Aes256::new(&[0x42u8; 32]);
        assert!(!format!("{aes:?}").contains("42"));
    }
}
