//! # dcs-ndp — near-device processing algorithms, from scratch
//!
//! Table II of the DCS-ctrl paper catalogs the intermediate data processing
//! that scale-out storage applications perform between device operations:
//! data-integrity checks (MD5, CRC32, SHA), encryption (AES-256), and
//! compression (GZIP). The paper offloads these to FPGA IP cores inside the
//! HDC Engine (Table III); this crate supplies *functionally real*
//! implementations so that the simulated data path is end-to-end
//! verifiable: the MD5 an NDP unit produces is the MD5 of the exact bytes
//! that crossed the simulated fabric.
//!
//! Everything is implemented from first principles on `std` only:
//!
//! * [`md5`] — RFC 1321, incremental and one-shot.
//! * [`sha1`] — RFC 3174 / FIPS 180-4.
//! * [`sha256`] — FIPS 180-4.
//! * [`crc32`] — IEEE 802.3 (the polynomial HDFS and Ethernet use).
//! * [`aes`] — AES-256 block cipher with ECB and CTR modes.
//! * [`deflate`] — DEFLATE (RFC 1951) compression and decompression plus
//!   the GZIP (RFC 1952) framing.
//!
//! [`NdpFunction`] is the uniform dispatch surface the HDC Engine's NDP
//! units use.
//!
//! ```
//! use dcs_ndp::{md5::md5, crc32::crc32};
//! assert_eq!(hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
//! # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
//! ```

pub mod aes;
pub mod crc32;
pub mod deflate;
pub mod function;
pub mod md5;
pub mod sha1;
pub mod sha256;

pub use function::{NdpFunction, NdpOutput};

/// Formats bytes as lowercase hex (handy for digest comparison in tests and
/// examples).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        write!(s, "{b:02x}").expect("writing to String cannot fail");
    }
    s
}

/// Parses a lowercase/uppercase hex string into bytes.
///
/// # Panics
///
/// Panics on odd length or non-hex characters (test helper, not a parser
/// for untrusted input).
pub fn from_hex(s: &str) -> Vec<u8> {
    assert!(
        s.len().is_multiple_of(2),
        "hex string must have even length"
    );
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("invalid hex digit"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes = vec![0x00, 0xde, 0xad, 0xbe, 0xef, 0xff];
        assert_eq!(to_hex(&bytes), "00deadbeefff");
        assert_eq!(from_hex("00deadbeefff"), bytes);
        assert_eq!(from_hex("DEADBEEF"), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn from_hex_rejects_odd_length() {
        from_hex("abc");
    }
}
