//! MD5 message digest (RFC 1321).
//!
//! MD5 is the integrity check OpenStack Swift, Amazon S3, and Azure Blob
//! perform on every object (Table II of the paper), and the hash the
//! SSD→Processing→NIC microbenchmark of Figure 11b computes.

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// `K[i] = floor(2^32 * |sin(i + 1)|`, precomputed as the RFC specifies.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 state.
///
/// ```
/// use dcs_ndp::md5::Md5;
/// let mut h = Md5::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(dcs_ndp::to_hex(&h.finalize()), "5eb63bbbe01eeed093cb22bb8f5acdc3");
/// ```
#[derive(Clone, Debug)]
pub struct Md5 {
    state: [u32; 4],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Md5::new()
    }
}

impl Md5 {
    /// Digest length in bytes.
    pub const DIGEST_LEN: usize = 16;

    /// A fresh hasher.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything fit in the partial buffer; the remainder
                // handling below must not clobber `buf_len`.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Completes the hash, returning the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length is appended outside of update (update would recount it).
        self.buf[56..].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let vectors: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in vectors {
            assert_eq!(to_hex(&md5(input)), expected, "input {input:?}");
        }
    }

    #[test]
    fn incremental_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
        let reference = md5(&data);
        for split in [0, 1, 63, 64, 65, 128, 299, 300] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), reference, "split {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // 55/56/57 bytes straddle the padding boundary; 64 is one block.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![0xabu8; len];
            let mut h = Md5::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), md5(&data), "len {len}");
        }
    }
}
