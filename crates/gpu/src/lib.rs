//! # dcs-gpu — the GPU model used by the baseline designs
//!
//! The paper's baseline designs (software optimization and
//! software-controlled P2P) offload intermediate data processing — MD5 for
//! Swift, CRC32 for HDFS — to an NVIDIA Tesla K20m (§V-B): the CPU copies
//! or P2P-DMAs data into GPU memory, launches a kernel, and fetches the
//! result. DCS-ctrl's pitch is that this *GPU control* and *CPU↔GPU copy*
//! time disappears when the processing moves into the HDC Engine's NDP
//! units, so the GPU model concentrates on exactly those costs:
//!
//! * BAR-exposed device memory (GPUDirect-style): other devices and the
//!   host DMA straight into GPU memory through the normal PCIe fabric.
//! * Kernel launch latency and a compute engine with a configurable
//!   per-function throughput; the *actual* computation runs the same
//!   [`dcs_ndp`] code the NDP units use, so results are comparable
//!   byte-for-byte.
//! * A completion message back to the launching component (the driver's
//!   completion interrupt).
//!
//! ```no_run
//! use dcs_gpu::{GpuConfig, LaunchKernel};
//! use dcs_ndp::NdpFunction;
//! # let (input_addr, output_addr) = unimplemented!();
//! let launch = LaunchKernel {
//!     id: 1,
//!     function: NdpFunction::Md5,
//!     input_addr,
//!     input_len: 4096,
//!     aux: vec![],
//!     output_addr,
//! };
//! ```

use dcs_sim::DetMap;

use dcs_ndp::NdpFunction;
use dcs_pcie::{AddrRange, PhysAddr, PhysMemory, PortId};
use dcs_sim::{time, Bandwidth, Component, ComponentId, Ctx, FifoServer, Msg, Simulator};

/// GPU timing parameters (Tesla K20m-era defaults).
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Driver-to-execution kernel launch latency, in ns.
    pub launch_latency_ns: u64,
    /// Completion signaling latency back to the host, in ns.
    pub completion_latency_ns: u64,
    /// Compute throughput for digest kernels (MD5/SHA/CRC).
    pub hash_throughput: Bandwidth,
    /// Compute throughput for transform kernels (AES/GZIP).
    pub transform_throughput: Bandwidth,
    /// Device memory size in bytes.
    pub memory_size: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            launch_latency_ns: time::us(22),
            completion_latency_ns: time::us(9),
            hash_throughput: Bandwidth::gbps(30.0),
            transform_throughput: Bandwidth::gbps(20.0),
            memory_size: 5 << 30,
        }
    }
}

/// Asks the GPU to run `function` over `input_len` bytes at `input_addr`
/// (which must already be in GPU memory), storing the digest or transformed
/// data at `output_addr`.
#[derive(Debug, Clone)]
pub struct LaunchKernel {
    /// Requester-chosen token echoed in [`KernelDone`].
    pub id: u64,
    /// The processing function to execute.
    pub function: NdpFunction,
    /// Input data address (in GPU memory).
    pub input_addr: PhysAddr,
    /// Input length in bytes.
    pub input_len: usize,
    /// Function-specific parameters (AES key‖nonce).
    pub aux: Vec<u8>,
    /// Where to store the digest (digest functions) or transformed data.
    pub output_addr: PhysAddr,
}

/// Kernel completion notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDone {
    /// Token from the originating [`LaunchKernel`].
    pub id: u64,
    /// Whether the kernel succeeded (processing errors surface here).
    pub ok: bool,
    /// Bytes written at `output_addr`.
    pub output_len: usize,
}

/// Internal: compute finished.
#[derive(Debug)]
struct ComputeDone {
    token: u64,
}

struct Pending {
    launch: LaunchKernel,
    reply_to: ComponentId,
}

/// Handle returned by [`install_gpu`].
#[derive(Debug, Clone)]
pub struct GpuHandle {
    /// The GPU component.
    pub device: ComponentId,
    /// BAR-exposed device memory (GPUDirect target for P2P DMA).
    pub memory: AddrRange,
    /// PCIe port the GPU occupies.
    pub port: PortId,
}

/// The GPU component.
pub struct GpuDevice {
    config: GpuConfig,
    compute: FifoServer,
    pending: DetMap<u64, Pending>,
    next_token: u64,
}

impl GpuDevice {
    /// Creates a GPU with the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        GpuDevice {
            config,
            compute: FifoServer::new(),
            pending: DetMap::new(),
            next_token: 1,
        }
    }

    fn throughput_for(&self, f: NdpFunction) -> Bandwidth {
        if f.is_digest() {
            self.config.hash_throughput
        } else {
            self.config.transform_throughput
        }
    }
}

impl Component for GpuDevice {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let reply_to = msg.src;
        let msg = match msg.downcast::<LaunchKernel>() {
            Ok(launch) => {
                let token = self.next_token;
                self.next_token += 1;
                let service = self
                    .throughput_for(launch.function)
                    .transfer_time(launch.input_len);
                let start_at = ctx.now() + self.config.launch_latency_ns;
                let done = self.compute.offer(start_at, service);
                ctx.world().stats.counter("gpu.kernels").add(1);
                ctx.world()
                    .stats
                    .counter("gpu.bytes")
                    .add(launch.input_len as u64);
                self.pending.insert(token, Pending { launch, reply_to });
                let delay = done - ctx.now();
                ctx.send_self_in(delay, ComputeDone { token });
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<ComputeDone>() {
            Ok(ComputeDone { token }) => {
                let Pending { launch, reply_to } = self
                    .pending
                    .remove(&token)
                    .expect("compute completion for live kernel");
                let input = ctx
                    .world_ref()
                    .expect::<PhysMemory>()
                    .read(launch.input_addr, launch.input_len);
                let (ok, out_bytes) = match launch.function.apply(&input, &launch.aux) {
                    Ok(out) => {
                        let bytes = match (&out.digest, &out.data) {
                            (Some(d), _) => d.clone(),
                            (None, Some(d)) => d.clone(),
                            (None, None) => vec![],
                        };
                        (true, bytes)
                    }
                    Err(_) => (false, vec![]),
                };
                if ok && !out_bytes.is_empty() {
                    ctx.world()
                        .expect_mut::<PhysMemory>()
                        .write(launch.output_addr, &out_bytes);
                }
                let done = KernelDone {
                    id: launch.id,
                    ok,
                    output_len: out_bytes.len(),
                };
                ctx.send_in(self.config.completion_latency_ns, reply_to, done);
            }
            Err(other) => panic!("GpuDevice received unexpected message: {other:?}"),
        }
    }
}

/// Allocates GPU memory and installs the device on `port`.
pub fn install_gpu(sim: &mut Simulator, config: GpuConfig, name: &str, port: PortId) -> GpuHandle {
    let memory = {
        let mem = sim.world_mut().expect_mut::<PhysMemory>();
        mem.alloc_region(&format!("{name}-mem"), config.memory_size, port)
    };
    let device = sim.add(name, GpuDevice::new(config));
    GpuHandle {
        device,
        memory,
        port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_ndp::to_hex;

    struct Launcher {
        gpu: ComponentId,
        results: Vec<KernelDone>,
    }

    #[derive(Debug)]
    struct Go(LaunchKernel);

    impl Component for Launcher {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<Go>() {
                Ok(Go(launch)) => {
                    let gpu = self.gpu;
                    ctx.send_now(gpu, launch);
                    return;
                }
                Err(m) => m,
            };
            match msg.downcast::<KernelDone>() {
                Ok(done) => {
                    ctx.world().stats.counter("launcher.done").add(1);
                    if done.ok {
                        ctx.world().stats.counter("launcher.ok").add(1);
                    }
                    self.results.push(done);
                }
                Err(other) => panic!("unexpected: {other:?}"),
            }
        }
    }

    fn setup() -> (Simulator, GpuHandle, ComponentId) {
        let mut sim = Simulator::new(3);
        sim.world_mut().insert(PhysMemory::new());
        let gpu = install_gpu(&mut sim, GpuConfig::default(), "gpu0", PortId(3));
        let launcher = sim.add(
            "launcher",
            Launcher {
                gpu: gpu.device,
                results: vec![],
            },
        );
        (sim, gpu, launcher)
    }

    #[test]
    fn md5_kernel_produces_correct_digest() {
        let (mut sim, gpu, launcher) = setup();
        let input = b"abc";
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(gpu.memory.start, input);
        sim.kickoff(
            launcher,
            Go(LaunchKernel {
                id: 9,
                function: NdpFunction::Md5,
                input_addr: gpu.memory.start,
                input_len: input.len(),
                aux: vec![],
                output_addr: gpu.memory.start + 0x1000,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("launcher.ok"), 1);
        let digest = sim
            .world()
            .expect::<PhysMemory>()
            .read(gpu.memory.start + 0x1000, 16);
        assert_eq!(to_hex(&digest), "900150983cd24fb0d6963f7d28e17f72");
        // Latency ≥ launch + completion latencies.
        assert!(sim.now().as_nanos() >= time::us(11));
    }

    #[test]
    fn kernels_serialize_on_the_compute_engine() {
        let (mut sim, gpu, launcher) = setup();
        let len = 1 << 20;
        let data = vec![7u8; len];
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(gpu.memory.start, &data);
        for i in 0..2 {
            sim.kickoff(
                launcher,
                Go(LaunchKernel {
                    id: i,
                    function: NdpFunction::Crc32,
                    input_addr: gpu.memory.start,
                    input_len: len,
                    aux: vec![],
                    output_addr: gpu.memory.start + 0x200000 + i * 64,
                }),
            );
        }
        sim.run();
        assert_eq!(sim.world().stats.counter_value("launcher.ok"), 2);
        let one = GpuConfig::default().hash_throughput.transfer_time(len);
        let t = sim.now().as_nanos();
        assert!(t >= 2 * one, "{t} >= {}", 2 * one);
    }

    #[test]
    fn failed_processing_reports_not_ok() {
        let (mut sim, gpu, launcher) = setup();
        sim.kickoff(
            launcher,
            Go(LaunchKernel {
                id: 1,
                function: NdpFunction::Aes256Encrypt,
                input_addr: gpu.memory.start,
                input_len: 16,
                aux: vec![1, 2, 3], // malformed key material
                output_addr: gpu.memory.start + 0x1000,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("launcher.done"), 1);
        assert_eq!(sim.world().stats.counter_value("launcher.ok"), 0);
    }

    #[test]
    fn transform_kernel_writes_output_data() {
        let (mut sim, gpu, launcher) = setup();
        let input = b"compressible compressible compressible".repeat(10);
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(gpu.memory.start, &input);
        sim.kickoff(
            launcher,
            Go(LaunchKernel {
                id: 2,
                function: NdpFunction::GzipCompress,
                input_addr: gpu.memory.start,
                input_len: input.len(),
                aux: vec![],
                output_addr: gpu.memory.start + 0x10000,
            }),
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("launcher.ok"), 1);
        // Decompress what the GPU wrote and compare.
        let mem = sim.world().expect::<PhysMemory>();
        // Compressed length is not directly visible here; read generously
        // and trust the gzip framing to delimit the stream.
        let blob = mem.read(gpu.memory.start + 0x10000, input.len() + 64);
        let back = dcs_ndp::deflate::gzip_decompress(
            &blob[..gzip_member_len(&blob).expect("valid gzip member")],
        )
        .unwrap();
        assert_eq!(back, input);
    }

    /// Finds the length of the gzip member at the start of `blob` by
    /// attempting decompression at decreasing lengths (test helper).
    fn gzip_member_len(blob: &[u8]) -> Option<usize> {
        (18..=blob.len()).find(|&n| dcs_ndp::deflate::gzip_decompress(&blob[..n]).is_ok())
    }
}
