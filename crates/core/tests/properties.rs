//! Property-based tests of the HDC Engine's pure logic: scoreboard
//! scheduling invariants, the chunk allocator, and the wire formats.

use dcs_core::buffers::{ChunkAllocator, CHUNK_SIZE};
use dcs_core::command::{CompletionRecord, D2dCommand, DevOpCode};
use dcs_core::scoreboard::{DevCmd, Scoreboard};
use dcs_ndp::NdpFunction;
use dcs_pcie::{AddrRange, PhysAddr};
use proptest::prelude::*;

fn arb_function() -> impl Strategy<Value = NdpFunction> {
    prop_oneof![
        Just(NdpFunction::Md5),
        Just(NdpFunction::Sha1),
        Just(NdpFunction::Sha256),
        Just(NdpFunction::Crc32),
        Just(NdpFunction::Aes256Encrypt),
        Just(NdpFunction::Aes256Decrypt),
        Just(NdpFunction::GzipCompress),
        Just(NdpFunction::GzipDecompress),
    ]
}

fn arb_op() -> impl Strategy<Value = DevOpCode> {
    prop_oneof![
        (any::<u8>(), 0u64..(1 << 48), 1u32..(1 << 20))
            .prop_map(|(ssd, lba, len)| DevOpCode::SsdRead { ssd, lba, len }),
        (any::<u8>(), 0u64..(1 << 48)).prop_map(|(ssd, lba)| DevOpCode::SsdWrite { ssd, lba }),
        (arb_function(), any::<u32>(), any::<u16>()).prop_map(|(function, aux_off, aux_len)| {
            DevOpCode::Process { function, aux_off, aux_len }
        }),
        (any::<u16>(), any::<u32>()).prop_map(|(conn, seq)| DevOpCode::NicSend { conn, seq }),
        (any::<u16>(), 1u32..(1 << 20)).prop_map(|(conn, len)| DevOpCode::NicRecv { conn, len }),
    ]
}

fn arb_command() -> impl Strategy<Value = D2dCommand> {
    (
        any::<u64>(),
        prop_oneof![
            (any::<u8>(), 0u64..(1 << 48), 1u32..(1 << 20))
                .prop_map(|(ssd, lba, len)| DevOpCode::SsdRead { ssd, lba, len }),
            (any::<u16>(), 1u32..(1 << 20)).prop_map(|(conn, len)| DevOpCode::NicRecv { conn, len }),
        ],
        proptest::collection::vec(arb_op(), 0..3),
    )
        .prop_map(|(id, first, rest)| {
            let mut ops = vec![first];
            ops.extend(rest);
            D2dCommand { id, ops }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// D2D commands round-trip through their 64-byte encoding.
    #[test]
    fn command_roundtrip(cmd in arb_command()) {
        let decoded = D2dCommand::from_bytes(&cmd.to_bytes()).unwrap();
        prop_assert_eq!(decoded, cmd);
    }

    /// Completion records round-trip (digest ≤ 32 bytes) and are invisible
    /// under the wrong phase.
    #[test]
    fn completion_roundtrip(
        id in any::<u64>(),
        ok in any::<bool>(),
        phase in any::<bool>(),
        payload_len in any::<u32>(),
        digest in proptest::collection::vec(any::<u8>(), 0..=32),
    ) {
        let rec = CompletionRecord { id, ok, phase, payload_len, digest };
        let bytes = rec.to_bytes();
        prop_assert_eq!(CompletionRecord::from_bytes(&bytes, phase), Some(rec));
        prop_assert_eq!(CompletionRecord::from_bytes(&bytes, !phase), None);
    }

    /// The chunk allocator never hands out overlapping live ranges and
    /// frees restore capacity exactly.
    #[test]
    fn allocator_no_overlap(ops in proptest::collection::vec((any::<bool>(), 1usize..5), 1..200)) {
        let region = AddrRange::new(PhysAddr(0x4000_0000), 32 * CHUNK_SIZE);
        let mut alloc = ChunkAllocator::new(region);
        let mut live: Vec<AddrRange> = Vec::new();
        for (do_free, n) in ops {
            if do_free && !live.is_empty() {
                let r = live.remove(n % live.len());
                alloc.free(r);
            } else if let Some(r) = alloc.alloc(n * CHUNK_SIZE as usize) {
                for l in &live {
                    prop_assert!(!l.overlaps(r), "{} overlaps {}", l, r);
                }
                prop_assert!(r.start >= region.start && r.end().as_u64() <= region.end().as_u64());
                live.push(r);
            }
            let live_chunks: u64 = live.iter().map(|r| r.len / CHUNK_SIZE).sum();
            prop_assert_eq!(alloc.allocated() as u64, live_chunks);
        }
    }

    /// Scoreboard invariants under arbitrary completion interleavings:
    /// dependencies respected, completions delivered in admission order.
    #[test]
    fn scoreboard_ordering(
        pipeline_lens in proptest::collection::vec(1usize..4, 1..20),
        completion_order in proptest::collection::vec(any::<u16>(), 0..200),
    ) {
        let mut sb = Scoreboard::new(64);
        let total: usize = pipeline_lens.len();
        for (i, n) in pipeline_lens.iter().enumerate() {
            let ops = (0..*n)
                .map(|_| DevCmd::NvmeRead { ssd: 0, lba: 0, len: 1, buf: PhysAddr(0x1000) })
                .collect();
            sb.admit(i as u64, ops).expect("capacity suffices");
        }
        // Track what is issued; complete in a pseudo-random order driven by
        // `completion_order`.
        let mut inflight = Vec::new();
        let mut delivered = Vec::new();
        let mut pending_issue = true;
        let mut cursor = 0usize;
        while delivered.len() < total {
            if pending_issue {
                while let Some((slot, _)) = sb.issue_next(|_| true) {
                    inflight.push(slot);
                }
                pending_issue = false;
            }
            if inflight.is_empty() {
                prop_assert!(false, "no progress possible");
            }
            let pick = if completion_order.is_empty() {
                0
            } else {
                let v = completion_order[cursor % completion_order.len()] as usize;
                cursor += 1;
                v % inflight.len()
            };
            let slot = inflight.swap_remove(pick);
            sb.mark_done(slot, 1);
            pending_issue = true;
            for (id, ok, _) in sb.pop_deliverable() {
                prop_assert!(ok);
                delivered.push(id);
            }
        }
        // Admission order is delivery order.
        let expect: Vec<u64> = (0..total as u64).collect();
        prop_assert_eq!(delivered, expect);
    }
}
