//! Randomized property tests of the HDC Engine's pure logic: scoreboard
//! scheduling invariants, the chunk allocator, and the wire formats.
//! Driven by the deterministic in-repo [`Rng`] (the container builds
//! offline, so no external property-testing framework is available).

use dcs_core::buffers::{ChunkAllocator, CHUNK_SIZE};
use dcs_core::command::{CompletionRecord, D2dCommand, DevOpCode};
use dcs_core::scoreboard::{DevCmd, Scoreboard};
use dcs_ndp::NdpFunction;
use dcs_pcie::{AddrRange, PhysAddr};
use dcs_sim::Rng;

fn random_function(rng: &mut Rng) -> NdpFunction {
    const ALL: [NdpFunction; 8] = [
        NdpFunction::Md5,
        NdpFunction::Sha1,
        NdpFunction::Sha256,
        NdpFunction::Crc32,
        NdpFunction::Aes256Encrypt,
        NdpFunction::Aes256Decrypt,
        NdpFunction::GzipCompress,
        NdpFunction::GzipDecompress,
    ];
    ALL[rng.gen_range(0..ALL.len() as u64) as usize]
}

fn random_op(rng: &mut Rng) -> DevOpCode {
    match rng.gen_range(0..5) {
        0 => DevOpCode::SsdRead {
            ssd: rng.next_u64() as u8,
            lba: rng.gen_range(0..1 << 48),
            len: rng.gen_range(1..1 << 20) as u32,
        },
        1 => DevOpCode::SsdWrite {
            ssd: rng.next_u64() as u8,
            lba: rng.gen_range(0..1 << 48),
        },
        2 => DevOpCode::Process {
            function: random_function(rng),
            aux_off: rng.next_u64() as u32,
            aux_len: rng.next_u64() as u16,
        },
        3 => DevOpCode::NicSend {
            conn: rng.next_u64() as u16,
            seq: rng.next_u64() as u32,
        },
        _ => DevOpCode::NicRecv {
            conn: rng.next_u64() as u16,
            len: rng.gen_range(1..1 << 20) as u32,
        },
    }
}

/// D2D commands round-trip through their 64-byte encoding.
#[test]
fn command_roundtrip() {
    let mut rng = Rng::new(0xC0_44A4D);
    for _ in 0..128 {
        // The first op must carry data in (a read or a receive).
        let first = if rng.gen_bool(0.5) {
            DevOpCode::SsdRead {
                ssd: rng.next_u64() as u8,
                lba: rng.gen_range(0..1 << 48),
                len: rng.gen_range(1..1 << 20) as u32,
            }
        } else {
            DevOpCode::NicRecv {
                conn: rng.next_u64() as u16,
                len: rng.gen_range(1..1 << 20) as u32,
            }
        };
        let mut ops = vec![first];
        for _ in 0..rng.gen_range(0..3) {
            ops.push(random_op(&mut rng));
        }
        let cmd = D2dCommand {
            id: rng.next_u64(),
            ops,
        };
        let decoded = D2dCommand::from_bytes(&cmd.to_bytes()).unwrap();
        assert_eq!(decoded, cmd);
    }
}

/// Completion records round-trip (digest ≤ 32 bytes) and are invisible
/// under the wrong phase.
#[test]
fn completion_roundtrip() {
    let mut rng = Rng::new(0xC0_4713);
    for _ in 0..128 {
        let digest = {
            let len = rng.gen_range(0..33) as usize;
            let mut v = vec![0u8; len];
            rng.fill_bytes(&mut v);
            v
        };
        let phase = rng.gen_bool(0.5);
        let rec = CompletionRecord {
            id: rng.next_u64(),
            ok: rng.gen_bool(0.5),
            phase,
            payload_len: rng.next_u64() as u32,
            digest,
        };
        let bytes = rec.to_bytes();
        assert_eq!(CompletionRecord::from_bytes(&bytes, phase), Some(rec));
        assert_eq!(CompletionRecord::from_bytes(&bytes, !phase), None);
    }
}

/// The chunk allocator never hands out overlapping live ranges and
/// frees restore capacity exactly.
#[test]
fn allocator_no_overlap() {
    let mut rng = Rng::new(0xA110C);
    for _ in 0..64 {
        let region = AddrRange::new(PhysAddr(0x4000_0000), 32 * CHUNK_SIZE);
        let mut alloc = ChunkAllocator::new(region);
        let mut live: Vec<AddrRange> = Vec::new();
        for _ in 0..rng.gen_range(1..200) {
            let do_free = rng.gen_bool(0.5);
            let n = rng.gen_range(1..5) as usize;
            if do_free && !live.is_empty() {
                let r = live.remove(n % live.len());
                alloc.free(r);
            } else if let Some(r) = alloc.alloc(n * CHUNK_SIZE as usize) {
                for l in &live {
                    assert!(!l.overlaps(r), "{l} overlaps {r}");
                }
                assert!(r.start >= region.start && r.end().as_u64() <= region.end().as_u64());
                live.push(r);
            }
            let live_chunks: u64 = live.iter().map(|r| r.len / CHUNK_SIZE).sum();
            assert_eq!(alloc.allocated() as u64, live_chunks);
        }
    }
}

/// Scoreboard invariants under arbitrary completion interleavings:
/// dependencies respected, completions delivered in admission order.
#[test]
fn scoreboard_ordering() {
    let mut rng = Rng::new(0x5C02E);
    for _ in 0..64 {
        let pipeline_lens: Vec<usize> = (0..rng.gen_range(1..20))
            .map(|_| rng.gen_range(1..4) as usize)
            .collect();
        let mut sb = Scoreboard::new(64);
        let total: usize = pipeline_lens.len();
        for (i, n) in pipeline_lens.iter().enumerate() {
            let ops = (0..*n)
                .map(|_| DevCmd::NvmeRead {
                    ssd: 0,
                    lba: 0,
                    len: 1,
                    buf: PhysAddr(0x1000),
                })
                .collect();
            sb.admit(i as u64, ops).expect("capacity suffices");
        }
        // Track what is issued; complete in a random order.
        let mut inflight = Vec::new();
        let mut delivered = Vec::new();
        while delivered.len() < total {
            while let Some((slot, _)) = sb.issue_next(|_| true) {
                inflight.push(slot);
            }
            assert!(!inflight.is_empty(), "no progress possible");
            let pick = rng.gen_range(0..inflight.len() as u64) as usize;
            let slot = inflight.swap_remove(pick);
            sb.mark_done(slot, 1);
            for (id, ok, _) in sb.pop_deliverable() {
                assert!(ok);
                delivered.push(id);
            }
        }
        // Admission order is delivery order.
        let expect: Vec<u64> = (0..total as u64).collect();
        assert_eq!(delivered, expect);
    }
}
