//! End-to-end DCS-ctrl tests: two nodes, HDC Engines orchestrating
//! off-the-shelf SSD and NIC models, data verified byte-for-byte.

use dcs_core::lib_api::Permissions;
use dcs_core::{build_dcs_pair, DcsNodeBuilder, FileDesc, HdcLibrary, SocketDesc};
use dcs_host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ndp::{md5::md5, NdpFunction};
use dcs_nic::{TcpFlow, WireConfig};
use dcs_pcie::PhysMemory;
use dcs_sim::{time, Category, Component, ComponentId, Ctx, Msg, Simulator};

/// World-resident mailbox the tests read results from.
#[derive(Default, Debug)]
struct Inbox(Vec<D2dDone>);

/// Collects D2dDone results into world stats + the [`Inbox`].
struct App;

#[derive(Debug)]
struct Submit {
    to: ComponentId,
    job: D2dJob,
}

impl Component for App {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Submit>() {
            Ok(Submit { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg
            .downcast::<D2dDone>()
            .expect("app receives job completions");
        ctx.world().stats.counter("app.done").add(1);
        if done.ok {
            ctx.world().stats.counter("app.ok").add(1);
        }
        if ctx.world().get::<Inbox>().is_none() {
            ctx.world().insert(Inbox::default());
        }
        ctx.world().expect_mut::<Inbox>().0.push(done);
    }
}

struct Rig {
    sim: Simulator,
    a: dcs_core::DcsNode,
    b: dcs_core::DcsNode,
    app: ComponentId,
}

fn setup() -> Rig {
    let mut sim = Simulator::new(42);
    let (a, b) = build_dcs_pair(
        &mut sim,
        &DcsNodeBuilder::new("alpha"),
        &DcsNodeBuilder::new("beta"),
        WireConfig::default(),
    );
    let app = sim.add("app", App);
    // Let initialization settle.
    sim.run();
    Rig { sim, a, b, app }
}

#[test]
fn ssd_to_nic_d2d_transfers_real_bytes() {
    let mut rig = setup();
    let len = 64 * 1024;
    let payload: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
    rig.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(rig.a.ssds[0].lba_addr(500), &payload);

    let flow = TcpFlow::example(1, 2, 40_000, 9000);
    // Sender job on A: SSD read -> NIC send.
    let send_job = D2dJob {
        id: 1,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 500,
                len,
            },
            D2dOp::NicSend { flow, seq: 1000 },
        ],
        reply_to: rig.app,
        tag: "send",
    };
    // Receiver job on B: NIC recv -> MD5 digest (verifies payload).
    let recv_flow = flow.reversed();
    let recv_job = D2dJob {
        id: 2,
        ops: vec![
            D2dOp::NicRecv {
                flow: recv_flow,
                len,
            },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
        ],
        reply_to: rig.app,
        tag: "recv",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.b.driver,
            job: recv_job,
        },
    );
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.driver,
            job: send_job,
        },
    );
    rig.sim.run();

    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 2);
    assert_eq!(
        rig.sim.world().stats.counter_value("hdc.cmd_parse_errors"),
        0
    );
    // The wire really carried the bytes: no drops, frames counted.
    assert_eq!(
        rig.sim
            .world()
            .stats
            .counter_value("nic.rx_dropped_no_buffer"),
        0
    );
    assert!(rig.sim.world().stats.counter_value("wire.frames") >= (len / 1448) as u64);
}

#[test]
fn digest_travels_back_in_the_completion_record() {
    let mut rig = setup();
    let len = 16 * 1024;
    let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 253) as u8).collect();
    let expected = md5(&payload);
    rig.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(rig.a.ssds[0].lba_addr(0), &payload);

    let flow = TcpFlow::example(1, 2, 40_001, 9001);
    // A computes MD5 via NDP while sending.
    let job = D2dJob {
        id: 7,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len,
            },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
            D2dOp::NicSend { flow, seq: 0 },
        ],
        reply_to: rig.app,
        tag: "send-md5",
    };
    // B receives and digests independently.
    let recv = D2dJob {
        id: 8,
        ops: vec![
            D2dOp::NicRecv {
                flow: flow.reversed(),
                len,
            },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
        ],
        reply_to: rig.app,
        tag: "recv-md5",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.b.driver,
            job: recv,
        },
    );
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.driver,
            job,
        },
    );
    rig.sim.run();
    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 2);
    assert_eq!(rig.sim.world().stats.counter_value("hdc.ndp_errors"), 0);
    // Both completion records carry the digest of the exact bytes that
    // crossed the fabric — sender-side and receiver-side must agree.
    let inbox = rig.sim.world().expect::<Inbox>();
    let digests: Vec<&Vec<u8>> = inbox.0.iter().filter_map(|d| d.digest.as_ref()).collect();
    assert_eq!(digests.len(), 2, "both jobs hash");
    for d in &digests {
        assert_eq!(
            d.as_slice(),
            expected.as_slice(),
            "digest matches payload MD5"
        );
    }
}

#[test]
fn recvfile_persists_received_data_to_remote_flash() {
    let mut rig = setup();
    let len = 32 * 1024;
    let payload: Vec<u8> = (0..len).map(|i| (i % 239) as u8).collect();
    rig.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(rig.a.ssds[0].lba_addr(100), &payload);

    let mut lib = HdcLibrary::new();
    let flow = TcpFlow::example(1, 2, 50_000, 9002);
    let src_file = FileDesc {
        ssd: 0,
        base_lba: 100,
        len: len as u64,
        perms: Permissions::RO,
    };
    let sock_a = SocketDesc {
        flow,
        seq: 0,
        perms: Permissions::RW,
    };
    let send = lib
        .sendfile(&src_file, &sock_a, 0, len, rig.app, "balancer-send")
        .unwrap();

    let dst_file = FileDesc {
        ssd: 0,
        base_lba: 900,
        len: len as u64,
        perms: Permissions::RW,
    };
    let sock_b = SocketDesc {
        flow: flow.reversed(),
        seq: 0,
        perms: Permissions::RW,
    };
    let recv = lib
        .recvfile_processed(
            &sock_b,
            &dst_file,
            0,
            len,
            Some((NdpFunction::Crc32, vec![])),
            rig.app,
            "balancer-recv",
        )
        .unwrap();

    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.b.driver,
            job: recv,
        },
    );
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.driver,
            job: send,
        },
    );
    rig.sim.run();

    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 2);
    // The HDFS-balancer flow: data left A's flash, crossed the wire, was
    // CRC-checked by B's NDP unit, and landed on B's flash.
    let on_b = rig
        .sim
        .world()
        .expect::<PhysMemory>()
        .read(rig.b.ssds[0].lba_addr(900), len);
    assert_eq!(on_b, payload);
}

#[test]
fn aes_encrypted_transfer_decrypts_on_the_other_side() {
    let mut rig = setup();
    let len = 8 * 1024;
    let payload: Vec<u8> = (0..len).map(|i| (i * 13 % 251) as u8).collect();
    rig.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(rig.a.ssds[0].lba_addr(0), &payload);
    let mut aux = vec![0x42u8; 32];
    aux.extend([0x17u8; 16]);

    let flow = TcpFlow::example(1, 2, 50_001, 9003);
    let send = D2dJob {
        id: 11,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len,
            },
            D2dOp::Process {
                function: NdpFunction::Aes256Encrypt,
                aux: aux.clone(),
            },
            D2dOp::NicSend { flow, seq: 0 },
        ],
        reply_to: rig.app,
        tag: "secure-send",
    };
    let recv = D2dJob {
        id: 12,
        ops: vec![
            D2dOp::NicRecv {
                flow: flow.reversed(),
                len,
            },
            D2dOp::Process {
                function: NdpFunction::Aes256Decrypt,
                aux,
            },
            D2dOp::SsdWrite { ssd: 0, lba: 700 },
        ],
        reply_to: rig.app,
        tag: "secure-recv",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.b.driver,
            job: recv,
        },
    );
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.driver,
            job: send,
        },
    );
    rig.sim.run();
    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 2);
    let on_b = rig
        .sim
        .world()
        .expect::<PhysMemory>()
        .read(rig.b.ssds[0].lba_addr(700), len);
    assert_eq!(on_b, payload, "decrypt(encrypt(x)) must land as x");
}

#[test]
fn invalid_lba_fails_cleanly_through_the_whole_stack() {
    let mut rig = setup();
    let job = D2dJob {
        id: 21,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: u64::MAX / 8192,
                len: 4096,
            },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 3, 4),
                seq: 0,
            },
        ],
        reply_to: rig.app,
        tag: "bad",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.driver,
            job,
        },
    );
    rig.sim.run();
    assert_eq!(rig.sim.world().stats.counter_value("app.done"), 1);
    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 0);
}

#[test]
fn dcs_latency_beats_typical_software_budget() {
    // A 4 KiB SSD->NIC op completes within tens of microseconds: flash
    // latency dominates and software contributes almost nothing.
    let mut rig = setup();
    let len = 4096;
    rig.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(rig.a.ssds[0].lba_addr(0), &vec![1u8; len]);
    let t0 = rig.sim.now();
    let job = D2dJob {
        id: 31,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len,
            },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 5, 6),
                seq: 0,
            },
        ],
        reply_to: rig.app,
        tag: "latency",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.driver,
            job,
        },
    );
    rig.sim.run();
    let elapsed = rig.sim.now() - t0;
    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 1);
    assert!(
        elapsed > time::us(14),
        "must include flash latency: {elapsed}"
    );
    assert!(elapsed < time::us(40), "DCS path should be lean: {elapsed}");
}

#[test]
fn many_pipelined_commands_complete_in_order() {
    let mut rig = setup();
    let len = 16 * 1024;
    for i in 0..40u64 {
        rig.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(rig.a.ssds[0].lba_addr(i * 8), &vec![i as u8; len]);
    }
    let flow = TcpFlow::example(1, 2, 60_000, 9100);
    for i in 0..40u64 {
        let job = D2dJob {
            id: 100 + i,
            ops: vec![
                D2dOp::SsdRead {
                    ssd: 0,
                    lba: i * 8,
                    len,
                },
                D2dOp::Process {
                    function: NdpFunction::Crc32,
                    aux: vec![],
                },
                D2dOp::NicSend {
                    flow,
                    seq: (i * len as u64) as u32,
                },
            ],
            reply_to: rig.app,
            tag: "stream",
        };
        rig.sim.kickoff(
            rig.app,
            Submit {
                to: rig.a.driver,
                job,
            },
        );
    }
    rig.sim.run();
    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 40);
    // Aggregate throughput bound: 40 * 16 KiB over the 10 Gbps wire.
    let floor = dcs_sim::Bandwidth::gbps(10.0).transfer_time(40 * len);
    assert!(rig.sim.now().as_nanos() >= floor);
}

#[test]
fn engine_reports_scoreboard_overhead_in_breakdowns() {
    // The Scoreboard category must be present and small (Figure 11's
    // "minimal scoreboard overhead").
    let mut rig = setup();
    rig.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(rig.a.ssds[0].lba_addr(0), &vec![9u8; 4096]);
    let job = D2dJob {
        id: 41,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len: 4096,
            },
            D2dOp::NicSend {
                flow: TcpFlow::example(1, 2, 7, 8),
                seq: 0,
            },
        ],
        reply_to: rig.app,
        tag: "breakdown",
    };
    rig.sim.kickoff(
        rig.app,
        Submit {
            to: rig.a.driver,
            job,
        },
    );
    rig.sim.run();
    assert_eq!(rig.sim.world().stats.counter_value("app.ok"), 1);
    let inbox = rig.sim.world().expect::<Inbox>();
    let bd = &inbox.0.last().expect("one result").breakdown;
    let scoreboard = bd.get(Category::Scoreboard);
    assert!(scoreboard > 0, "scoreboard overhead must be visible");
    assert!(scoreboard < time::us(2), "and minimal: {scoreboard}ns");
    assert!(
        bd.get(Category::Read) > time::us(10),
        "flash time dominates"
    );
    assert!(
        bd.get(Category::DeviceControl) < time::us(10),
        "driver software is thin"
    );
}
