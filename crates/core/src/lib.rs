//! # dcs-core — the HDC Engine, Driver, and Library (the paper's contribution)
//!
//! DCS-ctrl moves device control out of host software and into an
//! independent FPGA board, the **HDC Engine** (§III). This crate implements
//! that engine and its software interface on the simulated testbed:
//!
//! * [`resources`] — the FPGA resource model: Table III's NDP IP cores
//!   (LUTs, registers, clock, per-unit throughput, units needed for
//!   10 Gbps) and Table IV's device-controller utilization, with headroom
//!   checks.
//! * [`command`] — the 64-byte D2D command format the HDC Driver writes
//!   into the engine's host-interface queue, plus the completion-record
//!   format the engine DMA-writes back (carrying digests to the
//!   application).
//! * [`scoreboard`] — §III-B: splits each D2D command into device commands,
//!   tracks their `wait → ready → issue → done` lifecycle, enforces
//!   dependencies, and delivers completions in request order (§IV-C).
//! * [`buffers`] — the 1 GB on-board DDR3 chunked into 64 KiB blocks
//!   (§IV-C) used for intermediate buffers and packet receive buffers.
//! * [`ndp_unit`] — §III-D: banks of near-device processing units with
//!   Table III throughput; the computation itself is the real
//!   [`dcs_ndp`] code.
//! * [`engine`] — the HDC Engine component: host interface, standard NVMe
//!   and NIC controllers (real queues in FPGA BRAM, doorbells over PCIe
//!   P2P), packet-gathering logic, interrupt generator.
//! * [`driver`] — the HDC Driver: ioctl + metadata costs on the host CPU,
//!   command submission, completion interrupts. Exposes the same
//!   [`D2dJob`](dcs_host::D2dJob) interface as the baseline executors.
//! * [`lib_api`] — the HDC Library: `sendfile`-like helpers over
//!   file/socket descriptors with permission checks (§IV-A).
//! * [`node`] — wiring: a DCS-ctrl node and two-node testbeds.

pub mod buffers;
pub mod command;
pub mod driver;
pub mod engine;
pub mod lib_api;
pub mod ndp_unit;
pub mod node;
pub mod resources;
pub mod scoreboard;

pub use buffers::ChunkAllocator;
pub use command::{CompletionRecord, D2dCommand, DevOpCode};
pub use driver::HdcDriver;
pub use engine::{EngineConfig, HdcEngine, RegisterConnection};
pub use lib_api::{FileDesc, HdcLibrary, SocketDesc};
pub use ndp_unit::{NdpBank, NdpUnitSpec};
pub use node::{build_dcs_node, build_dcs_pair, DcsNode, DcsNodeBuilder};
pub use resources::{table3_cores, FpgaBudget, IpCore, ResourceReport, TABLE4_ENGINE};
pub use scoreboard::{CmdState, DevCmd, Scoreboard, SlotRef};
