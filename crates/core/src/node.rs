//! Wiring: a complete DCS-ctrl node (Figure 9) and two-node testbeds
//! (Figure 10).
//!
//! A DCS node carries the same host CPU, SSDs, and NIC as a baseline node,
//! plus the HDC Engine on its own PCIe slot; the engine owns dedicated
//! device queue pairs (qid 2 on the SSDs, the NIC's rings in BRAM), and
//! the HDC Driver on the host submits [`D2dJob`](dcs_host::D2dJob)s.

use dcs_host::costs::KernelCosts;
use dcs_host::cpu::CpuPool;
use dcs_nic::{install_nic, install_wire, NicConfig, NicHandle, WireConfig};
use dcs_nvme::{install_nvme, NvmeConfig, NvmeHandle};
use dcs_pcie::{AddrRange, MmioRouting, PcieConfig, PcieFabric, PhysAddr, PhysMemory, PortId};
use dcs_sim::{ComponentId, Simulator};

use crate::driver::{DriverLayout, HdcDriver};
use crate::engine::{EngineConfig, HdcEngine};

/// Declarative description of a DCS-ctrl node.
#[derive(Clone, Debug)]
pub struct DcsNodeBuilder {
    /// Node name (prefixes components; keys CPU stats).
    pub name: String,
    /// Host CPU cores.
    pub cores: usize,
    /// Kernel cost model for the HDC Driver's (small) software footprint.
    pub costs: KernelCosts,
    /// One config per SSD.
    pub ssds: Vec<NvmeConfig>,
    /// NIC parameters.
    pub nic: NicConfig,
    /// Engine parameters.
    pub engine: EngineConfig,
}

impl DcsNodeBuilder {
    /// A default node matching the paper's testbed: 6 cores, one Intel
    /// 750-like SSD, 10 GbE NIC, full NDP bank.
    pub fn new(name: &str) -> Self {
        DcsNodeBuilder {
            name: name.to_string(),
            cores: 6,
            costs: KernelCosts::default(),
            ssds: vec![NvmeConfig::default()],
            nic: NicConfig::default(),
            engine: EngineConfig::default(),
        }
    }
}

/// A fully wired DCS-ctrl node.
#[derive(Debug, Clone)]
pub struct DcsNode {
    /// Node name.
    pub name: String,
    /// Host CPU pool.
    pub cpu: ComponentId,
    /// Core count.
    pub cores: usize,
    /// Node PCIe fabric.
    pub fabric: ComponentId,
    /// Host DRAM.
    pub dram: AddrRange,
    /// Mounted SSDs.
    pub ssds: Vec<NvmeHandle>,
    /// The NIC.
    pub nic: NicHandle,
    /// The HDC Engine.
    pub engine: ComponentId,
    /// Engine DDR3 region (intermediate buffers).
    pub engine_ddr: AddrRange,
    /// The HDC Driver — submit [`D2dJob`](dcs_host::D2dJob)s here.
    pub driver: ComponentId,
    free_base: PhysAddr,
    free_len: u64,
}

impl DcsNode {
    /// Bump-allocates a page-aligned workload buffer from node DRAM.
    ///
    /// # Panics
    ///
    /// Panics when node DRAM is exhausted.
    pub fn alloc(&mut self, len: u64) -> PhysAddr {
        let len = len.div_ceil(4096) * 4096;
        assert!(len <= self.free_len, "node {} DRAM exhausted", self.name);
        let addr = self.free_base;
        self.free_base = self.free_base + len;
        self.free_len -= len;
        addr
    }
}

/// Builds a DCS node against an already-reserved NIC id / wire.
pub fn build_dcs_node(
    sim: &mut Simulator,
    builder: &DcsNodeBuilder,
    nic_id: ComponentId,
    wire: ComponentId,
) -> DcsNode {
    let name = &builder.name;
    let ports = 2 + builder.ssds.len() + 1 /* engine */ + 1;
    let fabric = sim.add(
        &format!("{name}-pcie"),
        PcieFabric::new(PcieConfig {
            ports,
            ..PcieConfig::default()
        }),
    );
    let cpu = sim.add(&format!("{name}-cpu"), CpuPool::new(name, builder.cores));
    let dram = sim.world_mut().expect_mut::<PhysMemory>().alloc_region(
        &format!("{name}-dram"),
        2 << 30,
        PortId::ROOT,
    );

    let mut next_port = 1u16;
    let mut port = || {
        let p = PortId(next_port);
        next_port += 1;
        p
    };

    // Devices.
    let ssds: Vec<NvmeHandle> = builder
        .ssds
        .iter()
        .enumerate()
        .map(|(i, cfg)| install_nvme(sim, fabric, cfg.clone(), &format!("{name}-ssd{i}"), port()))
        .collect();
    let nic = install_nic(
        sim,
        nic_id,
        fabric,
        wire,
        builder.nic.clone(),
        &format!("{name}-nic"),
        port(),
    );

    // HDC Engine: BAR (BRAM window) + DDR3 on its own slot.
    let engine_port = port();
    let (engine_bar, engine_ddr) = {
        let mem = sim.world_mut().expect_mut::<PhysMemory>();
        let bar = mem.alloc_region(&format!("{name}-hdc-bar"), 8 << 20, engine_port);
        let ddr = mem.alloc_region(&format!("{name}-hdc-ddr"), 1 << 30, engine_port);
        (bar, ddr)
    };
    let engine_id = sim.reserve(&format!("{name}-hdc-engine"));
    let engine = HdcEngine::new(
        builder.engine.clone(),
        fabric,
        engine_bar,
        engine_ddr,
        ssds.clone(),
        nic.clone(),
    );
    let cmd_queue = engine.cmd_queue_addr();
    let aux_base = engine.aux_base();
    sim.install(engine_id, engine);
    sim.world_mut()
        .expect_mut::<MmioRouting>()
        .claim(engine_bar, engine_id);

    // HDC Driver: completion ring + MSI + aux staging in host DRAM.
    let mut dram_off = 0u64;
    let completion_ring = dram.start;
    dram_off += 256 * 64;
    let msi_addr = dram.start + dram_off;
    dram_off += 4096;
    let aux_staging = dram.start + dram_off;
    dram_off += 64 * 64;
    let layout = DriverLayout {
        completion_ring,
        completion_depth: 256,
        msi_addr,
        aux_staging,
    };
    let driver_id = sim.reserve(&format!("{name}-hdc-driver"));
    let (driver, init) = HdcDriver::new(
        cpu,
        fabric,
        engine_id,
        cmd_queue,
        aux_base,
        layout,
        builder.costs.clone(),
    );
    sim.install(driver_id, driver);
    sim.world_mut()
        .expect_mut::<MmioRouting>()
        .claim(AddrRange::new(msi_addr, 0x100), driver_id);
    sim.kickoff(engine_id, init);

    let free_base = dram.start + dram_off;
    let free_len = dram.len - dram_off;
    DcsNode {
        name: name.clone(),
        cpu,
        cores: builder.cores,
        fabric,
        dram,
        ssds,
        nic,
        engine: engine_id,
        engine_ddr,
        driver: driver_id,
        free_base,
        free_len,
    }
}

/// Builds two DCS nodes joined by a wire.
///
/// Installs `PhysMemory` / `MmioRouting` into the world if absent.
pub fn build_dcs_pair(
    sim: &mut Simulator,
    a: &DcsNodeBuilder,
    b: &DcsNodeBuilder,
    wire_cfg: WireConfig,
) -> (DcsNode, DcsNode) {
    if sim.world().get::<PhysMemory>().is_none() {
        sim.world_mut().insert(PhysMemory::new());
    }
    if sim.world().get::<MmioRouting>().is_none() {
        sim.world_mut().insert(MmioRouting::new());
    }
    let nic_a = sim.reserve(&format!("{}-nic", a.name));
    let nic_b = sim.reserve(&format!("{}-nic", b.name));
    let wire = install_wire(sim, wire_cfg, nic_a, nic_b);
    let node_a = build_dcs_node(sim, a, nic_a, wire);
    let node_b = build_dcs_node(sim, b, nic_b, wire);
    (node_a, node_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcs_pair_builds_and_settles() {
        let mut sim = Simulator::new(11);
        let (a, b) = build_dcs_pair(
            &mut sim,
            &DcsNodeBuilder::new("alpha"),
            &DcsNodeBuilder::new("beta"),
            WireConfig::default(),
        );
        assert_eq!(a.ssds.len(), 1);
        assert_ne!(a.engine, b.engine);
        // Initialization (queue attach, NIC config, recv-buffer posting)
        // must drain without panics.
        sim.run();
        assert!(sim.is_idle());
    }
}
