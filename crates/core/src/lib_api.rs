//! The HDC Library (§IV-A): `sendfile`-like helpers over file and socket
//! descriptors.
//!
//! Applications do not build D2D commands by hand; they call
//! "Linux's-sendfile-like APIs" on descriptors they already own. The
//! library checks descriptor permissions before building the job —
//! "unpermitted storage or network devices cannot be involved in direct
//! inter-device communications" — and maps file offsets to block addresses
//! the way the driver would via the VFS.

use dcs_host::job::{D2dJob, D2dOp};
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_nvme::LBA_SIZE;
use dcs_sim::ComponentId;

/// Access modes a descriptor was opened with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Permissions {
    /// Descriptor may be read.
    pub read: bool,
    /// Descriptor may be written.
    pub write: bool,
}

impl Permissions {
    /// Read-only.
    pub const RO: Permissions = Permissions {
        read: true,
        write: false,
    };
    /// Read-write.
    pub const RW: Permissions = Permissions {
        read: true,
        write: true,
    };
    /// Write-only.
    pub const WO: Permissions = Permissions {
        read: false,
        write: true,
    };
}

/// A file descriptor: a contiguous extent on one SSD (the model's stand-in
/// for an inode whose block mapping the VFS resolved).
#[derive(Clone, Copy, Debug)]
pub struct FileDesc {
    /// SSD index the file lives on.
    pub ssd: usize,
    /// First logical block of the extent.
    pub base_lba: u64,
    /// File length in bytes.
    pub len: u64,
    /// Open mode.
    pub perms: Permissions,
}

impl FileDesc {
    /// Maps a byte offset to its logical block.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not block-aligned (direct I/O requires it).
    pub fn lba_at(&self, offset: u64) -> u64 {
        assert!(
            offset.is_multiple_of(LBA_SIZE),
            "direct I/O offsets must be 4 KiB-aligned"
        );
        self.base_lba + offset / LBA_SIZE
    }
}

/// A connected socket descriptor.
#[derive(Clone, Copy, Debug)]
pub struct SocketDesc {
    /// The established connection's flow (local side transmits on this).
    pub flow: TcpFlow,
    /// Next transmit sequence number.
    pub seq: u32,
    /// Open mode.
    pub perms: Permissions,
}

/// Errors the library returns before anything reaches the hardware.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApiError {
    /// The file descriptor lacks the required mode.
    FilePermission,
    /// The socket descriptor lacks the required mode.
    SocketPermission,
    /// The requested range exceeds the file.
    OutOfRange,
    /// Length must be a whole number of blocks for direct device I/O.
    Unaligned,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ApiError::FilePermission => "file descriptor not opened for this access",
            ApiError::SocketPermission => "socket descriptor not opened for this access",
            ApiError::OutOfRange => "range exceeds file length",
            ApiError::Unaligned => "length must be a multiple of the 4 KiB block size",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ApiError {}

/// Builds [`D2dJob`]s from descriptors. Stateless; owns only an id
/// counter so jobs are uniquely identified.
#[derive(Debug, Default)]
pub struct HdcLibrary {
    next_id: u64,
}

impl HdcLibrary {
    /// A fresh library handle.
    pub fn new() -> Self {
        HdcLibrary { next_id: 1 }
    }

    fn id(&mut self) -> u64 {
        let i = self.next_id;
        self.next_id += 1;
        i
    }

    /// `hdc_sendfile(out_sock, in_file, offset, len)` — transmit a file
    /// range without intermediate processing.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError`] on permission or range violations.
    pub fn sendfile(
        &mut self,
        file: &FileDesc,
        socket: &SocketDesc,
        offset: u64,
        len: usize,
        reply_to: ComponentId,
        tag: &'static str,
    ) -> Result<D2dJob, ApiError> {
        self.sendfile_processed(file, socket, offset, len, None, reply_to, tag)
    }

    /// `hdc_sendfile` with intermediate processing (e.g. MD5 for object
    /// integrity, AES for encryption at flight).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError`] on permission or range violations.
    #[allow(clippy::too_many_arguments)]
    pub fn sendfile_processed(
        &mut self,
        file: &FileDesc,
        socket: &SocketDesc,
        offset: u64,
        len: usize,
        processing: Option<(NdpFunction, Vec<u8>)>,
        reply_to: ComponentId,
        tag: &'static str,
    ) -> Result<D2dJob, ApiError> {
        if !file.perms.read {
            return Err(ApiError::FilePermission);
        }
        if !socket.perms.write {
            return Err(ApiError::SocketPermission);
        }
        if offset + len as u64 > file.len.div_ceil(LBA_SIZE) * LBA_SIZE {
            return Err(ApiError::OutOfRange);
        }
        if !len.is_multiple_of(LBA_SIZE as usize) {
            return Err(ApiError::Unaligned);
        }
        let mut ops = vec![D2dOp::SsdRead {
            ssd: file.ssd,
            lba: file.lba_at(offset),
            len,
        }];
        if let Some((function, aux)) = processing {
            ops.push(D2dOp::Process { function, aux });
        }
        ops.push(D2dOp::NicSend {
            flow: socket.flow,
            seq: socket.seq,
        });
        Ok(D2dJob {
            id: self.id(),
            ops,
            reply_to,
            tag,
        })
    }

    /// `hdc_recvfile(in_sock, out_file, offset, len)` — receive into a
    /// file, with optional intermediate processing (e.g. HDFS's CRC32
    /// integrity check before the block hits flash).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError`] on permission or range violations.
    #[allow(clippy::too_many_arguments)]
    pub fn recvfile_processed(
        &mut self,
        socket: &SocketDesc,
        file: &FileDesc,
        offset: u64,
        len: usize,
        processing: Option<(NdpFunction, Vec<u8>)>,
        reply_to: ComponentId,
        tag: &'static str,
    ) -> Result<D2dJob, ApiError> {
        if !socket.perms.read {
            return Err(ApiError::SocketPermission);
        }
        if !file.perms.write {
            return Err(ApiError::FilePermission);
        }
        if offset + len as u64 > file.len.div_ceil(LBA_SIZE) * LBA_SIZE {
            return Err(ApiError::OutOfRange);
        }
        let mut ops = vec![D2dOp::NicRecv {
            flow: socket.flow,
            len,
        }];
        if let Some((function, aux)) = processing {
            ops.push(D2dOp::Process { function, aux });
        }
        ops.push(D2dOp::SsdWrite {
            ssd: file.ssd,
            lba: file.lba_at(offset),
        });
        Ok(D2dJob {
            id: self.id(),
            ops,
            reply_to,
            tag,
        })
    }

    /// Receive-and-check without storing (e.g. a verification pass):
    /// `NIC recv → digest`.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::SocketPermission`] if the socket cannot read.
    pub fn recv_digest(
        &mut self,
        socket: &SocketDesc,
        len: usize,
        function: NdpFunction,
        reply_to: ComponentId,
        tag: &'static str,
    ) -> Result<D2dJob, ApiError> {
        if !socket.perms.read {
            return Err(ApiError::SocketPermission);
        }
        Ok(D2dJob {
            id: self.id(),
            ops: vec![
                D2dOp::NicRecv {
                    flow: socket.flow,
                    len,
                },
                D2dOp::Process {
                    function,
                    aux: vec![],
                },
            ],
            reply_to,
            tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(perms: Permissions) -> FileDesc {
        FileDesc {
            ssd: 0,
            base_lba: 100,
            len: 1 << 20,
            perms,
        }
    }
    fn socket(perms: Permissions) -> SocketDesc {
        SocketDesc {
            flow: TcpFlow::example(1, 2, 40000, 8080),
            seq: 7,
            perms,
        }
    }

    #[test]
    fn sendfile_builds_read_send_pipeline() {
        let mut lib = HdcLibrary::new();
        let job = lib
            .sendfile(
                &file(Permissions::RO),
                &socket(Permissions::RW),
                8192,
                4096,
                ComponentId::INVALID,
                "t",
            )
            .unwrap();
        assert_eq!(job.ops.len(), 2);
        match &job.ops[0] {
            D2dOp::SsdRead { lba, len, .. } => {
                assert_eq!(*lba, 102);
                assert_eq!(*len, 4096);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(job.ops[1], D2dOp::NicSend { seq: 7, .. }));
    }

    #[test]
    fn processing_is_inserted_between_devices() {
        let mut lib = HdcLibrary::new();
        let job = lib
            .sendfile_processed(
                &file(Permissions::RO),
                &socket(Permissions::RW),
                0,
                4096,
                Some((NdpFunction::Md5, vec![])),
                ComponentId::INVALID,
                "t",
            )
            .unwrap();
        assert_eq!(job.ops.len(), 3);
        assert!(matches!(
            job.ops[1],
            D2dOp::Process {
                function: NdpFunction::Md5,
                ..
            }
        ));
    }

    #[test]
    fn permissions_are_enforced() {
        let mut lib = HdcLibrary::new();
        assert_eq!(
            lib.sendfile(
                &file(Permissions::WO),
                &socket(Permissions::RW),
                0,
                4096,
                ComponentId::INVALID,
                "t"
            )
            .unwrap_err(),
            ApiError::FilePermission
        );
        assert_eq!(
            lib.sendfile(
                &file(Permissions::RO),
                &socket(Permissions::RO),
                0,
                4096,
                ComponentId::INVALID,
                "t"
            )
            .unwrap_err(),
            ApiError::SocketPermission
        );
        assert_eq!(
            lib.recvfile_processed(
                &socket(Permissions::WO),
                &file(Permissions::RW),
                0,
                4096,
                None,
                ComponentId::INVALID,
                "t"
            )
            .unwrap_err(),
            ApiError::SocketPermission
        );
    }

    #[test]
    fn range_and_alignment_checks() {
        let mut lib = HdcLibrary::new();
        assert_eq!(
            lib.sendfile(
                &file(Permissions::RO),
                &socket(Permissions::RW),
                1 << 20,
                4096,
                ComponentId::INVALID,
                "t"
            )
            .unwrap_err(),
            ApiError::OutOfRange
        );
        assert_eq!(
            lib.sendfile(
                &file(Permissions::RO),
                &socket(Permissions::RW),
                0,
                100,
                ComponentId::INVALID,
                "t"
            )
            .unwrap_err(),
            ApiError::Unaligned
        );
    }

    #[test]
    fn job_ids_are_unique() {
        let mut lib = HdcLibrary::new();
        let a = lib
            .sendfile(
                &file(Permissions::RO),
                &socket(Permissions::RW),
                0,
                4096,
                ComponentId::INVALID,
                "t",
            )
            .unwrap();
        let b = lib
            .sendfile(
                &file(Permissions::RO),
                &socket(Permissions::RW),
                0,
                4096,
                ComponentId::INVALID,
                "t",
            )
            .unwrap();
        assert_ne!(a.id, b.id);
    }

    #[test]
    #[should_panic(expected = "4 KiB-aligned")]
    fn lba_mapping_requires_alignment() {
        let f = file(Permissions::RO);
        let _ = f.lba_at(100);
    }
}
