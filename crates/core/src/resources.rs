//! The FPGA resource model: Tables III and IV of the paper.
//!
//! Synthesis requires the Xilinx toolchain and a VC707 board, so the
//! resource numbers themselves are taken from the paper as a static model;
//! what this module *computes* is everything the paper derives from them:
//! units needed to sustain 10 Gbps per function, aggregate utilization of
//! an NDP configuration, and whether a configuration fits in the Virtex-7's
//! remaining headroom next to the device controllers (Table IV). The
//! `table3` / `table4` experiment regenerators print these derivations.

use dcs_ndp::NdpFunction;
use dcs_sim::Bandwidth;

/// Virtex-7 XC7VX485T capacity (the VC707's FPGA).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpgaBudget {
    /// Slice LUTs available.
    pub luts: u32,
    /// Slice registers available.
    pub registers: u32,
    /// 36 Kb block RAMs available.
    pub brams: u32,
}

/// The VC707's Virtex-7 budget (paper Table IV denominators).
pub const VIRTEX7_VC707: FpgaBudget = FpgaBudget {
    luts: 303_600,
    registers: 607_200,
    brams: 1_030,
};

/// One synthesizable IP core: a Table III row.
#[derive(Clone, Copy, Debug)]
pub struct IpCore {
    /// The processing function the core implements.
    pub function: NdpFunction,
    /// Slice LUTs per instance (at the multiplicity Table III reports).
    pub luts: u32,
    /// Slice registers per instance.
    pub registers: u32,
    /// Maximum clock frequency that passed timing, in MHz (capped at 250
    /// for realistic estimation, footnote 1).
    pub max_clock_mhz: u32,
    /// Throughput of one unit at that clock.
    pub throughput_per_unit: Bandwidth,
}

impl IpCore {
    /// Units required to reach `target` aggregate throughput.
    pub fn units_for(&self, target: Bandwidth) -> u32 {
        (target.as_gbps() / self.throughput_per_unit.as_gbps()).ceil() as u32
    }

    /// LUTs consumed by `n` units.
    ///
    /// Table III already reports the resources of the multi-instance (or
    /// fully pipelined) configuration that reaches 10 Gbps (footnote 2),
    /// so the 10 Gbps configuration costs exactly the table's numbers; we
    /// scale linearly for other unit counts.
    pub fn luts_for_units(&self, n: u32) -> u32 {
        let base_units = self.units_for(Bandwidth::gbps(10.0)).max(1);
        (self.luts as u64 * n as u64 / base_units as u64) as u32
    }

    /// Registers consumed by `n` units (same scaling as
    /// [`IpCore::luts_for_units`]).
    pub fn registers_for_units(&self, n: u32) -> u32 {
        let base_units = self.units_for(Bandwidth::gbps(10.0)).max(1);
        (self.registers as u64 * n as u64 / base_units as u64) as u32
    }
}

/// Table III: the six IP cores the paper synthesizes.
pub fn table3_cores() -> [IpCore; 6] {
    [
        IpCore {
            function: NdpFunction::Md5,
            luts: 8_970,
            registers: 4_180,
            max_clock_mhz: 130,
            throughput_per_unit: Bandwidth::mbps(970.0),
        },
        IpCore {
            function: NdpFunction::Sha1,
            luts: 10_760,
            registers: 6_848,
            max_clock_mhz: 235,
            throughput_per_unit: Bandwidth::gbps(1.10),
        },
        IpCore {
            function: NdpFunction::Sha256,
            luts: 13_090,
            registers: 7_480,
            max_clock_mhz: 130,
            throughput_per_unit: Bandwidth::mbps(800.0),
        },
        IpCore {
            function: NdpFunction::Aes256Encrypt,
            luts: 10_689,
            registers: 6_000,
            max_clock_mhz: 250,
            throughput_per_unit: Bandwidth::gbps(40.90),
        },
        IpCore {
            function: NdpFunction::Crc32,
            luts: 93,
            registers: 53,
            max_clock_mhz: 250,
            throughput_per_unit: Bandwidth::gbps(10.0),
        },
        IpCore {
            function: NdpFunction::GzipCompress,
            luts: 16_273,
            registers: 12_718,
            max_clock_mhz: 178,
            throughput_per_unit: Bandwidth::gbps(100.0),
        },
    ]
}

/// Table IV: resources consumed by the HDC Engine's device controllers and
/// infrastructure (PCIe core, host interface, scoreboard, NVMe + NIC
/// controllers).
#[derive(Clone, Copy, Debug)]
pub struct EngineUtilization {
    /// LUTs used.
    pub luts: u32,
    /// Registers used.
    pub registers: u32,
    /// BRAMs used.
    pub brams: u32,
    /// Power estimate in watts.
    pub power_watts: f64,
}

/// Table IV's measured values.
pub const TABLE4_ENGINE: EngineUtilization = EngineUtilization {
    luts: 116_344,
    registers: 91_005,
    brams: 442,
    power_watts: 5.57,
};

/// A derived resource report for a set of NDP functions at a target
/// throughput, next to the engine baseline.
#[derive(Clone, Debug)]
pub struct ResourceReport {
    /// Per-function `(core, units, luts, registers)` rows.
    pub rows: Vec<(IpCore, u32, u32, u32)>,
    /// Engine baseline (Table IV).
    pub engine: EngineUtilization,
    /// FPGA budget.
    pub budget: FpgaBudget,
}

impl ResourceReport {
    /// Builds the report for `functions` each sustaining `target`.
    pub fn for_functions(functions: &[NdpFunction], target: Bandwidth) -> ResourceReport {
        let rows = functions
            .iter()
            .filter_map(|f| lookup_core(*f))
            .map(|core| {
                let units = core.units_for(target);
                (
                    core,
                    units,
                    core.luts_for_units(units),
                    core.registers_for_units(units),
                )
            })
            .collect();
        ResourceReport {
            rows,
            engine: TABLE4_ENGINE,
            budget: VIRTEX7_VC707,
        }
    }

    /// Total LUTs of engine + NDP configuration.
    pub fn total_luts(&self) -> u32 {
        self.engine.luts + self.rows.iter().map(|(_, _, l, _)| l).sum::<u32>()
    }

    /// Total registers of engine + NDP configuration.
    pub fn total_registers(&self) -> u32 {
        self.engine.registers + self.rows.iter().map(|(_, _, _, r)| r).sum::<u32>()
    }

    /// Whether the configuration fits the FPGA (the paper's claim that
    /// "the FPGA has enough remaining resources to add NDP units").
    pub fn fits(&self) -> bool {
        self.total_luts() <= self.budget.luts && self.total_registers() <= self.budget.registers
    }

    /// LUT utilization of the full configuration, as a fraction.
    pub fn lut_utilization(&self) -> f64 {
        self.total_luts() as f64 / self.budget.luts as f64
    }
}

/// The Table III core implementing `function`, if one exists (decrypt and
/// decompress share their counterpart's hardware).
pub fn lookup_core(function: NdpFunction) -> Option<IpCore> {
    let key = match function {
        NdpFunction::Aes256Decrypt => NdpFunction::Aes256Encrypt,
        NdpFunction::GzipDecompress => NdpFunction::GzipCompress,
        other => other,
    };
    table3_cores().iter().find(|c| c.function == key).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_for_10gbps_match_paper_derivation() {
        // MD5 at 0.97 Gbps/unit needs 11 units for 10 Gbps; AES one.
        let md5 = lookup_core(NdpFunction::Md5).unwrap();
        assert_eq!(md5.units_for(Bandwidth::gbps(10.0)), 11);
        let aes = lookup_core(NdpFunction::Aes256Encrypt).unwrap();
        assert_eq!(aes.units_for(Bandwidth::gbps(10.0)), 1);
        let crc = lookup_core(NdpFunction::Crc32).unwrap();
        assert_eq!(crc.units_for(Bandwidth::gbps(10.0)), 1);
    }

    #[test]
    fn average_10g_utilization_matches_paper_claim() {
        // §III-D: "on average, only 3.28% slice LUT and 1.02% slice
        // register of a Virtex 7 FPGA are required" for 10 Gbps.
        let lut_avg: f64 = table3_cores()
            .iter()
            .map(|c| c.luts as f64 / VIRTEX7_VC707.luts as f64)
            .sum::<f64>()
            / table3_cores().len() as f64;
        assert!(
            (lut_avg * 100.0 - 3.28).abs() < 0.1,
            "lut avg {:.2}%",
            lut_avg * 100.0
        );
        let reg_avg: f64 = table3_cores()
            .iter()
            .map(|c| c.registers as f64 / VIRTEX7_VC707.registers as f64)
            .sum::<f64>()
            / table3_cores().len() as f64;
        assert!(
            (reg_avg * 100.0 - 1.02).abs() < 0.1,
            "reg avg {:.2}%",
            reg_avg * 100.0
        );
    }

    #[test]
    fn table4_percentages_match() {
        assert_eq!(TABLE4_ENGINE.luts * 100 / VIRTEX7_VC707.luts, 38);
        assert_eq!(TABLE4_ENGINE.registers * 100 / VIRTEX7_VC707.registers, 14); // 14.99 -> 15 in paper
        assert_eq!(TABLE4_ENGINE.brams * 100 / VIRTEX7_VC707.brams, 42); // 42.9 -> 43 in paper
    }

    #[test]
    fn full_ndp_configuration_fits_next_to_controllers() {
        let all = [
            NdpFunction::Md5,
            NdpFunction::Sha1,
            NdpFunction::Sha256,
            NdpFunction::Aes256Encrypt,
            NdpFunction::Crc32,
            NdpFunction::GzipCompress,
        ];
        let report = ResourceReport::for_functions(&all, Bandwidth::gbps(10.0));
        assert!(
            report.fits(),
            "total LUTs {} of {}",
            report.total_luts(),
            report.budget.luts
        );
        assert!(report.lut_utilization() < 0.65);
    }

    #[test]
    fn inverse_functions_share_hardware() {
        let enc = lookup_core(NdpFunction::Aes256Encrypt).unwrap();
        let dec = lookup_core(NdpFunction::Aes256Decrypt).unwrap();
        assert_eq!(enc.luts, dec.luts);
        assert!(lookup_core(NdpFunction::GzipDecompress).is_some());
    }
}
