//! The near-device processing bank (§III-D).
//!
//! Each Table III function gets a bank of identical units. A unit
//! processes one stream at its per-unit line rate (MD5's 0.97 Gbps, AES's
//! 40.9 Gbps, …); the bank provides aggregate throughput across concurrent
//! streams. The default configuration instantiates exactly the units
//! Table III derives for 10 Gbps aggregate per function. The computation
//! itself runs the real [`dcs_ndp`] code over the bytes in engine memory,
//! so digests and transforms are bit-exact with every other design.

use dcs_sim::DetMap;

use dcs_ndp::{NdpFunction, NdpOutput};
use dcs_sim::{Bandwidth, ServerBank, SimTime};

use crate::resources::lookup_core;

/// Configuration of one function's bank.
#[derive(Clone, Debug)]
pub struct NdpUnitSpec {
    /// The function.
    pub function: NdpFunction,
    /// Units instantiated.
    pub units: usize,
    /// Per-unit throughput.
    pub per_unit: Bandwidth,
    /// Fixed per-invocation setup time (buffer switch, state init), ns.
    pub setup_ns: u64,
}

impl NdpUnitSpec {
    /// The Table III configuration for `function` at `target` aggregate
    /// throughput.
    pub fn table3(function: NdpFunction, target: Bandwidth) -> Option<NdpUnitSpec> {
        let core = lookup_core(function)?;
        Some(NdpUnitSpec {
            function,
            units: core.units_for(target) as usize,
            per_unit: core.throughput_per_unit,
            setup_ns: 200,
        })
    }
}

/// A bank of NDP units for several functions.
///
/// Pure timing + computation logic; the engine component schedules around
/// the completion instants this returns.
pub struct NdpBank {
    banks: DetMap<NdpFunction, (NdpUnitSpec, ServerBank)>,
}

impl NdpBank {
    /// Builds banks for `functions` at 10 Gbps aggregate each (the paper's
    /// target).
    pub fn for_functions(functions: &[NdpFunction]) -> NdpBank {
        Self::with_target(functions, Bandwidth::gbps(10.0))
    }

    /// Builds banks at a custom aggregate target.
    pub fn with_target(functions: &[NdpFunction], target: Bandwidth) -> NdpBank {
        let banks = functions
            .iter()
            .filter_map(|f| {
                NdpUnitSpec::table3(*f, target).map(|spec| {
                    let bank = ServerBank::new(spec.units.max(1));
                    (*f, (spec, bank))
                })
            })
            .collect();
        NdpBank { banks }
    }

    /// Whether `function` has hardware in this configuration.
    pub fn supports(&self, function: NdpFunction) -> bool {
        let key = Self::hardware_key(function);
        self.banks.contains_key(&key)
    }

    /// Inverse transforms run on their counterpart's hardware.
    fn hardware_key(function: NdpFunction) -> NdpFunction {
        match function {
            NdpFunction::Aes256Decrypt => NdpFunction::Aes256Encrypt,
            NdpFunction::GzipDecompress => NdpFunction::GzipCompress,
            other => other,
        }
    }

    /// Schedules `len` bytes of `function` work starting no earlier than
    /// `now`; returns the completion instant.
    ///
    /// # Panics
    ///
    /// Panics if the function has no hardware — callers must check
    /// [`NdpBank::supports`] (the driver refuses such commands up front).
    pub fn schedule(&mut self, now: SimTime, function: NdpFunction, len: usize) -> SimTime {
        let key = Self::hardware_key(function);
        let (spec, bank) = self
            .banks
            .get_mut(&key)
            .unwrap_or_else(|| panic!("no NDP hardware for {function}"));
        let service = spec.setup_ns + spec.per_unit.transfer_time(len);
        bank.offer(now, service)
    }

    /// Executes the function over real bytes (call at the completion
    /// instant).
    ///
    /// # Errors
    ///
    /// Propagates [`dcs_ndp::function::NdpError`] (malformed aux,
    /// undecodable gzip stream).
    pub fn execute(
        &self,
        function: NdpFunction,
        input: &[u8],
        aux: &[u8],
    ) -> Result<NdpOutput, dcs_ndp::function::NdpError> {
        function.apply(input, aux)
    }

    /// Aggregate busy time across all banks (for utilization reporting).
    pub fn busy_time(&self) -> u64 {
        self.banks.values().map(|(_, b)| b.busy_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_sim::time;

    #[test]
    fn md5_single_stream_runs_at_per_unit_rate() {
        let mut bank = NdpBank::for_functions(&[NdpFunction::Md5]);
        let done = bank.schedule(SimTime::ZERO, NdpFunction::Md5, 4096);
        // 4 KiB at 0.97 Gbps ≈ 33.8 us (+200ns setup).
        let expect = Bandwidth::mbps(970.0).transfer_time(4096) + 200;
        assert_eq!(done.as_nanos(), expect);
    }

    #[test]
    fn concurrent_streams_use_parallel_units() {
        let mut bank = NdpBank::for_functions(&[NdpFunction::Md5]);
        // Table III: 11 units for 10 Gbps. Eleven concurrent 4 KiB streams
        // finish together; a twelfth queues.
        let mut finishes = Vec::new();
        for _ in 0..12 {
            finishes.push(bank.schedule(SimTime::ZERO, NdpFunction::Md5, 4096));
        }
        let first = finishes[0];
        assert!(finishes[..11].iter().all(|f| *f == first));
        assert!(finishes[11] > first);
    }

    #[test]
    fn aes_is_much_faster_than_md5_per_stream() {
        let mut bank = NdpBank::for_functions(&[NdpFunction::Md5, NdpFunction::Aes256Encrypt]);
        let md5 = bank.schedule(SimTime::ZERO, NdpFunction::Md5, 65536);
        let aes = bank.schedule(SimTime::ZERO, NdpFunction::Aes256Encrypt, 65536);
        assert!(aes.as_nanos() * 10 < md5.as_nanos(), "{aes} vs {md5}");
    }

    #[test]
    fn decrypt_shares_encrypt_hardware() {
        let mut bank = NdpBank::for_functions(&[NdpFunction::Aes256Encrypt]);
        assert!(bank.supports(NdpFunction::Aes256Decrypt));
        let done = bank.schedule(SimTime::ZERO, NdpFunction::Aes256Decrypt, 4096);
        assert!(done > SimTime::ZERO);
        assert!(done.as_nanos() < time::us(2));
    }

    #[test]
    #[should_panic(expected = "no NDP hardware")]
    fn unsupported_function_panics() {
        let mut bank = NdpBank::for_functions(&[NdpFunction::Md5]);
        bank.schedule(SimTime::ZERO, NdpFunction::Crc32, 100);
    }

    #[test]
    fn execute_produces_real_results() {
        let bank = NdpBank::for_functions(&[NdpFunction::Md5]);
        let out = bank.execute(NdpFunction::Md5, b"abc", &[]).unwrap();
        assert_eq!(
            dcs_ndp::to_hex(out.digest.as_ref().unwrap()),
            "900150983cd24fb0d6963f7d28e17f72"
        );
    }
}
