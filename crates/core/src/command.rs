//! The D2D command and completion wire formats.
//!
//! The HDC Driver describes a multi-device task to the engine as a single
//! 64-byte *D2D command* written into the engine's host-interface command
//! queue (§IV-C: "the 64-entry command queue (4KB)"), carrying up to four
//! device operations. Auxiliary data that does not fit (AES keys/nonces)
//! is staged into the engine's DDR3 aux buffer beforehand and referenced
//! by offset. Completions travel the other way as 64-byte records the
//! engine DMA-writes into a host ring — big enough to carry a digest back
//! to the application without an extra round trip.
//!
//! Connection endpoints are referenced by a connection id; the driver
//! registers each flow's metadata with the engine once (mirroring §IV-B's
//! retrieval of TCP connection information from the kernel).

use dcs_ndp::NdpFunction;

/// One encoded device operation inside a D2D command.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DevOpCode {
    /// Read `len` bytes from LBA `lba` of SSD `ssd`.
    SsdRead {
        /// SSD index on the engine's NVMe controller.
        ssd: u8,
        /// Starting logical block (48-bit).
        lba: u64,
        /// Bytes to read.
        len: u32,
    },
    /// Write the pipeline payload to SSD `ssd` at `lba`.
    SsdWrite {
        /// SSD index.
        ssd: u8,
        /// Starting logical block (48-bit).
        lba: u64,
    },
    /// Apply an NDP function; aux parameters live in the engine's aux
    /// buffer at `aux_off`.
    Process {
        /// Function selector.
        function: NdpFunction,
        /// Offset of aux data in the engine aux buffer.
        aux_off: u32,
        /// Aux data length.
        aux_len: u16,
    },
    /// Transmit the payload on registered connection `conn`.
    NicSend {
        /// Connection id (registered via the connection table).
        conn: u16,
        /// Starting TCP sequence number.
        seq: u32,
    },
    /// Receive `len` payload bytes of connection `conn`.
    NicRecv {
        /// Connection id.
        conn: u16,
        /// Bytes to accumulate.
        len: u32,
    },
    /// Pull `len` bytes from host DRAM (a cache-resident object) into the
    /// engine buffer as the pipeline payload — the cache-hit fast path
    /// that skips the flash controllers entirely.
    MemRead {
        /// Bytes to fetch from the host.
        len: u32,
    },
}

impl DevOpCode {
    fn kind(&self) -> u8 {
        match self {
            DevOpCode::SsdRead { .. } => 0,
            DevOpCode::SsdWrite { .. } => 1,
            DevOpCode::Process { .. } => 2,
            DevOpCode::NicSend { .. } => 3,
            DevOpCode::NicRecv { .. } => 4,
            DevOpCode::MemRead { .. } => 5,
        }
    }
}

fn function_code(f: NdpFunction) -> u8 {
    match f {
        NdpFunction::Md5 => 0,
        NdpFunction::Sha1 => 1,
        NdpFunction::Sha256 => 2,
        NdpFunction::Crc32 => 3,
        NdpFunction::Aes256Encrypt => 4,
        NdpFunction::Aes256Decrypt => 5,
        NdpFunction::GzipCompress => 6,
        NdpFunction::GzipDecompress => 7,
    }
}

fn function_from_code(c: u8) -> Option<NdpFunction> {
    Some(match c {
        0 => NdpFunction::Md5,
        1 => NdpFunction::Sha1,
        2 => NdpFunction::Sha256,
        3 => NdpFunction::Crc32,
        4 => NdpFunction::Aes256Encrypt,
        5 => NdpFunction::Aes256Decrypt,
        6 => NdpFunction::GzipCompress,
        7 => NdpFunction::GzipDecompress,
        _ => return None,
    })
}

/// Errors decoding a D2D command (the engine completes such commands with
/// an error record, as hardware command parsers do).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommandError {
    /// Magic byte mismatch.
    BadMagic,
    /// Operation count outside `1..=4`.
    BadOpCount,
    /// Unknown op or function selector.
    BadOpKind,
    /// First op does not produce a payload, or pipeline shape is invalid.
    BadPipeline,
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            CommandError::BadMagic => "bad command magic",
            CommandError::BadOpCount => "op count must be 1..=4",
            CommandError::BadOpKind => "unknown op kind or function selector",
            CommandError::BadPipeline => "pipeline must start with a producing op",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for CommandError {}

/// A decoded 64-byte D2D command.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct D2dCommand {
    /// Driver-assigned unique id (echoed in the completion record).
    pub id: u64,
    /// The device-operation pipeline (1–4 ops).
    pub ops: Vec<DevOpCode>,
}

const MAGIC: u8 = 0xD2;

impl D2dCommand {
    /// Encoded size.
    pub const SIZE: usize = 64;
    /// Maximum operations per command.
    pub const MAX_OPS: usize = 4;

    /// Encodes into the 64-byte layout.
    ///
    /// # Panics
    ///
    /// Panics if the command holds no ops or more than
    /// [`D2dCommand::MAX_OPS`].
    pub fn to_bytes(&self) -> [u8; Self::SIZE] {
        assert!(
            (1..=Self::MAX_OPS).contains(&self.ops.len()),
            "a D2D command carries 1..=4 ops"
        );
        let mut b = [0u8; Self::SIZE];
        b[0] = MAGIC;
        b[1] = self.ops.len() as u8;
        b[8..16].copy_from_slice(&self.id.to_le_bytes());
        for (i, op) in self.ops.iter().enumerate() {
            let o = 16 + i * 12;
            b[o] = op.kind();
            match *op {
                DevOpCode::SsdRead { ssd, lba, len } => {
                    b[o + 1] = ssd;
                    b[o + 2..o + 8].copy_from_slice(&lba.to_le_bytes()[..6]);
                    b[o + 8..o + 12].copy_from_slice(&len.to_le_bytes());
                }
                DevOpCode::SsdWrite { ssd, lba } => {
                    b[o + 1] = ssd;
                    b[o + 2..o + 8].copy_from_slice(&lba.to_le_bytes()[..6]);
                }
                DevOpCode::Process {
                    function,
                    aux_off,
                    aux_len,
                } => {
                    b[o + 1] = function_code(function);
                    b[o + 2..o + 6].copy_from_slice(&aux_off.to_le_bytes());
                    b[o + 6..o + 8].copy_from_slice(&aux_len.to_le_bytes());
                }
                DevOpCode::NicSend { conn, seq } => {
                    b[o + 1..o + 3].copy_from_slice(&conn.to_le_bytes());
                    b[o + 3..o + 7].copy_from_slice(&seq.to_le_bytes());
                }
                DevOpCode::NicRecv { conn, len } => {
                    b[o + 1..o + 3].copy_from_slice(&conn.to_le_bytes());
                    b[o + 3..o + 7].copy_from_slice(&len.to_le_bytes());
                }
                DevOpCode::MemRead { len } => {
                    b[o + 1..o + 5].copy_from_slice(&len.to_le_bytes());
                }
            }
        }
        b
    }

    /// Decodes and validates a 64-byte command.
    ///
    /// # Errors
    ///
    /// Returns a [`CommandError`] on malformed input.
    pub fn from_bytes(b: &[u8; Self::SIZE]) -> Result<D2dCommand, CommandError> {
        if b[0] != MAGIC {
            return Err(CommandError::BadMagic);
        }
        let n = b[1] as usize;
        if !(1..=Self::MAX_OPS).contains(&n) {
            return Err(CommandError::BadOpCount);
        }
        let id = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
        let mut ops = Vec::with_capacity(n);
        for i in 0..n {
            let o = 16 + i * 12;
            let mut lba_bytes = [0u8; 8];
            lba_bytes[..6].copy_from_slice(&b[o + 2..o + 8]);
            let op = match b[o] {
                0 => DevOpCode::SsdRead {
                    ssd: b[o + 1],
                    lba: u64::from_le_bytes(lba_bytes),
                    len: u32::from_le_bytes(b[o + 8..o + 12].try_into().expect("4 bytes")),
                },
                1 => DevOpCode::SsdWrite {
                    ssd: b[o + 1],
                    lba: u64::from_le_bytes(lba_bytes),
                },
                2 => DevOpCode::Process {
                    function: function_from_code(b[o + 1]).ok_or(CommandError::BadOpKind)?,
                    aux_off: u32::from_le_bytes(b[o + 2..o + 6].try_into().expect("4 bytes")),
                    aux_len: u16::from_le_bytes([b[o + 6], b[o + 7]]),
                },
                3 => DevOpCode::NicSend {
                    conn: u16::from_le_bytes([b[o + 1], b[o + 2]]),
                    seq: u32::from_le_bytes(b[o + 3..o + 7].try_into().expect("4 bytes")),
                },
                4 => DevOpCode::NicRecv {
                    conn: u16::from_le_bytes([b[o + 1], b[o + 2]]),
                    len: u32::from_le_bytes(b[o + 3..o + 7].try_into().expect("4 bytes")),
                },
                5 => DevOpCode::MemRead {
                    len: u32::from_le_bytes(b[o + 1..o + 5].try_into().expect("4 bytes")),
                },
                _ => return Err(CommandError::BadOpKind),
            };
            ops.push(op);
        }
        // The first op must produce the pipeline payload.
        if !matches!(
            ops[0],
            DevOpCode::SsdRead { .. } | DevOpCode::NicRecv { .. } | DevOpCode::MemRead { .. }
        ) {
            return Err(CommandError::BadPipeline);
        }
        Ok(D2dCommand { id, ops })
    }
}

/// The 64-byte completion record the engine DMA-writes into the host
/// completion ring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompletionRecord {
    /// Id of the completed D2D command.
    pub id: u64,
    /// Success flag.
    pub ok: bool,
    /// Phase tag (the ring works like an NVMe CQ).
    pub phase: bool,
    /// Payload length at pipeline exit.
    pub payload_len: u32,
    /// Digest from the last digest-type NDP op (≤ 32 bytes).
    pub digest: Vec<u8>,
}

impl CompletionRecord {
    /// Encoded size.
    pub const SIZE: usize = 64;

    /// FNV-1a over every byte except the CRC field itself (bytes 4..8).
    /// The record crosses the fabric as a completion TLP; the consumer
    /// uses this to tell a corrupted record from a well-formed one.
    fn crc(b: &[u8; Self::SIZE]) -> u32 {
        let mut h: u32 = 0x811C_9DC5;
        for (i, &x) in b.iter().enumerate() {
            if (4..8).contains(&i) {
                continue;
            }
            h ^= u32::from(x);
            h = h.wrapping_mul(0x0100_0193);
        }
        h
    }

    /// Encodes into the 64-byte layout, stamping the CRC into bytes 4..8.
    ///
    /// # Panics
    ///
    /// Panics if the digest exceeds 32 bytes.
    pub fn to_bytes(&self) -> [u8; Self::SIZE] {
        assert!(self.digest.len() <= 32, "digest exceeds the record's field");
        let mut b = [0u8; Self::SIZE];
        b[0] = MAGIC;
        b[1] = (self.ok as u8) | ((self.phase as u8) << 1);
        b[2] = self.digest.len() as u8;
        b[8..16].copy_from_slice(&self.id.to_le_bytes());
        b[16..20].copy_from_slice(&self.payload_len.to_le_bytes());
        b[32..32 + self.digest.len()].copy_from_slice(&self.digest);
        let crc = Self::crc(&b);
        b[4..8].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Whether the serialized bytes pass the CRC. A record whose phase tag
    /// matched but whose CRC does not is a corrupted completion entry: the
    /// consumer must discard the slot, not trust its fields.
    pub fn verify(b: &[u8; Self::SIZE]) -> bool {
        u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")) == Self::crc(b)
    }

    /// Decodes a 64-byte record; `None` when the slot has not been written
    /// with the expected phase (ring-consumption protocol).
    pub fn from_bytes(b: &[u8; Self::SIZE], expected_phase: bool) -> Option<CompletionRecord> {
        if b[0] != MAGIC {
            return None;
        }
        let phase = b[1] & 0b10 != 0;
        if phase != expected_phase {
            return None;
        }
        let digest_len = b[2] as usize;
        Some(CompletionRecord {
            id: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            ok: b[1] & 1 == 1,
            phase,
            payload_len: u32::from_le_bytes(b[16..20].try_into().expect("4 bytes")),
            digest: b[32..32 + digest_len.min(32)].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip_all_op_kinds() {
        let cmd = D2dCommand {
            id: 0xDEAD_BEEF_CAFE,
            ops: vec![
                DevOpCode::SsdRead {
                    ssd: 1,
                    lba: 0x12_3456_789A,
                    len: 65536,
                },
                DevOpCode::Process {
                    function: NdpFunction::Aes256Encrypt,
                    aux_off: 4096,
                    aux_len: 48,
                },
                DevOpCode::NicSend {
                    conn: 7,
                    seq: 0xAABB_CCDD,
                },
            ],
        };
        let decoded = D2dCommand::from_bytes(&cmd.to_bytes()).unwrap();
        assert_eq!(decoded, cmd);
    }

    #[test]
    fn recv_pipeline_roundtrip() {
        let cmd = D2dCommand {
            id: 1,
            ops: vec![
                DevOpCode::NicRecv {
                    conn: 3,
                    len: 1 << 20,
                },
                DevOpCode::Process {
                    function: NdpFunction::Crc32,
                    aux_off: 0,
                    aux_len: 0,
                },
                DevOpCode::SsdWrite { ssd: 0, lba: 42 },
            ],
        };
        assert_eq!(D2dCommand::from_bytes(&cmd.to_bytes()).unwrap(), cmd);
    }

    #[test]
    fn memread_pipeline_roundtrip() {
        // The cache-hit fast path: host-DRAM fetch straight to the wire.
        let cmd = D2dCommand {
            id: 3,
            ops: vec![
                DevOpCode::MemRead { len: 128 * 1024 },
                DevOpCode::NicSend {
                    conn: 9,
                    seq: 0x0102_0304,
                },
            ],
        };
        assert_eq!(D2dCommand::from_bytes(&cmd.to_bytes()).unwrap(), cmd);
    }

    #[test]
    fn decode_rejects_malformed() {
        let good = D2dCommand {
            id: 1,
            ops: vec![DevOpCode::SsdRead {
                ssd: 0,
                lba: 0,
                len: 4096,
            }],
        }
        .to_bytes();

        let mut bad = good;
        bad[0] = 0;
        assert_eq!(D2dCommand::from_bytes(&bad), Err(CommandError::BadMagic));

        let mut bad = good;
        bad[1] = 0;
        assert_eq!(D2dCommand::from_bytes(&bad), Err(CommandError::BadOpCount));
        bad[1] = 5;
        assert_eq!(D2dCommand::from_bytes(&bad), Err(CommandError::BadOpCount));

        let mut bad = good;
        bad[16] = 99;
        assert_eq!(D2dCommand::from_bytes(&bad), Err(CommandError::BadOpKind));

        // A pipeline starting with a consuming op is invalid.
        let bad_pipeline = D2dCommand {
            id: 1,
            ops: vec![DevOpCode::NicSend { conn: 0, seq: 0 }],
        }
        .to_bytes();
        assert_eq!(
            D2dCommand::from_bytes(&bad_pipeline),
            Err(CommandError::BadPipeline)
        );
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn encode_rejects_empty() {
        let _ = D2dCommand { id: 0, ops: vec![] }.to_bytes();
    }

    #[test]
    fn completion_roundtrip_with_digest_and_phase() {
        for phase in [false, true] {
            let rec = CompletionRecord {
                id: 99,
                ok: true,
                phase,
                payload_len: 4096,
                digest: (0..16u8).collect(),
            };
            let b = rec.to_bytes();
            assert_eq!(CompletionRecord::from_bytes(&b, phase), Some(rec.clone()));
            assert_eq!(CompletionRecord::from_bytes(&b, !phase), None);
        }
    }

    #[test]
    fn completion_crc_detects_any_single_bit_flip() {
        let rec = CompletionRecord {
            id: 0x0123_4567_89AB_CDEF,
            ok: true,
            phase: true,
            payload_len: 65536,
            digest: vec![7; 32],
        };
        let good = rec.to_bytes();
        assert!(CompletionRecord::verify(&good));
        for byte in 0..CompletionRecord::SIZE {
            for bit in 0..8 {
                let mut bad = good;
                bad[byte] ^= 1 << bit;
                assert!(
                    !CompletionRecord::verify(&bad),
                    "byte {byte} bit {bit} escaped"
                );
            }
        }
    }

    #[test]
    fn unwritten_slot_reads_as_none() {
        let zeros = [0u8; 64];
        assert_eq!(CompletionRecord::from_bytes(&zeros, true), None);
        assert_eq!(CompletionRecord::from_bytes(&zeros, false), None);
    }

    #[test]
    fn lba_48bit_roundtrip() {
        let cmd = D2dCommand {
            id: 2,
            ops: vec![DevOpCode::SsdRead {
                ssd: 0,
                lba: (1 << 48) - 1,
                len: 4096,
            }],
        };
        assert_eq!(D2dCommand::from_bytes(&cmd.to_bytes()).unwrap(), cmd);
    }
}
