//! The HDC Engine scoreboard (§III-B, Figure 6).
//!
//! After the host interface parses a D2D command, the scoreboard splits it
//! into per-device commands, stores them in entries holding device,
//! direction, source/destination and state, and drives each through the
//! `wait → ready → issue → done` lifecycle: an entry becomes ready when
//! its pipeline predecessor completes, is issued when its target
//! controller has capacity, and the whole command completes when all its
//! entries are done. Completions are *delivered in request order* (§IV-C),
//! so a finished command waits behind earlier unfinished ones.
//!
//! This module is pure logic — the engine component wires it to simulated
//! time — which keeps the paper's scheduling rules directly testable.

use dcs_ndp::NdpFunction;
use dcs_pcie::PhysAddr;

/// A device command a scoreboard entry tracks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DevCmd {
    /// NVMe read into an engine buffer.
    NvmeRead {
        /// SSD index.
        ssd: usize,
        /// Starting logical block.
        lba: u64,
        /// Bytes to read.
        len: usize,
        /// Destination buffer (engine DDR3).
        buf: PhysAddr,
    },
    /// NVMe write from an engine buffer.
    NvmeWrite {
        /// SSD index.
        ssd: usize,
        /// Starting logical block.
        lba: u64,
        /// Bytes to write (set when the pipeline reaches this op).
        len: usize,
        /// Source buffer.
        buf: PhysAddr,
    },
    /// NDP processing over an engine buffer.
    Ndp {
        /// Function to run.
        function: NdpFunction,
        /// Aux parameters (already fetched from the aux buffer).
        aux: Vec<u8>,
        /// Data buffer.
        buf: PhysAddr,
        /// Data length (set when the pipeline reaches this op).
        len: usize,
    },
    /// NIC transmit from an engine buffer.
    NicSend {
        /// Registered connection id.
        conn: u16,
        /// Starting sequence number.
        seq: u32,
        /// Source buffer.
        buf: PhysAddr,
        /// Bytes to send (set when the pipeline reaches this op).
        len: usize,
    },
    /// NIC receive into an engine buffer (packet gathering included).
    NicRecv {
        /// Registered connection id.
        conn: u16,
        /// Bytes to accumulate.
        len: usize,
        /// Destination buffer.
        buf: PhysAddr,
    },
    /// DMA `len` bytes from host DRAM (cache-resident object) into an
    /// engine buffer — the cache-hit fast path.
    HostRead {
        /// Bytes to fetch.
        len: usize,
        /// Destination buffer (engine DDR3).
        buf: PhysAddr,
    },
}

impl DevCmd {
    /// The controller class that executes this command.
    pub fn controller(&self) -> ControllerClass {
        match self {
            DevCmd::NvmeRead { ssd, .. } | DevCmd::NvmeWrite { ssd, .. } => {
                ControllerClass::Nvme(*ssd)
            }
            DevCmd::Ndp { .. } => ControllerClass::Ndp,
            DevCmd::NicSend { .. } | DevCmd::NicRecv { .. } => ControllerClass::Nic,
            DevCmd::HostRead { .. } => ControllerClass::Dma,
        }
    }

    /// The buffer the command operates on.
    pub fn buf(&self) -> PhysAddr {
        match self {
            DevCmd::NvmeRead { buf, .. }
            | DevCmd::NvmeWrite { buf, .. }
            | DevCmd::Ndp { buf, .. }
            | DevCmd::NicSend { buf, .. }
            | DevCmd::NicRecv { buf, .. }
            | DevCmd::HostRead { buf, .. } => *buf,
        }
    }

    /// Current data length of the command.
    pub fn len(&self) -> usize {
        match self {
            DevCmd::NvmeRead { len, .. }
            | DevCmd::NvmeWrite { len, .. }
            | DevCmd::Ndp { len, .. }
            | DevCmd::NicSend { len, .. }
            | DevCmd::NicRecv { len, .. }
            | DevCmd::HostRead { len, .. } => *len,
        }
    }

    /// True when the command carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sets the data length (payload propagation between pipeline stages).
    pub fn set_len(&mut self, new_len: usize) {
        match self {
            DevCmd::NvmeRead { len, .. }
            | DevCmd::NvmeWrite { len, .. }
            | DevCmd::Ndp { len, .. }
            | DevCmd::NicSend { len, .. }
            | DevCmd::NicRecv { len, .. }
            | DevCmd::HostRead { len, .. } => *len = new_len,
        }
    }
}

/// The controller a command is issued to (availability is tracked per
/// class).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ControllerClass {
    /// The NVMe controller for SSD `n`.
    Nvme(usize),
    /// The NDP unit bank.
    Ndp,
    /// The NIC controller.
    Nic,
    /// The engine's host-DMA path (cache-hit fetches from host DRAM).
    Dma,
}

/// Lifecycle of a scoreboard entry (Figure 6's `state` column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmdState {
    /// Dependencies unmet.
    Wait,
    /// Dependencies met; awaiting controller capacity.
    Ready,
    /// Issued to its controller.
    Issued,
    /// Completed.
    Done,
    /// Completed with error (poisons the rest of the pipeline).
    Failed,
}

/// Addresses one entry: command slot + op index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SlotRef {
    /// Index of the D2D command slot.
    pub slot: usize,
    /// Index of the device command within the slot.
    pub op: usize,
}

struct OpEntry {
    cmd: DevCmd,
    state: CmdState,
}

struct CmdEntry {
    id: u64,
    ops: Vec<OpEntry>,
    /// Admission order, for in-order completion delivery.
    seq: u64,
    delivered: bool,
}

impl CmdEntry {
    fn finished(&self) -> bool {
        self.ops
            .iter()
            .all(|o| matches!(o.state, CmdState::Done | CmdState::Failed))
        // A failed op causes the remaining Wait entries to be marked
        // Failed on the spot, so "all Done/Failed" is the right test.
    }

    fn failed(&self) -> bool {
        self.ops.iter().any(|o| o.state == CmdState::Failed)
    }
}

/// The scoreboard: up to `capacity` in-flight D2D commands.
pub struct Scoreboard {
    capacity: usize,
    slots: Vec<Option<CmdEntry>>,
    next_seq: u64,
    /// Next admission seq to deliver (in-order completion).
    next_deliver: u64,
}

impl Scoreboard {
    /// A scoreboard with `capacity` command slots (the prototype's host
    /// interface has 64, §IV-C).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "scoreboard needs at least one slot");
        Scoreboard {
            capacity,
            slots: (0..capacity).map(|_| None).collect(),
            next_seq: 0,
            next_deliver: 0,
        }
    }

    /// In-flight command count.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether another command can be admitted.
    pub fn has_room(&self) -> bool {
        self.occupancy() < self.capacity
    }

    /// Admits a split D2D command; the first op becomes `Ready`, the rest
    /// `Wait`. Returns the slot index, or `None` when full (the driver
    /// backs off, like any full hardware queue).
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn admit(&mut self, id: u64, ops: Vec<DevCmd>) -> Option<usize> {
        assert!(!ops.is_empty(), "a command must carry at least one op");
        let slot = self.slots.iter().position(|s| s.is_none())?;
        let entries = ops
            .into_iter()
            .enumerate()
            .map(|(i, cmd)| OpEntry {
                cmd,
                state: if i == 0 {
                    CmdState::Ready
                } else {
                    CmdState::Wait
                },
            })
            .collect();
        self.slots[slot] = Some(CmdEntry {
            id,
            ops: entries,
            seq: self.next_seq,
            delivered: false,
        });
        self.next_seq += 1;
        Some(slot)
    }

    /// Finds the oldest `Ready` entry whose controller `can_issue` and
    /// marks it `Issued`, returning its reference and a clone of the
    /// command. Call repeatedly until `None` to drain the ready set.
    pub fn issue_next(
        &mut self,
        mut can_issue: impl FnMut(ControllerClass) -> bool,
    ) -> Option<(SlotRef, DevCmd)> {
        // Oldest-first across commands (admission seq), then op order.
        let mut candidates: Vec<(u64, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (e.seq, i)))
            .collect();
        candidates.sort_unstable();
        for (_, slot) in candidates {
            let entry = self.slots[slot].as_mut().expect("candidate exists");
            for (op_idx, op) in entry.ops.iter_mut().enumerate() {
                if op.state == CmdState::Ready && can_issue(op.cmd.controller()) {
                    op.state = CmdState::Issued;
                    return Some((SlotRef { slot, op: op_idx }, op.cmd.clone()));
                }
            }
        }
        None
    }

    /// Marks an issued entry done. `out_len` propagates the payload length
    /// to the next pipeline stage (transforms change it), whose state
    /// moves `Wait → Ready`.
    ///
    /// # Panics
    ///
    /// Panics if the entry was not issued.
    pub fn mark_done(&mut self, at: SlotRef, out_len: usize) {
        let entry = self.slots[at.slot].as_mut().expect("live slot");
        let op = &mut entry.ops[at.op];
        assert_eq!(op.state, CmdState::Issued, "mark_done on non-issued entry");
        op.state = CmdState::Done;
        if let Some(next) = entry.ops.get_mut(at.op + 1) {
            debug_assert_eq!(next.state, CmdState::Wait);
            next.cmd.set_len(out_len);
            next.state = CmdState::Ready;
        }
    }

    /// Marks an issued entry failed; remaining waiting ops of the command
    /// fail immediately (the pipeline is poisoned).
    pub fn mark_failed(&mut self, at: SlotRef) {
        let entry = self.slots[at.slot].as_mut().expect("live slot");
        assert_eq!(
            entry.ops[at.op].state,
            CmdState::Issued,
            "mark_failed on non-issued entry"
        );
        entry.ops[at.op].state = CmdState::Failed;
        for op in &mut entry.ops[at.op + 1..] {
            op.state = CmdState::Failed;
        }
    }

    /// Points this entry's op and every later op of the same command at a
    /// new buffer (used when a transform outgrows the original allocation).
    pub fn rebase_buffers(&mut self, at: SlotRef, new_buf: PhysAddr) {
        let entry = self.slots[at.slot].as_mut().expect("live slot");
        for op in &mut entry.ops[at.op..] {
            match &mut op.cmd {
                DevCmd::NvmeRead { buf, .. }
                | DevCmd::NvmeWrite { buf, .. }
                | DevCmd::Ndp { buf, .. }
                | DevCmd::NicSend { buf, .. }
                | DevCmd::NicRecv { buf, .. }
                | DevCmd::HostRead { buf, .. } => *buf = new_buf,
            }
        }
    }

    /// Whether `at` refers to a live, currently-issued entry. Stale
    /// references — a straggler completion for an op the fault watchdog
    /// already failed, or a duplicate device interrupt — return `false`
    /// instead of panicking downstream.
    pub fn is_issued(&self, at: SlotRef) -> bool {
        self.slots[at.slot].as_ref().is_some_and(|e| {
            e.ops
                .get(at.op)
                .is_some_and(|o| o.state == CmdState::Issued)
        })
    }

    /// Immutable view of an entry's command.
    pub fn op(&self, at: SlotRef) -> &DevCmd {
        &self.slots[at.slot].as_ref().expect("live slot").ops[at.op].cmd
    }

    /// The D2D command id occupying a slot.
    pub fn id_of(&self, slot: usize) -> u64 {
        self.slots[slot].as_ref().expect("live slot").id
    }

    /// Pops completions that may be *delivered*: commands fully finished
    /// AND preceded only by already-delivered commands (in-order delivery,
    /// §IV-C). Returns `(id, ok, final_len)` triples and frees the slots.
    pub fn pop_deliverable(&mut self) -> Vec<(u64, bool, usize)> {
        let mut out = Vec::new();
        loop {
            let next_seq = self.next_deliver;
            let Some(slot) = self
                .slots
                .iter()
                .position(|s| s.as_ref().is_some_and(|e| e.seq == next_seq))
            else {
                break;
            };
            let finished = self.slots[slot].as_ref().expect("present").finished();
            if !finished {
                break;
            }
            let entry = self.slots[slot].take().expect("present");
            debug_assert!(!entry.delivered);
            let ok = !entry.failed();
            let final_len = entry.ops.last().expect("non-empty").cmd.len();
            out.push((entry.id, ok, final_len));
            self.next_deliver += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(len: usize) -> DevCmd {
        DevCmd::NvmeRead {
            ssd: 0,
            lba: 0,
            len,
            buf: PhysAddr(0x1000),
        }
    }
    fn ndp() -> DevCmd {
        DevCmd::Ndp {
            function: NdpFunction::Md5,
            aux: vec![],
            buf: PhysAddr(0x1000),
            len: 0,
        }
    }
    fn send() -> DevCmd {
        DevCmd::NicSend {
            conn: 1,
            seq: 0,
            buf: PhysAddr(0x1000),
            len: 0,
        }
    }

    #[test]
    fn pipeline_issues_in_dependency_order() {
        let mut sb = Scoreboard::new(4);
        sb.admit(10, vec![read(4096), ndp(), send()]).unwrap();
        // Only the read is issuable.
        let (r0, cmd0) = sb.issue_next(|_| true).unwrap();
        assert!(matches!(cmd0, DevCmd::NvmeRead { .. }));
        assert!(sb.issue_next(|_| true).is_none(), "dependents must wait");
        // Read done: NDP becomes ready with the propagated length.
        sb.mark_done(r0, 4096);
        let (r1, cmd1) = sb.issue_next(|_| true).unwrap();
        match cmd1 {
            DevCmd::Ndp { len, .. } => assert_eq!(len, 4096),
            other => panic!("expected ndp, got {other:?}"),
        }
        sb.mark_done(r1, 4096);
        let (r2, cmd2) = sb.issue_next(|_| true).unwrap();
        assert!(matches!(cmd2, DevCmd::NicSend { len: 4096, .. }));
        sb.mark_done(r2, 4096);
        assert_eq!(sb.pop_deliverable(), vec![(10, true, 4096)]);
        assert_eq!(sb.occupancy(), 0);
    }

    #[test]
    fn controller_backpressure_defers_issue() {
        let mut sb = Scoreboard::new(4);
        sb.admit(1, vec![read(4096)]).unwrap();
        assert!(sb.issue_next(|c| c != ControllerClass::Nvme(0)).is_none());
        assert!(sb.issue_next(|_| true).is_some());
    }

    #[test]
    fn independent_commands_issue_concurrently_oldest_first() {
        let mut sb = Scoreboard::new(4);
        sb.admit(1, vec![read(1)]).unwrap();
        sb.admit(2, vec![read(2)]).unwrap();
        let (a, cmd_a) = sb.issue_next(|_| true).unwrap();
        let (b, cmd_b) = sb.issue_next(|_| true).unwrap();
        assert_eq!(cmd_a.len(), 1, "oldest first");
        assert_eq!(cmd_b.len(), 2);
        // Finish out of order: 2 before 1.
        sb.mark_done(b, 2);
        assert!(
            sb.pop_deliverable().is_empty(),
            "in-order delivery holds 2 behind 1"
        );
        sb.mark_done(a, 1);
        assert_eq!(sb.pop_deliverable(), vec![(1, true, 1), (2, true, 2)]);
    }

    #[test]
    fn capacity_limits_admission() {
        let mut sb = Scoreboard::new(2);
        assert!(sb.admit(1, vec![read(1)]).is_some());
        assert!(sb.admit(2, vec![read(1)]).is_some());
        assert!(!sb.has_room());
        assert!(sb.admit(3, vec![read(1)]).is_none());
        // Draining frees a slot.
        let (r, _) = sb.issue_next(|_| true).unwrap();
        sb.mark_done(r, 1);
        sb.pop_deliverable();
        assert!(sb.admit(3, vec![read(1)]).is_some());
    }

    #[test]
    fn failure_poisons_pipeline_and_reports_not_ok() {
        let mut sb = Scoreboard::new(4);
        sb.admit(9, vec![read(4096), ndp(), send()]).unwrap();
        let (r0, _) = sb.issue_next(|_| true).unwrap();
        sb.mark_failed(r0);
        // Nothing further issues from the poisoned command.
        assert!(sb.issue_next(|_| true).is_none());
        let delivered = sb.pop_deliverable();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].0, 9);
        assert!(!delivered[0].1);
    }

    #[test]
    #[should_panic(expected = "non-issued")]
    fn mark_done_requires_issued_state() {
        let mut sb = Scoreboard::new(2);
        sb.admit(1, vec![read(1), ndp()]).unwrap();
        sb.mark_done(SlotRef { slot: 0, op: 1 }, 0);
    }

    #[test]
    fn lengths_propagate_through_transforms() {
        let mut sb = Scoreboard::new(2);
        sb.admit(
            5,
            vec![
                read(100_000),
                DevCmd::Ndp {
                    function: NdpFunction::GzipCompress,
                    aux: vec![],
                    buf: PhysAddr(0x1000),
                    len: 0,
                },
                send(),
            ],
        )
        .unwrap();
        let (r0, _) = sb.issue_next(|_| true).unwrap();
        sb.mark_done(r0, 100_000);
        let (r1, _) = sb.issue_next(|_| true).unwrap();
        // Compression shrank the payload.
        sb.mark_done(r1, 12_345);
        let (_r2, cmd2) = sb.issue_next(|_| true).unwrap();
        assert_eq!(cmd2.len(), 12_345);
    }

    #[test]
    fn many_commands_deliver_in_admission_order() {
        let mut sb = Scoreboard::new(64);
        for i in 0..50u64 {
            sb.admit(i, vec![read(i as usize + 1)]).unwrap();
        }
        let mut refs = Vec::new();
        while let Some((r, _)) = sb.issue_next(|_| true) {
            refs.push(r);
        }
        // Complete in reverse.
        for r in refs.iter().rev() {
            let len = sb.op(*r).len();
            sb.mark_done(*r, len);
        }
        let delivered = sb.pop_deliverable();
        let ids: Vec<u64> = delivered.iter().map(|(id, _, _)| *id).collect();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }
}
