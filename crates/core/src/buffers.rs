//! The engine's on-board DDR3 intermediate buffers.
//!
//! §IV-C: "we utilize on-board 1GB DDR3 DRAMs as intermediate buffers for
//! intermediate processing and packet recv buffers for NIC devices. To
//! easily manage large memory space, the intermediate buffers and packet
//! recv buffers are chunked into multiple fixed-size blocks (64KB)."
//!
//! [`ChunkAllocator`] implements that scheme: a bitmap of 64 KiB chunks
//! with contiguous-run allocation (device DMA wants physically contiguous
//! targets) and explicit free.

use dcs_pcie::{AddrRange, PhysAddr};

/// Chunk size, per the paper.
pub const CHUNK_SIZE: u64 = 64 * 1024;

/// A fixed-size-chunk allocator over one memory region.
#[derive(Debug, Clone)]
pub struct ChunkAllocator {
    region: AddrRange,
    used: Vec<bool>,
    allocated_chunks: usize,
    /// Rotating search start, so freed space is reused round-robin.
    cursor: usize,
}

impl ChunkAllocator {
    /// An allocator over `region` (truncated down to whole chunks).
    ///
    /// # Panics
    ///
    /// Panics if `region` holds less than one chunk.
    pub fn new(region: AddrRange) -> Self {
        let chunks = (region.len / CHUNK_SIZE) as usize;
        assert!(chunks > 0, "region smaller than one chunk");
        ChunkAllocator {
            region,
            used: vec![false; chunks],
            allocated_chunks: 0,
            cursor: 0,
        }
    }

    /// Total chunks managed.
    pub fn capacity(&self) -> usize {
        self.used.len()
    }

    /// Chunks currently allocated.
    pub fn allocated(&self) -> usize {
        self.allocated_chunks
    }

    /// Allocates a physically contiguous buffer of at least `len` bytes.
    /// Returns the range, or `None` when no contiguous run is free
    /// (callers surface this as a device-busy condition).
    pub fn alloc(&mut self, len: usize) -> Option<AddrRange> {
        let need = (len as u64).div_ceil(CHUNK_SIZE).max(1) as usize;
        if need > self.used.len() {
            return None;
        }
        let n = self.used.len();
        // First-fit from the cursor, wrapping once.
        let mut start = self.cursor;
        let mut scanned = 0;
        while scanned < n {
            // A run must not wrap the region boundary.
            if start + need > n {
                scanned += n - start;
                start = 0;
                continue;
            }
            let run_used = (start..start + need).position(|i| self.used[i]);
            match run_used {
                None => {
                    for slot in &mut self.used[start..start + need] {
                        *slot = true;
                    }
                    self.allocated_chunks += need;
                    self.cursor = (start + need) % n;
                    let addr = self.region.start + start as u64 * CHUNK_SIZE;
                    return Some(AddrRange::new(addr, need as u64 * CHUNK_SIZE));
                }
                Some(p) => {
                    let skip = p + 1;
                    scanned += skip;
                    start += skip;
                    if start >= n {
                        start = 0;
                    }
                }
            }
        }
        None
    }

    /// Frees a previously allocated range.
    ///
    /// # Panics
    ///
    /// Panics on double-free or on a range this allocator never produced.
    pub fn free(&mut self, range: AddrRange) {
        assert!(
            range.start >= self.region.start && range.end().as_u64() <= self.region.end().as_u64(),
            "range {range} outside the managed region"
        );
        let start_off = range.start - self.region.start;
        assert!(
            start_off.is_multiple_of(CHUNK_SIZE) && range.len.is_multiple_of(CHUNK_SIZE),
            "not chunk-aligned"
        );
        let first = (start_off / CHUNK_SIZE) as usize;
        let count = (range.len / CHUNK_SIZE) as usize;
        for i in first..first + count {
            assert!(self.used[i], "double free of chunk {i}");
            self.used[i] = false;
        }
        self.allocated_chunks -= count;
    }

    /// The managed region.
    pub fn region(&self) -> AddrRange {
        self.region
    }
}

/// Convenience: address of a chunk-aligned sub-buffer for tests.
pub fn chunk_at(region: AddrRange, index: u64) -> PhysAddr {
    region.start + index * CHUNK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> AddrRange {
        AddrRange::new(PhysAddr(0x1000_0000), 16 * CHUNK_SIZE)
    }

    #[test]
    fn alloc_rounds_up_to_chunks() {
        let mut a = ChunkAllocator::new(region());
        let r = a.alloc(1).unwrap();
        assert_eq!(r.len, CHUNK_SIZE);
        let r2 = a.alloc(CHUNK_SIZE as usize + 1).unwrap();
        assert_eq!(r2.len, 2 * CHUNK_SIZE);
        assert_eq!(a.allocated(), 3);
        assert!(!r.overlaps(r2));
    }

    #[test]
    fn exhaustion_returns_none_and_free_recovers() {
        let mut a = ChunkAllocator::new(region());
        let big = a.alloc((16 * CHUNK_SIZE) as usize).unwrap();
        assert!(a.alloc(1).is_none());
        a.free(big);
        assert_eq!(a.allocated(), 0);
        assert!(a.alloc((16 * CHUNK_SIZE) as usize).is_some());
    }

    #[test]
    fn fragmentation_prevents_large_contiguous_runs() {
        let mut a = ChunkAllocator::new(region());
        let rs: Vec<_> = (0..16).map(|_| a.alloc(1).unwrap()).collect();
        // Free every other chunk: 8 free chunks, but max run = 1.
        for r in rs.iter().step_by(2) {
            a.free(*r);
        }
        assert!(a.alloc((2 * CHUNK_SIZE) as usize).is_none());
        assert!(a.alloc(1).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = ChunkAllocator::new(region());
        let r = a.alloc(1).unwrap();
        a.free(r);
        a.free(r);
    }

    #[test]
    #[should_panic(expected = "outside the managed region")]
    fn foreign_range_panics() {
        let mut a = ChunkAllocator::new(region());
        a.free(AddrRange::new(PhysAddr(0), CHUNK_SIZE));
    }

    #[test]
    fn allocations_never_overlap_under_churn() {
        let mut a = ChunkAllocator::new(region());
        let mut live: Vec<AddrRange> = Vec::new();
        let mut seed = 0x2545F491_4F6CDD1Du64;
        for _ in 0..1000 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            if seed.is_multiple_of(3) && !live.is_empty() {
                let idx = (seed as usize / 7) % live.len();
                a.free(live.swap_remove(idx));
            } else if let Some(r) = a.alloc(((seed % 3 + 1) * CHUNK_SIZE) as usize) {
                for l in &live {
                    assert!(!l.overlaps(r), "{l} overlaps {r}");
                }
                live.push(r);
            }
        }
    }
}
