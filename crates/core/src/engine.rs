//! The HDC Engine component (§III, Figure 5; implementation §IV-C).
//!
//! One FPGA board on a PCIe slot that orchestrates every device involved
//! in a D2D command:
//!
//! * **Host interface** — a 64-entry command queue fed by 64-byte MMIO
//!   writes from the HDC Driver, a command parser, and an interrupt
//!   generator that DMA-writes completion records into a host ring and
//!   raises MSIs.
//! * **Scoreboard** — splits commands into device commands and schedules
//!   them (the [`Scoreboard`](crate::scoreboard) logic bound to simulated
//!   time).
//! * **Standard NVMe controller** — per-SSD submission/completion rings in
//!   FPGA BRAM; builds real NVMe commands with PRP lists pointing at the
//!   engine's DDR3, rings drive doorbells over PCIe P2P, consumes
//!   completions.
//! * **Standard NIC controller** — send/recv rings in BRAM, TCP/IP header
//!   generation from the registered connection table, LSO descriptors,
//!   packet-gathering logic that strips headers from received frames and
//!   lands payloads contiguously in DDR3 (§IV-C).
//! * **NDP units** — Table III banks executing real processing over the
//!   bytes in DDR3.
//!
//! The engine runs *no host software*: its only CPU interaction is the
//! driver's command write and the completion interrupt.

use std::collections::VecDeque;

use dcs_ndp::NdpFunction;
use dcs_nic::headers::{build_frame, build_template, parse_frame, ACK_MAGIC};
use dcs_nic::{
    ConfigureNic, ControlFrame, NicHandle, RecvDescriptor, RecvWriteback, RingWriter,
    SendDescriptor, TcpFlow,
};
use dcs_nvme::{
    AttachQueuePair, CompletionQueueReader, NvmeCommand, NvmeHandle, NvmeOpcode, PrpList,
    SubmissionQueueWriter, LBA_SIZE,
};
use dcs_pcie::{
    aer, AddrRange, DmaComplete, DmaRequest, MmioWrite, Msi, MsiDelivery, PhysAddr, PhysMemory,
    TlpClass,
};
use dcs_sim::{
    fault, Bandwidth, Breakdown, Category, Component, ComponentId, Ctx, DetMap, FifoServer, Msg,
    SimTime,
};

use crate::buffers::{ChunkAllocator, CHUNK_SIZE};
use crate::command::{CompletionRecord, D2dCommand, DevOpCode};
use crate::ndp_unit::NdpBank;
use crate::scoreboard::{ControllerClass, DevCmd, Scoreboard, SlotRef};

/// Engine hardware parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Host-interface command parse latency, ns.
    pub cmd_parse_ns: u64,
    /// Scoreboard bookkeeping latency per issue/update, ns.
    pub scoreboard_step_ns: u64,
    /// Completion-record assembly latency, ns.
    pub completion_write_ns: u64,
    /// NDP functions instantiated (Table III banks).
    pub ndp_functions: Vec<NdpFunction>,
    /// Aggregate throughput target per NDP function (Table III sizes the
    /// banks for 10 Gbps; raise it to instantiate more units).
    pub ndp_target_gbps: f64,
    /// Issue limit per SSD controller.
    pub nvme_outstanding: usize,
    /// Issue limit for the NIC controller's transmit path.
    pub nic_outstanding: usize,
    /// DDR3 packet-gather copy bandwidth.
    pub gather_bandwidth: Bandwidth,
    /// Scoreboard command slots.
    pub scoreboard_slots: usize,
    /// Receive frame buffers posted to the NIC (2 KiB each, in DDR3).
    pub recv_buffers: u16,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cmd_parse_ns: 120,
            scoreboard_step_ns: 60,
            completion_write_ns: 100,
            ndp_functions: vec![
                NdpFunction::Md5,
                NdpFunction::Sha1,
                NdpFunction::Sha256,
                NdpFunction::Crc32,
                NdpFunction::Aes256Encrypt,
                NdpFunction::GzipCompress,
            ],
            ndp_target_gbps: 10.0,
            nvme_outstanding: 16,
            nic_outstanding: 8,
            gather_bandwidth: Bandwidth::gbps(51.2),
            scoreboard_slots: 64,
            recv_buffers: 1024,
        }
    }
}

/// Driver → engine: where to deliver completions.
#[derive(Debug, Clone, Copy)]
pub struct EngineInit {
    /// Completion ring base in host DRAM.
    pub completion_ring: PhysAddr,
    /// Ring depth in 64-byte records.
    pub completion_depth: u16,
    /// Driver MSI target.
    pub msi_addr: PhysAddr,
    /// Driver MSI vector.
    pub msi_vector: u32,
}

/// Driver → engine: register an established connection under an id
/// (§IV-B: the driver retrieves flow metadata from the kernel).
#[derive(Debug, Clone, Copy)]
pub struct RegisterConnection {
    /// Connection id referenced by D2D commands.
    pub conn: u16,
    /// The flow's 5-tuple + MACs.
    pub flow: TcpFlow,
    /// Initial transmit sequence number.
    pub seq: u32,
}

/// Out-of-band instrumentation: the engine's internal latency split for a
/// completed command (read by the driver to assemble Figure 11-style
/// breakdowns; not part of the architectural interface).
#[derive(Debug, Clone)]
pub struct EngineBreakdown {
    /// The D2D command id.
    pub id: u64,
    /// Per-category engine-side latency.
    pub breakdown: Breakdown,
}

/// Internal messages.
#[derive(Debug)]
struct AdmitCmd {
    cmd: D2dCommand,
}
#[derive(Debug)]
struct NdpDone {
    token: u64,
}
#[derive(Debug)]
struct HostReadDone {
    token: u64,
}
#[derive(Debug)]
struct GatherDone {
    frames: Vec<(u16, Vec<u8>)>,
}
/// Fault-recovery sweep timer (armed only while a `FaultPlan` is active).
#[derive(Debug)]
struct WatchdogTick;

/// An in-flight completion-record DMA, kept until the fabric confirms it
/// landed clean (a poisoned record is rewritten once from BRAM staging).
#[derive(Clone, Copy)]
struct CompDma {
    id: u64,
    src: PhysAddr,
    dst: PhysAddr,
    attempts: u8,
}

/// Per-command context.
struct CmdCtx {
    /// Buffers owned by the command (freed at completion).
    buffers: Vec<AddrRange>,
    /// Digest from the last digest NDP op.
    digest: Option<Vec<u8>>,
    /// Engine-side latency split.
    breakdown: Breakdown,
    /// Fixed scoreboard/interface overhead accumulated.
    scoreboard_ns: u64,
}

/// One outstanding NVMe sub-command (an MDTS chunk), with enough geometry
/// to resubmit it after a retryable media error.
#[derive(Clone, Copy)]
struct NvmeOp {
    at: SlotRef,
    issued_at: SimTime,
    is_write: bool,
    /// Absolute starting LBA of this chunk.
    lba: u64,
    /// Chunk length in bytes.
    len: usize,
    /// Chunk buffer address in DDR3.
    buf: PhysAddr,
    attempts: u32,
}

/// Engine-side NVMe controller state for one SSD.
struct EngineNvme {
    handle: NvmeHandle,
    sq: SubmissionQueueWriter,
    cq: CompletionQueueReader,
    prp_scratch: PhysAddr,
    outstanding: DetMap<u16, NvmeOp>,
    next_cid: u16,
    inflight: usize,
}

/// Engine-side NIC controller state.
struct EngineNic {
    handle: NicHandle,
    send_ring: RingWriter,
    recv_ring: RingWriter,
    wb_base: PhysAddr,
    recv_bufs: PhysAddr,
    hdr_area: PhysAddr,
    hdr_slot: u64,
    wb_next: u16,
    consumed_since_repost: u16,
    /// In-flight transmit descriptors in NIC completion order; the bool
    /// marks the last descriptor of its scoreboard entry.
    tx_fifo: VecDeque<(SlotRef, SimTime, bool)>,
    inflight_tx: usize,
}

/// A pending receive expectation.
struct RecvExpectation {
    at: SlotRef,
    conn: u16,
    len: usize,
    buf: PhysAddr,
    received: usize,
    issued_at: SimTime,
    /// Last time bytes landed (fault watchdog abandons stalled receives).
    last_progress: SimTime,
}

/// A transmit tracked by the fault-recovery reliability protocol: the
/// scoreboard entry completes only once the peer acknowledged the bytes
/// (go-back-N with cumulative stream-offset acks, mirroring the host NIC
/// driver's protocol so the two interoperate).
struct EngineSend {
    conn: u16,
    seq: u32,
    buf: PhysAddr,
    len: usize,
    /// Absolute per-connection stream offset of this send's first byte.
    start_off: u64,
    attempts: u32,
    last_attempt: SimTime,
    /// All transmit descriptors completed (last-descriptor tx interrupt).
    descs_done: bool,
    /// The peer's cumulative ack covers this send.
    acked: bool,
}

/// The HDC Engine component.
pub struct HdcEngine {
    config: EngineConfig,
    fabric: ComponentId,
    /// BAR: command queue + rings live here (BRAM window).
    bar: AddrRange,
    /// On-board DDR3.
    ddr: AddrRange,
    allocator: ChunkAllocator,
    /// Aux staging area (first MiB of DDR3, outside the allocator).
    aux_base: PhysAddr,
    scoreboard: Scoreboard,
    contexts: DetMap<u64, CmdCtx>,
    /// Commands awaiting scoreboard room or buffer space.
    pending_admit: VecDeque<D2dCommand>,
    ndp: NdpBank,
    ndp_pending: DetMap<u64, (SlotRef, SimTime)>,
    /// In-flight host-DRAM fetches (cache-hit fast path), by token.
    hostread_pending: DetMap<u64, (SlotRef, SimTime)>,
    /// Outstanding NVMe sub-commands per scoreboard entry (MDTS splits).
    nvme_subops: DetMap<SlotRef, (usize, bool)>,
    nvme: Vec<EngineNvme>,
    nic: EngineNic,
    connections: DetMap<u16, (TcpFlow, u32)>,
    expectations: Vec<RecvExpectation>,
    early: DetMap<u16, VecDeque<u8>>,
    /// Fault mode: sends awaiting peer acknowledgement, by scoreboard entry.
    nic_sends: DetMap<SlotRef, EngineSend>,
    /// Fault mode: next transmit stream offset per connection.
    tx_offset: DetMap<u16, u64>,
    /// Fault mode: highest cumulative ack received per connection.
    snd_acked: DetMap<u16, u64>,
    /// Fault mode: cumulative in-order bytes accepted per connection.
    rcv_count: DetMap<u16, u64>,
    /// A `WatchdogTick` is scheduled.
    watchdog_armed: bool,
    gather_unit: FifoServer,
    init: Option<EngineInit>,
    /// Completion ring cursor + phase.
    comp_tail: u16,
    comp_phase: bool,
    /// Completion-record DMA token → in-flight record (MSI follows the DMA).
    comp_dmas: DetMap<u64, CompDma>,
    next_token: u64,
    /// MSI vector namespace: 0x40+i = SSD i CQ, 0x60 = NIC tx, 0x61 = NIC rx.
    started: bool,
}

impl HdcEngine {
    const CMD_QUEUE_OFFSET: u64 = 0x0;
    const MSI_SSD_BASE: u32 = 0x40;
    const MSI_NIC_TX: u32 = 0x60;
    const MSI_NIC_RX: u32 = 0x61;

    /// Creates the engine. The caller supplies the BAR and DDR3 regions
    /// and the device handles (see [`build_dcs_node`](crate::node)).
    pub fn new(
        config: EngineConfig,
        fabric: ComponentId,
        bar: AddrRange,
        ddr: AddrRange,
        ssds: Vec<NvmeHandle>,
        nic: NicHandle,
    ) -> Self {
        // BRAM layout inside the BAR window: per-SSD rings + NIC rings.
        let mut off = 0x1000u64;
        let nvme = ssds
            .into_iter()
            .map(|handle| {
                let sq_base = bar.start + off;
                off += 128 * NvmeCommand::SIZE as u64;
                let cq_base = bar.start + off;
                off += 128 * 16;
                let prp_scratch = bar.start + off.div_ceil(4096) * 4096;
                off = (prp_scratch - bar.start) + 128 * 4096;
                EngineNvme {
                    handle,
                    sq: SubmissionQueueWriter::new(sq_base, 128),
                    cq: CompletionQueueReader::new(cq_base, 128),
                    prp_scratch,
                    outstanding: DetMap::new(),
                    next_cid: 0,
                    inflight: 0,
                }
            })
            .collect::<Vec<_>>();

        let send_base = bar.start + off;
        off += 2048 * SendDescriptor::SIZE as u64;
        let recv_base = bar.start + off;
        off += (config.recv_buffers as u64 + 1) * RecvDescriptor::SIZE as u64;
        let wb_base = bar.start + off;
        off += (config.recv_buffers as u64 + 1) * RecvWriteback::SIZE as u64;
        let hdr_area = bar.start + off;
        off += 2048 * 64;
        assert!(off <= bar.len, "BRAM layout exceeds BAR window");

        // DDR3 layout: 1 MiB aux area, then recv frame buffers, then the
        // chunked intermediate-buffer pool.
        let aux_base = ddr.start;
        let recv_bufs = ddr.start + (1 << 20);
        let pool_start = recv_bufs + config.recv_buffers as u64 * 2048;
        let pool_start = PhysAddr(pool_start.as_u64().div_ceil(CHUNK_SIZE) * CHUNK_SIZE);
        let pool = AddrRange::new(pool_start, ddr.end() - pool_start);

        let nic_ctrl = EngineNic {
            handle: nic,
            send_ring: RingWriter::new(send_base, SendDescriptor::SIZE, 2048),
            recv_ring: RingWriter::new(recv_base, RecvDescriptor::SIZE, config.recv_buffers + 1),
            wb_base,
            recv_bufs,
            hdr_area,
            hdr_slot: 0,
            wb_next: 0,
            consumed_since_repost: 0,
            tx_fifo: VecDeque::new(),
            inflight_tx: 0,
        };

        HdcEngine {
            allocator: ChunkAllocator::new(pool),
            scoreboard: Scoreboard::new(config.scoreboard_slots),
            ndp: NdpBank::with_target(
                &config.ndp_functions,
                Bandwidth::gbps(config.ndp_target_gbps),
            ),
            config,
            fabric,
            bar,
            ddr,
            aux_base,
            contexts: DetMap::new(),
            pending_admit: VecDeque::new(),
            ndp_pending: DetMap::new(),
            hostread_pending: DetMap::new(),
            nvme_subops: DetMap::new(),
            nvme,
            nic: nic_ctrl,
            connections: DetMap::new(),
            expectations: Vec::new(),
            early: DetMap::new(),
            nic_sends: DetMap::new(),
            tx_offset: DetMap::new(),
            snd_acked: DetMap::new(),
            rcv_count: DetMap::new(),
            watchdog_armed: false,
            gather_unit: FifoServer::new(),
            init: None,
            comp_tail: 0,
            comp_phase: true,
            comp_dmas: DetMap::new(),
            next_token: 1,
            started: false,
        }
    }

    /// The engine BAR (the driver writes commands at offset 0).
    pub fn bar(&self) -> AddrRange {
        self.bar
    }

    /// Address the driver writes 64-byte D2D commands to.
    pub fn cmd_queue_addr(&self) -> PhysAddr {
        self.bar.start + Self::CMD_QUEUE_OFFSET
    }

    /// Aux-buffer base (the driver DMA-stages aux data here).
    pub fn aux_base(&self) -> PhysAddr {
        self.aux_base
    }

    /// The on-board DDR3 region (intermediate + packet buffers).
    pub fn ddr(&self) -> AddrRange {
        self.ddr
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// One-time device setup: attach queue pairs and configure the NIC
    /// (runs when the driver sends [`EngineInit`]).
    fn start_devices(&mut self, ctx: &mut Ctx<'_>) {
        assert!(!self.started, "engine initialized twice");
        self.started = true;
        for (i, ssd) in self.nvme.iter().enumerate() {
            let attach = AttachQueuePair {
                qid: 2, // the host driver owns qid 1; the engine dedicates qid 2 (§IV-B)
                sq_base: ssd.sq.base(),
                cq_base: ssd.cq.base(),
                depth: 128,
                msi_addr: self.engine_msi_addr(),
                msi_vector: Self::MSI_SSD_BASE + i as u32,
            };
            ctx.send_now(ssd.handle.device, attach);
        }
        let configure = ConfigureNic {
            send_ring_base: self.nic.send_ring.base(),
            send_ring_depth: 2048,
            recv_ring_base: self.nic.recv_ring.base(),
            recv_ring_depth: self.config.recv_buffers + 1,
            wb_ring_base: self.nic.wb_base,
            tx_msi_addr: self.engine_msi_addr() + 8,
            tx_msi_vector: Self::MSI_NIC_TX,
            rx_msi_addr: self.engine_msi_addr() + 16,
            rx_msi_vector: Self::MSI_NIC_RX,
        };
        ctx.send_now(self.nic.handle.device, configure);
        let n = self.config.recv_buffers;
        self.post_recv_buffers(ctx, n);
    }

    /// MSI window inside the BAR claimed by the engine itself (devices
    /// interrupt the engine, not the host).
    fn engine_msi_addr(&self) -> PhysAddr {
        self.bar.start + (self.bar.len - 0x100)
    }

    fn post_recv_buffers(&mut self, ctx: &mut Ctx<'_>, count: u16) {
        {
            let mem = ctx.world().expect_mut::<PhysMemory>();
            for _ in 0..count {
                let idx = self.nic.recv_ring.tail();
                let buf = self.nic.recv_bufs + idx as u64 * 2048;
                let d = RecvDescriptor {
                    buf_addr: buf,
                    buf_len: 2048,
                };
                self.nic.recv_ring.push(mem, &d.to_bytes());
            }
        }
        let tail = self.nic.recv_ring.tail();
        let db = self.nic.handle.rx_doorbell();
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            MmioWrite {
                addr: db,
                data: (tail as u32).to_le_bytes().to_vec(),
            },
        );
    }

    // ------------------------------------------------------------------
    // Command admission.
    // ------------------------------------------------------------------

    fn on_command_write(&mut self, ctx: &mut Ctx<'_>, data: &[u8]) {
        let bytes: [u8; D2dCommand::SIZE] = data.try_into().expect("command writes are 64 bytes");
        match D2dCommand::from_bytes(&bytes) {
            Ok(cmd) => {
                let parse = self.config.cmd_parse_ns;
                {
                    let now = ctx.now();
                    let obs = &mut ctx.world().obs;
                    obs.span("hdc", "cmd-parse", cmd.id, now, now + parse);
                    obs.count("hdc", "cmds.received", 1);
                }
                ctx.send_self_in(parse, AdmitCmd { cmd });
            }
            Err(e) => {
                // Parser rejects the command: error completion with the id
                // field read best-effort.
                let id = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
                ctx.world().stats.counter("hdc.cmd_parse_errors").add(1);
                let _ = e;
                self.contexts.insert(
                    id,
                    CmdCtx {
                        buffers: vec![],
                        digest: None,
                        breakdown: Breakdown::new(),
                        scoreboard_ns: self.config.cmd_parse_ns,
                    },
                );
                self.deliver_completion(ctx, id, false, 0);
            }
        }
    }

    fn try_admit(&mut self, ctx: &mut Ctx<'_>, cmd: D2dCommand) {
        self.arm_watchdog(ctx);
        if !self.scoreboard.has_room() {
            self.pending_admit.push_back(cmd);
            return;
        }
        // Allocate the pipeline buffer from the first producing op.
        let first_len = match cmd.ops[0] {
            DevOpCode::SsdRead { len, .. } => len as usize,
            DevOpCode::NicRecv { len, .. } => len as usize,
            DevOpCode::MemRead { len, .. } => len as usize,
            _ => unreachable!("validated at decode"),
        };
        // Transforms can grow the payload (gzip on incompressible data);
        // reserve half again plus a chunk.
        let reserve = first_len + first_len / 2 + CHUNK_SIZE as usize;
        let Some(buf) = self.allocator.alloc(reserve) else {
            self.pending_admit.push_back(cmd);
            return;
        };
        let mut dev_cmds = Vec::with_capacity(cmd.ops.len());
        let mut ok = true;
        for op in &cmd.ops {
            let dc = match *op {
                DevOpCode::SsdRead { ssd, lba, len } => {
                    if ssd as usize >= self.nvme.len() {
                        ok = false;
                        break;
                    }
                    DevCmd::NvmeRead {
                        ssd: ssd as usize,
                        lba,
                        len: len as usize,
                        buf: buf.start,
                    }
                }
                DevOpCode::SsdWrite { ssd, lba } => {
                    if ssd as usize >= self.nvme.len() {
                        ok = false;
                        break;
                    }
                    DevCmd::NvmeWrite {
                        ssd: ssd as usize,
                        lba,
                        len: 0,
                        buf: buf.start,
                    }
                }
                DevOpCode::Process {
                    function,
                    aux_off,
                    aux_len,
                } => {
                    if !self.ndp.supports(function) {
                        ok = false;
                        break;
                    }
                    let aux = ctx
                        .world_ref()
                        .expect::<PhysMemory>()
                        .read(self.aux_base + aux_off as u64, aux_len as usize);
                    DevCmd::Ndp {
                        function,
                        aux,
                        buf: buf.start,
                        len: 0,
                    }
                }
                DevOpCode::NicSend { conn, seq } => {
                    if !self.connections.contains_key(&conn) {
                        ok = false;
                        break;
                    }
                    DevCmd::NicSend {
                        conn,
                        seq,
                        buf: buf.start,
                        len: 0,
                    }
                }
                DevOpCode::NicRecv { conn, len } => {
                    if !self.connections.contains_key(&conn) {
                        ok = false;
                        break;
                    }
                    DevCmd::NicRecv {
                        conn,
                        len: len as usize,
                        buf: buf.start,
                    }
                }
                DevOpCode::MemRead { len } => DevCmd::HostRead {
                    len: len as usize,
                    buf: buf.start,
                },
            };
            dev_cmds.push(dc);
        }
        let id = cmd.id;
        let mut context = CmdCtx {
            buffers: vec![buf],
            digest: None,
            breakdown: Breakdown::new(),
            scoreboard_ns: self.config.cmd_parse_ns,
        };
        if !ok {
            ctx.world()
                .stats
                .counter("hdc.cmd_validation_errors")
                .add(1);
            self.contexts.insert(id, context);
            self.deliver_completion(ctx, id, false, 0);
            return;
        }
        context.scoreboard_ns += self.config.scoreboard_step_ns * dev_cmds.len() as u64;
        self.contexts.insert(id, context);
        self.scoreboard
            .admit(id, dev_cmds)
            .expect("room checked above");
        ctx.world().stats.counter("hdc.cmds_admitted").add(1);
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.mark(id, "hdc:parse+admit", now);
            obs.count("hdc", "cmds.admitted", 1);
        }
        self.pump(ctx);
    }

    // ------------------------------------------------------------------
    // Scheduling.
    // ------------------------------------------------------------------

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let nvme_room: Vec<bool> = self
                .nvme
                .iter()
                .map(|c| c.inflight < self.config.nvme_outstanding)
                .collect();
            let nic_room = self.nic.inflight_tx < self.config.nic_outstanding;
            let issued = self.scoreboard.issue_next(|class| match class {
                ControllerClass::Nvme(i) => nvme_room[i],
                ControllerClass::Nic => nic_room,
                ControllerClass::Ndp => true,
                // The host-DMA path is the same mover the gather path
                // uses; modeling it as always-issuable keeps cache hits
                // from ever queueing behind flash work.
                ControllerClass::Dma => true,
            });
            let Some((at, cmd)) = issued else { break };
            match cmd {
                DevCmd::NvmeRead { ssd, lba, len, buf } => {
                    self.issue_nvme(ctx, at, ssd, lba, len, buf, false)
                }
                DevCmd::NvmeWrite { ssd, lba, len, buf } => {
                    self.issue_nvme(ctx, at, ssd, lba, len, buf, true)
                }
                DevCmd::Ndp {
                    function, buf, len, ..
                } => {
                    let _ = buf;
                    let token = self.token();
                    let done = self.ndp.schedule(ctx.now(), function, len);
                    self.ndp_pending.insert(token, (at, ctx.now()));
                    let delay = done - ctx.now();
                    {
                        let now = ctx.now();
                        let obs = &mut ctx.world().obs;
                        obs.span("hdc", "ndp", token, now, done);
                        obs.observe("hdc", "ndp.ns", delay);
                    }
                    ctx.send_self_in(delay, NdpDone { token });
                }
                DevCmd::NicSend {
                    conn,
                    seq,
                    buf,
                    len,
                } => self.issue_nic_send(ctx, at, conn, seq, buf, len),
                DevCmd::HostRead { len, buf } => {
                    let token = self.token();
                    // The fetch crosses the fabric at the engine's DDR3
                    // copy bandwidth — the same mover the NIC gather path
                    // models.
                    let delay = self.config.gather_bandwidth.transfer_time(len).max(1);
                    self.hostread_pending.insert(token, (at, ctx.now()));
                    {
                        let now = ctx.now();
                        let done = now + delay;
                        let obs = &mut ctx.world().obs;
                        obs.span("hdc", "host-read", token, now, done);
                        obs.observe("hdc", "host_read.ns", delay);
                    }
                    // The cache bytes themselves are modeled as zeros in
                    // engine memory (the store layer accounts content by
                    // version, not by value).
                    let zeros = vec![0u8; len];
                    ctx.world().expect_mut::<PhysMemory>().write(buf, &zeros);
                    ctx.send_self_in(delay, HostReadDone { token });
                }
                DevCmd::NicRecv { conn, len, buf } => {
                    self.expectations.push(RecvExpectation {
                        at,
                        conn,
                        len,
                        buf,
                        received: 0,
                        issued_at: ctx.now(),
                        last_progress: ctx.now(),
                    });
                    self.drain_early(ctx);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_nvme(
        &mut self,
        ctx: &mut Ctx<'_>,
        at: SlotRef,
        ssd: usize,
        lba: u64,
        len: usize,
        buf: PhysAddr,
        is_write: bool,
    ) {
        // Split at the drive's max transfer size (MDTS; the PRP-list page
        // bounds one command at 2 MiB — we split at 1 MiB like Linux).
        const MDTS: usize = 1 << 20;
        let padded = len.div_ceil(LBA_SIZE as usize).max(1) * LBA_SIZE as usize;
        let chunks: Vec<(u64, usize)> = (0..padded)
            .step_by(MDTS)
            .map(|off| (off as u64, MDTS.min(padded - off)))
            .collect();
        self.nvme_subops.insert(at, (chunks.len(), false));
        let (doorbell, tail) = {
            let ctrl = &mut self.nvme[ssd];
            for (off, chunk_len) in &chunks {
                let cid = ctrl.next_cid;
                ctrl.next_cid = ctrl.next_cid.wrapping_add(1);
                ctrl.outstanding.insert(
                    cid,
                    NvmeOp {
                        at,
                        issued_at: ctx.now(),
                        is_write,
                        lba: lba + off / LBA_SIZE,
                        len: *chunk_len,
                        buf: buf + *off,
                        attempts: 0,
                    },
                );
                let list_page = ctrl.prp_scratch + (cid as u64 % 128) * 4096;
                let prps = PrpList::for_contiguous(buf + *off, *chunk_len, list_page);
                let cmd = NvmeCommand {
                    opcode: if is_write {
                        NvmeOpcode::Write
                    } else {
                        NvmeOpcode::Read
                    },
                    cid,
                    nsid: 1,
                    prp1: prps.prp1,
                    prp2: prps.prp2,
                    slba: lba + off / LBA_SIZE,
                    nlb: (chunk_len / LBA_SIZE as usize - 1) as u16,
                };
                let mem = ctx.world().expect_mut::<PhysMemory>();
                if !prps.list_entries.is_empty() {
                    mem.write(list_page, &prps.list_bytes());
                }
                ctrl.sq.push(mem, &cmd);
            }
            ctrl.inflight += 1;
            (ctrl.handle.sq_doorbell(2), ctrl.sq.tail())
        };
        // Hardware-speed doorbell: a posted PCIe P2P write, with the
        // scoreboard's bookkeeping as the only added latency.
        let fabric = self.fabric;
        ctx.send_in(
            self.config.scoreboard_step_ns,
            fabric,
            MmioWrite {
                addr: doorbell,
                data: (tail as u32).to_le_bytes().to_vec(),
            },
        );
    }

    fn issue_nic_send(
        &mut self,
        ctx: &mut Ctx<'_>,
        at: SlotRef,
        conn: u16,
        seq: u32,
        buf: PhysAddr,
        len: usize,
    ) {
        let faulty = fault::active(ctx.world_ref());
        let start_off = if faulty {
            let off = self.tx_offset.entry(conn).or_insert(0);
            let s = *off;
            *off += len as u64;
            s
        } else {
            0
        };
        if faulty {
            // Under fault injection the entry completes only once the peer
            // acknowledged the bytes; zero-length sends have nothing to ack.
            self.nic_sends.insert(
                at,
                EngineSend {
                    conn,
                    seq,
                    buf,
                    len,
                    start_off,
                    attempts: 0,
                    last_attempt: ctx.now(),
                    descs_done: false,
                    acked: len == 0,
                },
            );
        }
        self.nic.inflight_tx += 1;
        self.push_send_descs(ctx, at, conn, seq, buf, len, start_off, faulty);
    }

    /// Writes the LSO descriptor chain for one send and rings the transmit
    /// doorbell. `start_off` seeds the TCP `ack` field with the send's
    /// absolute stream offset (the reliability protocol's per-segment
    /// cursor); fault-free sends keep the seed at zero, byte-identical to
    /// the non-recovering engine. Also the retransmission path.
    #[allow(clippy::too_many_arguments)]
    fn push_send_descs(
        &mut self,
        ctx: &mut Ctx<'_>,
        at: SlotRef,
        conn: u16,
        seq: u32,
        buf: PhysAddr,
        len: usize,
        start_off: u64,
        faulty: bool,
    ) {
        let (flow, _) = *self.connections.get(&conn).expect("validated at admit");
        // Split at the NIC's LSO limit; the entry completes with its last
        // descriptor.
        const LSO_MAX: usize = 64 * 1024;
        let chunks: Vec<(u64, usize)> = if len == 0 {
            vec![(0, 0)]
        } else {
            (0..len)
                .step_by(LSO_MAX)
                .map(|off| (off as u64, LSO_MAX.min(len - off)))
                .collect()
        };
        let n = chunks.len();
        for (i, (off, chunk_len)) in chunks.into_iter().enumerate() {
            let ack = if faulty {
                (start_off as u32).wrapping_add(off as u32)
            } else {
                0
            };
            let template = build_template(&flow, seq.wrapping_add(off as u32), ack);
            let hdr_addr = self.nic.hdr_area + (self.nic.hdr_slot % 2048) * 64;
            self.nic.hdr_slot += 1;
            let desc = SendDescriptor {
                header_addr: hdr_addr,
                header_len: template.len() as u16,
                payload_addr: buf + off,
                payload_len: chunk_len as u32,
                mss: 1448,
                cookie: 0,
            };
            let mem = ctx.world().expect_mut::<PhysMemory>();
            mem.write(hdr_addr, &template);
            self.nic.send_ring.push(mem, &desc.to_bytes());
            self.nic.tx_fifo.push_back((at, ctx.now(), i == n - 1));
        }
        let tail = self.nic.send_ring.tail();
        let db = self.nic.handle.tx_doorbell();
        let fabric = self.fabric;
        ctx.send_in(
            self.config.scoreboard_step_ns,
            fabric,
            MmioWrite {
                addr: db,
                data: (tail as u32).to_le_bytes().to_vec(),
            },
        );
    }

    // ------------------------------------------------------------------
    // Completions from devices.
    // ------------------------------------------------------------------

    fn on_ssd_msi(&mut self, ctx: &mut Ctx<'_>, ssd: usize) {
        self.drain_ssd_cq(ctx, ssd);
    }

    /// Pops every pending CQ entry for one SSD. Called from the CQ MSI
    /// and from the fault watchdog (which thereby recovers completions
    /// whose interrupt was lost).
    fn drain_ssd_cq(&mut self, ctx: &mut Ctx<'_>, ssd: usize) {
        let mut entries = Vec::new();
        {
            let ctrl = &mut self.nvme[ssd];
            let mem = ctx.world_ref().expect::<PhysMemory>();
            while let Some(entry) = ctrl.cq.pop(mem) {
                ctrl.sq.update_head(entry.sq_head);
                entries.push(entry);
            }
        }
        if entries.is_empty() {
            return;
        }
        // Ring the CQ head doorbell.
        let head = self.nvme[ssd].cq.head();
        let db = self.nvme[ssd].handle.cq_doorbell(2);
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            MmioWrite {
                addr: db,
                data: (head as u32).to_le_bytes().to_vec(),
            },
        );
        for entry in entries {
            let Some(op) = self.nvme[ssd].outstanding.remove(&entry.cid) else {
                // Straggler for a sub-command the watchdog already timed
                // out — its scoreboard entry is long settled.
                ctx.world().stats.counter("hdc.stale_cqe").add(1);
                continue;
            };
            if entry.status.is_retryable() {
                if let Some(rc) = fault::recovery(ctx.world_ref()) {
                    if op.attempts < rc.nvme_retries {
                        fault::retried(ctx.world(), fault::NVME_MEDIA);
                        self.resubmit_nvme(ctx, ssd, op);
                        continue;
                    }
                }
                fault::exhausted(ctx.world(), fault::NVME_MEDIA);
                self.nvme_subop_done(ctx, ssd, &op, false);
                continue;
            }
            if entry.status.is_ok() && op.attempts > 0 {
                fault::recovered(ctx.world(), fault::NVME_MEDIA);
            }
            self.nvme_subop_done(ctx, ssd, &op, entry.status.is_ok());
        }
        self.after_progress(ctx);
    }

    /// Reissues a media-errored chunk under a fresh cid, budget permitting.
    fn resubmit_nvme(&mut self, ctx: &mut Ctx<'_>, ssd: usize, op: NvmeOp) {
        let (doorbell, tail) = {
            let ctrl = &mut self.nvme[ssd];
            let cid = ctrl.next_cid;
            ctrl.next_cid = ctrl.next_cid.wrapping_add(1);
            ctrl.outstanding.insert(
                cid,
                NvmeOp {
                    attempts: op.attempts + 1,
                    ..op
                },
            );
            let list_page = ctrl.prp_scratch + (cid as u64 % 128) * 4096;
            let prps = PrpList::for_contiguous(op.buf, op.len, list_page);
            let cmd = NvmeCommand {
                opcode: if op.is_write {
                    NvmeOpcode::Write
                } else {
                    NvmeOpcode::Read
                },
                cid,
                nsid: 1,
                prp1: prps.prp1,
                prp2: prps.prp2,
                slba: op.lba,
                nlb: (op.len / LBA_SIZE as usize - 1) as u16,
            };
            let mem = ctx.world().expect_mut::<PhysMemory>();
            if !prps.list_entries.is_empty() {
                mem.write(list_page, &prps.list_bytes());
            }
            ctrl.sq.push(mem, &cmd);
            (ctrl.handle.sq_doorbell(2), ctrl.sq.tail())
        };
        let fabric = self.fabric;
        ctx.send_in(
            self.config.scoreboard_step_ns,
            fabric,
            MmioWrite {
                addr: doorbell,
                data: (tail as u32).to_le_bytes().to_vec(),
            },
        );
    }

    /// Settles one NVMe sub-command (successful, errored, or timed out);
    /// the scoreboard entry resolves when its last sub-command settles.
    fn nvme_subop_done(&mut self, ctx: &mut Ctx<'_>, ssd: usize, op: &NvmeOp, ok: bool) {
        let Some(entry) = self.nvme_subops.get_mut(&op.at) else {
            ctx.world().stats.counter("hdc.stale_subop").add(1);
            return;
        };
        entry.0 -= 1;
        entry.1 |= !ok;
        if entry.0 > 0 {
            return;
        }
        let (_, any_failed) = self.nvme_subops.remove(&op.at).expect("present");
        self.nvme[ssd].inflight -= 1;
        let id = self.scoreboard.id_of(op.at.slot);
        let cat = if op.is_write {
            Category::Write
        } else {
            Category::Read
        };
        let dur = ctx.now() - op.issued_at;
        if let Some(c) = self.contexts.get_mut(&id) {
            c.breakdown.add(cat, dur);
            c.scoreboard_ns += self.config.scoreboard_step_ns;
        }
        if !any_failed {
            let len = self.scoreboard.op(op.at).len();
            self.scoreboard.mark_done(op.at, len);
        } else {
            self.scoreboard.mark_failed(op.at);
        }
    }

    fn on_ndp_done(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let (at, issued_at) = self.ndp_pending.remove(&token).expect("live ndp op");
        if !self.scoreboard.is_issued(at) {
            // The entry was settled by other means (fault recovery timed
            // the command out); a stale unit completion must not touch
            // whatever occupies the slot now.
            ctx.world().stats.counter("hdc.stale_ndp_done").add(1);
            return;
        }
        let (function, aux, buf, len) = match self.scoreboard.op(at) {
            DevCmd::Ndp {
                function,
                aux,
                buf,
                len,
            } => (*function, aux.clone(), *buf, *len),
            _ => {
                // A unit completion pointing at a non-NDP entry is device
                // misbehavior; fail the entry instead of crashing the
                // engine (satellite: no panics on device-originated state).
                ctx.world().stats.counter("hdc.ndp_errors").add(1);
                self.scoreboard.mark_failed(at);
                self.after_progress(ctx);
                return;
            }
        };
        let input = ctx.world_ref().expect::<PhysMemory>().read(buf, len);
        let id = self.scoreboard.id_of(at.slot);
        match self.ndp.execute(function, &input, &aux) {
            Ok(out) => {
                let mut out_len = len;
                if let Some(d) = out.digest {
                    if let Some(c) = self.contexts.get_mut(&id) {
                        c.digest = Some(d);
                    }
                }
                if let Some(data) = out.data {
                    // Transform: write the result back into the command's
                    // buffer (reserved with growth headroom at admit). If
                    // the output outgrew it — decompression can — move the
                    // pipeline to a larger allocation.
                    out_len = data.len();
                    let current = *self.contexts[&id]
                        .buffers
                        .last()
                        .expect("command owns a buffer");
                    if out_len <= current.len as usize {
                        ctx.world().expect_mut::<PhysMemory>().write(buf, &data);
                    } else {
                        let need = out_len + out_len / 2 + CHUNK_SIZE as usize;
                        let Some(new_buf) = self.allocator.alloc(need) else {
                            ctx.world().stats.counter("hdc.ndp_errors").add(1);
                            self.scoreboard.mark_failed(at);
                            self.after_progress(ctx);
                            return;
                        };
                        ctx.world()
                            .expect_mut::<PhysMemory>()
                            .write(new_buf.start, &data);
                        self.scoreboard.rebase_buffers(at, new_buf.start);
                        let context = self.contexts.get_mut(&id).expect("live command");
                        context.buffers.push(new_buf);
                        let old = context.buffers.remove(context.buffers.len() - 2);
                        self.allocator.free(old);
                    }
                }
                if let Some(c) = self.contexts.get_mut(&id) {
                    c.breakdown.add(Category::Hash, ctx.now() - issued_at);
                    c.scoreboard_ns += self.config.scoreboard_step_ns;
                }
                self.scoreboard.mark_done(at, out_len);
            }
            Err(_) => {
                ctx.world().stats.counter("hdc.ndp_errors").add(1);
                self.scoreboard.mark_failed(at);
            }
        }
        self.after_progress(ctx);
    }

    fn on_hostread_done(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let (at, issued_at) = self
            .hostread_pending
            .remove(&token)
            .expect("live host read");
        if !self.scoreboard.is_issued(at) {
            // Settled by fault recovery in the meantime; never touch the
            // slot (it may have been reassigned).
            ctx.world().stats.counter("hdc.stale_hostread_done").add(1);
            return;
        }
        let len = self.scoreboard.op(at).len();
        let id = self.scoreboard.id_of(at.slot);
        if let Some(c) = self.contexts.get_mut(&id) {
            c.breakdown.add(Category::DataCopy, ctx.now() - issued_at);
            c.scoreboard_ns += self.config.scoreboard_step_ns;
        }
        self.scoreboard.mark_done(at, len);
        self.after_progress(ctx);
    }

    fn on_nic_tx_msi(&mut self, ctx: &mut Ctx<'_>) {
        let Some((at, issued_at, last)) = self.nic.tx_fifo.pop_front() else {
            // A duplicate or late interrupt for a send the fault watchdog
            // already reclaimed.
            ctx.world().stats.counter("hdc.stale_tx_msi").add(1);
            return;
        };
        if !last {
            return;
        }
        if let Some(send) = self.nic_sends.get_mut(&at) {
            // Fault mode: completion additionally requires the peer's ack.
            if send.descs_done {
                return; // duplicate last-descriptor interrupt (retransmit)
            }
            send.descs_done = true;
            let id = self.scoreboard.id_of(at.slot);
            if let Some(c) = self.contexts.get_mut(&id) {
                c.breakdown.add(Category::Wire, ctx.now() - issued_at);
                c.scoreboard_ns += self.config.scoreboard_step_ns;
            }
            self.try_complete_nic_send(ctx, at);
            self.after_progress(ctx);
            return;
        }
        if fault::active(ctx.world_ref()) {
            // The send already completed or failed; never touch the slot
            // (it may have been reassigned).
            ctx.world().stats.counter("hdc.stale_tx_msi").add(1);
            return;
        }
        self.nic.inflight_tx -= 1;
        let id = self.scoreboard.id_of(at.slot);
        if let Some(c) = self.contexts.get_mut(&id) {
            c.breakdown.add(Category::Wire, ctx.now() - issued_at);
            c.scoreboard_ns += self.config.scoreboard_step_ns;
        }
        let len = self.scoreboard.op(at).len();
        self.scoreboard.mark_done(at, len);
        self.after_progress(ctx);
    }

    /// Completes a tracked send once both its descriptors finished and the
    /// peer's cumulative ack covers its bytes.
    fn try_complete_nic_send(&mut self, ctx: &mut Ctx<'_>, at: SlotRef) {
        let ready = self
            .nic_sends
            .get(&at)
            .is_some_and(|s| s.descs_done && s.acked);
        if !ready {
            return;
        }
        let send = self.nic_sends.remove(&at).expect("checked above");
        if send.attempts > 0 {
            fault::recovered(ctx.world(), fault::WIRE_DROP);
        }
        self.nic.inflight_tx -= 1;
        self.nic.tx_fifo.retain(|e| e.0 != at);
        let len = self.scoreboard.op(at).len();
        self.scoreboard.mark_done(at, len);
    }

    /// Abandons a tracked send after its retransmission budget ran out.
    fn fail_nic_send(&mut self, ctx: &mut Ctx<'_>, at: SlotRef) {
        if self.nic_sends.remove(&at).is_none() {
            return;
        }
        ctx.world().stats.counter("hdc.send_failures").add(1);
        self.nic.inflight_tx -= 1;
        self.nic.tx_fifo.retain(|e| e.0 != at);
        self.scoreboard.mark_failed(at);
    }

    /// Applies a peer's cumulative ack for one connection, completing every
    /// tracked send it covers.
    fn on_peer_ack(&mut self, ctx: &mut Ctx<'_>, conn: u16, ack: u32) {
        let acked = self.snd_acked.entry(conn).or_insert(0);
        *acked = (*acked).max(ack as u64);
        let acked = *acked;
        let mut covered: Vec<SlotRef> = self
            .nic_sends
            .iter_mut()
            .filter(|(_, s)| s.conn == conn && !s.acked && s.start_off + s.len as u64 <= acked)
            .map(|(at, s)| {
                s.acked = true;
                *at
            })
            .collect();
        covered.sort_unstable_by_key(|at| (at.slot, at.op));
        for at in covered {
            self.try_complete_nic_send(ctx, at);
        }
    }

    fn on_nic_rx_msi(&mut self, ctx: &mut Ctx<'_>) {
        // Packet-gathering hardware (§IV-C): scan write-backs, parse
        // headers, and queue the payload bytes for the gather copy.
        let faulty = fault::active(ctx.world_ref());
        let mut frames: Vec<(u16, Vec<u8>)> = Vec::new();
        let mut bytes = 0usize;
        let mut acks_in: Vec<(u16, u32)> = Vec::new();
        let mut ack_out: DetMap<u16, TcpFlow> = DetMap::new();
        {
            let depth = self.config.recv_buffers + 1;
            loop {
                let wb_addr =
                    self.nic.wb_base + self.nic.wb_next as u64 * RecvWriteback::SIZE as u64;
                let (raw, frame) = {
                    let mem = ctx.world_ref().expect::<PhysMemory>();
                    let raw: [u8; RecvWriteback::SIZE] = mem
                        .read(wb_addr, RecvWriteback::SIZE)
                        .try_into()
                        .expect("8 bytes");
                    let wb = RecvWriteback::from_bytes(&raw);
                    if !wb.valid {
                        break;
                    }
                    let buf = self.nic.recv_bufs + self.nic.wb_next as u64 * 2048;
                    (raw, mem.read(buf, (wb.frame_len as usize).min(2048)))
                };
                ctx.world()
                    .expect_mut::<PhysMemory>()
                    .write(wb_addr, &[0u8; 8]);
                let wb_idx = self.nic.wb_next;
                self.nic.wb_next = (self.nic.wb_next + 1) % depth;
                self.nic.consumed_since_repost += 1;
                if !RecvWriteback::verify(&raw) {
                    // A corrupted completion entry: consume the slot, drop
                    // the frame (the sender's retransmission re-delivers
                    // the bytes). Detection here *is* the recovery for the
                    // write-back corruption site.
                    ctx.world().stats.counter("hdc.rx_bad_writebacks").add(1);
                    fault::recovered(ctx.world(), fault::CPL_CORRUPT);
                    let now = ctx.now().as_nanos();
                    aer::record(
                        ctx.world(),
                        now,
                        wb_idx as u64,
                        fault::CPL_CORRUPT,
                        aer::AerKind::BadCompletionEntry,
                    );
                    continue;
                }
                let parsed = match parse_frame(&frame) {
                    Ok(p) => p,
                    Err(_) => {
                        // Checksum or framing failure (fault injection
                        // corrupts bits on the wire): drop the frame; the
                        // sender's retransmission recovers the bytes.
                        ctx.world().stats.counter("hdc.rx_bad_frames").add(1);
                        continue;
                    }
                };
                // Identify the registered connection this frame belongs to
                // (engine receives on the *destination* side of flows).
                let conn = self
                    .connections
                    .iter()
                    .filter(|(_, (f, _))| f.reversed() == parsed.flow || *f == parsed.flow)
                    .map(|(c, _)| *c)
                    .min();
                let Some(conn) = conn else {
                    ctx.world().stats.counter("hdc.rx_unknown_flow").add(1);
                    continue;
                };
                if faulty && parsed.payload_len == 0 && parsed.seq == ACK_MAGIC {
                    acks_in.push((conn, parsed.ack));
                    continue;
                }
                if faulty {
                    // Go-back-N acceptance: the frame's ack field carries
                    // the sender's absolute stream offset for these bytes.
                    let count = self.rcv_count.entry(conn).or_insert(0);
                    ack_out.insert(conn, parsed.flow.reversed());
                    if parsed.ack as u64 != *count {
                        let c = if (parsed.ack as u64) < *count {
                            "hdc.rx_duplicate_frames"
                        } else {
                            "hdc.rx_out_of_order"
                        };
                        ctx.world().stats.counter(c).add(1);
                        continue;
                    }
                    *count += parsed.payload_len as u64;
                }
                bytes += parsed.payload_len;
                frames.push((
                    conn,
                    frame[parsed.payload_offset..parsed.payload_offset + parsed.payload_len]
                        .to_vec(),
                ));
            }
        }
        if self.nic.consumed_since_repost >= self.config.recv_buffers / 2 {
            let n = self.nic.consumed_since_repost;
            self.nic.consumed_since_repost = 0;
            self.post_recv_buffers(ctx, n);
        }
        // Acknowledge the batch: one coalesced cumulative ack per flow that
        // delivered data (accepted or not — duplicates are re-acked so a
        // sender whose ack got lost stops retransmitting). Sorted: hash-map
        // order must not reach the event sequence.
        let mut ack_out: Vec<(u16, TcpFlow)> = ack_out.into_iter().collect();
        ack_out.sort_unstable_by_key(|(c, _)| *c);
        for (conn, rflow) in ack_out {
            let count = self.rcv_count.get(&conn).copied().unwrap_or(0);
            let ack_frame = build_frame(&rflow, ACK_MAGIC, count as u32, &[]);
            let nic = self.nic.handle.device;
            ctx.send_now(nic, ControlFrame { frame: ack_frame });
        }
        if !acks_in.is_empty() {
            for (conn, ack) in acks_in {
                self.on_peer_ack(ctx, conn, ack);
            }
            self.after_progress(ctx);
        }
        if frames.is_empty() {
            return;
        }
        // The gather engine copies payloads into contiguous DDR3 at its
        // copy bandwidth.
        let service = self.config.gather_bandwidth.transfer_time(bytes);
        let done = self.gather_unit.offer(ctx.now(), service);
        let delay = done - ctx.now();
        let _ = bytes;
        ctx.send_self_in(delay, GatherDone { frames });
    }

    fn on_gather_done(&mut self, ctx: &mut Ctx<'_>, frames: Vec<(u16, Vec<u8>)>) {
        for (conn, payload) in frames {
            self.early.entry(conn).or_default().extend(payload);
        }
        self.drain_early(ctx);
        self.after_progress(ctx);
    }

    fn drain_early(&mut self, ctx: &mut Ctx<'_>) {
        let mut completed = Vec::new();
        for (i, e) in self.expectations.iter_mut().enumerate() {
            let Some(buf) = self.early.get_mut(&e.conn) else {
                continue;
            };
            if buf.is_empty() {
                continue;
            }
            let want = e.len - e.received;
            let take = want.min(buf.len());
            let bytes: Vec<u8> = buf.drain(..take).collect();
            ctx.world()
                .expect_mut::<PhysMemory>()
                .write(e.buf + e.received as u64, &bytes);
            e.received += take;
            e.last_progress = ctx.now();
            if e.received == e.len {
                completed.push(i);
            }
        }
        for i in completed.into_iter().rev() {
            let e = self.expectations.remove(i);
            let id = self.scoreboard.id_of(e.at.slot);
            if let Some(c) = self.contexts.get_mut(&id) {
                c.breakdown.add(Category::Wire, ctx.now() - e.issued_at);
                c.scoreboard_ns += self.config.scoreboard_step_ns;
            }
            self.scoreboard.mark_done(e.at, e.len);
        }
    }

    // ------------------------------------------------------------------
    // Fault-recovery watchdog.
    // ------------------------------------------------------------------

    /// Schedules the next watchdog sweep if fault injection is active and
    /// no sweep is pending. The watchdog is the engine's whole-device
    /// recovery net: it polls completion paths whose interrupts may have
    /// been lost, retransmits unacknowledged sends, and converts sub-ops
    /// hung past the op deadline into clean error completions.
    fn arm_watchdog(&mut self, ctx: &mut Ctx<'_>) {
        if self.watchdog_armed {
            return;
        }
        let Some(rc) = fault::recovery(ctx.world_ref()) else {
            return;
        };
        self.watchdog_armed = true;
        ctx.send_self_in(rc.watchdog_period_ns, WatchdogTick);
    }

    fn on_watchdog(&mut self, ctx: &mut Ctx<'_>) {
        let Some(rc) = fault::recovery(ctx.world_ref()) else {
            self.watchdog_armed = false;
            return;
        };
        let now = ctx.now();
        // Poll every completion path directly: recovers SSD CQ entries and
        // NIC write-backs whose MSI was dropped by the fabric.
        for i in 0..self.nvme.len() {
            self.drain_ssd_cq(ctx, i);
        }
        self.on_nic_rx_msi(ctx);
        // NVMe sub-commands silent past the op deadline become errors.
        // Sweeps sort what they collect from hash maps: iteration order
        // must never leak into the event sequence (seed reproducibility).
        let mut timed_out: Vec<(usize, u16)> = Vec::new();
        for (i, ctrl) in self.nvme.iter().enumerate() {
            for (&cid, op) in &ctrl.outstanding {
                if now - op.issued_at > rc.op_timeout_ns {
                    timed_out.push((i, cid));
                }
            }
        }
        timed_out.sort_unstable();
        for (ssd, cid) in timed_out {
            let Some(op) = self.nvme[ssd].outstanding.remove(&cid) else {
                continue;
            };
            fault::exhausted(ctx.world(), fault::MSI_LOSS);
            ctx.world().stats.counter("hdc.nvme_timeouts").add(1);
            self.nvme_subop_done(ctx, ssd, &op, false);
        }
        // Tracked sends: force-complete acked sends whose last transmit
        // interrupt vanished; retransmit unacked sends past their RTO;
        // fail them once the budget runs out.
        let mut force = Vec::new();
        let mut retry = Vec::new();
        let mut fail = Vec::new();
        for (&at, s) in &self.nic_sends {
            if s.acked {
                if !s.descs_done && now - s.last_attempt > rc.nic_rto_ns {
                    force.push(at);
                }
                continue;
            }
            let rto = rc.nic_rto_ns << s.attempts.min(10);
            if now - s.last_attempt <= rto {
                continue;
            }
            if s.attempts < rc.nic_retries {
                retry.push(at);
            } else {
                fail.push(at);
            }
        }
        force.sort_unstable_by_key(|at| (at.slot, at.op));
        retry.sort_unstable_by_key(|at| (at.slot, at.op));
        fail.sort_unstable_by_key(|at| (at.slot, at.op));
        for at in force {
            let Some(send) = self.nic_sends.get_mut(&at) else {
                continue;
            };
            send.descs_done = true;
            fault::recovered(ctx.world(), fault::MSI_LOSS);
            self.try_complete_nic_send(ctx, at);
        }
        for at in retry {
            let Some(s) = self.nic_sends.get_mut(&at) else {
                continue;
            };
            let (conn, seq, buf, len, start_off) = {
                s.attempts += 1;
                s.last_attempt = now;
                (s.conn, s.seq, s.buf, s.len, s.start_off)
            };
            fault::retried(ctx.world(), fault::WIRE_DROP);
            ctx.world().stats.counter("hdc.retransmits").add(1);
            self.push_send_descs(ctx, at, conn, seq, buf, len, start_off, true);
        }
        for at in fail {
            fault::exhausted(ctx.world(), fault::WIRE_DROP);
            self.fail_nic_send(ctx, at);
        }
        // Receive expectations with no progress for a full deadline: the
        // sender gave up (or never existed); fail them cleanly.
        let stale: Vec<usize> = self
            .expectations
            .iter()
            .enumerate()
            .filter(|(_, e)| now - e.last_progress.max(e.issued_at) > rc.op_timeout_ns)
            .map(|(i, _)| i)
            .collect();
        for i in stale.into_iter().rev() {
            let e = self.expectations.remove(i);
            fault::exhausted(ctx.world(), fault::WIRE_DROP);
            ctx.world().stats.counter("hdc.recv_timeouts").add(1);
            self.scoreboard.mark_failed(e.at);
        }
        // Transmit-FIFO entries whose interrupts were lost long ago would
        // otherwise skew attribution forever; drop them.
        while let Some(&(_, t, _)) = self.nic.tx_fifo.front() {
            if now - t > rc.op_timeout_ns {
                self.nic.tx_fifo.pop_front();
                ctx.world().stats.counter("hdc.stale_tx_entries").add(1);
            } else {
                break;
            }
        }
        self.after_progress(ctx);
        if !self.contexts.is_empty() || !self.pending_admit.is_empty() {
            ctx.send_self_in(rc.watchdog_period_ns, WatchdogTick);
        } else {
            self.watchdog_armed = false;
        }
    }

    // ------------------------------------------------------------------
    // Completion delivery to the host.
    // ------------------------------------------------------------------

    fn after_progress(&mut self, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
        for (id, ok, final_len) in self.scoreboard.pop_deliverable() {
            self.deliver_completion(ctx, id, ok, final_len);
        }
        // Freed scoreboard slots / buffers may unblock queued admissions.
        // Each queued command gets one retry; a command that re-queues
        // itself (still no room) stops the sweep.
        let rounds = self.pending_admit.len();
        for _ in 0..rounds {
            let Some(cmd) = self.pending_admit.pop_front() else {
                break;
            };
            let before = self.pending_admit.len();
            self.try_admit(ctx, cmd);
            if self.pending_admit.len() > before {
                break;
            }
        }
    }

    fn deliver_completion(&mut self, ctx: &mut Ctx<'_>, id: u64, ok: bool, final_len: usize) {
        let init = self.init.expect("engine initialized before use");
        let context = self.contexts.get_mut(&id).expect("live command context");
        context.breakdown.add(
            Category::Scoreboard,
            context.scoreboard_ns + self.config.completion_write_ns,
        );
        let record = CompletionRecord {
            id,
            ok,
            phase: self.comp_phase,
            payload_len: final_len as u32,
            digest: context.digest.clone().unwrap_or_default(),
        };
        let ring_idx = self.comp_tail as u64;
        let slot = init.completion_ring + ring_idx * CompletionRecord::SIZE as u64;
        self.comp_tail += 1;
        if self.comp_tail == init.completion_depth {
            self.comp_tail = 0;
            self.comp_phase = !self.comp_phase;
        }
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.mark(id, "hdc:data+compute", now);
            obs.span_begin("hdc", "completion-dma", id, now);
        }
        // Stage the record in BRAM and DMA it to the host ring; the MSI
        // follows the DMA completion. One staging slot per ring index:
        // in-order delivery can release long bursts of completions at one
        // instant, so shared staging would clobber in-flight records.
        let staging = self.bar.start + (self.bar.len - 0x10000 + ring_idx * 64);
        ctx.world()
            .expect_mut::<PhysMemory>()
            .write(staging, &record.to_bytes());
        let token = self.token();
        self.comp_dmas.insert(
            token,
            CompDma {
                id,
                src: staging,
                dst: slot,
                attempts: 0,
            },
        );
        let fabric = self.fabric;
        ctx.send_in(
            self.config.completion_write_ns,
            fabric,
            DmaRequest {
                id: token,
                src: staging,
                dst: slot,
                len: CompletionRecord::SIZE,
                class: TlpClass::Completion,
                reply_to: ctx.self_id(),
            },
        );
        ctx.world().stats.counter("hdc.completions").add(1);
    }

    fn on_completion_dma_done(&mut self, ctx: &mut Ctx<'_>, done: &DmaComplete) {
        let Some(dma) = self.comp_dmas.remove(&done.id) else {
            ctx.world()
                .stats
                .counter("hdc.stale_completion_dmas")
                .add(1);
            return;
        };
        let id = dma.id;
        if !done.status.is_ok() {
            if dma.attempts == 0 {
                // The staged record in BRAM is intact: rewrite the host
                // ring slot once before giving the record up for lost.
                ctx.world().stats.counter("hdc.completion_rewrites").add(1);
                let token = self.token();
                self.comp_dmas.insert(token, CompDma { attempts: 1, ..dma });
                let fabric = self.fabric;
                ctx.send_now(
                    fabric,
                    DmaRequest {
                        id: token,
                        src: dma.src,
                        dst: dma.dst,
                        len: CompletionRecord::SIZE,
                        class: TlpClass::Completion,
                        reply_to: ctx.self_id(),
                    },
                );
                return;
            }
            // Rewrite budget spent. Fall through and release the command's
            // resources anyway: the driver's ring poll times the job out
            // and fails it cleanly, so nothing hangs on the lost record.
            ctx.world().stats.counter("hdc.completion_lost").add(1);
        }
        let init = self.init.expect("initialized");
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.span_end("hdc", "completion-dma", id, now);
            obs.mark(id, "hdc:completion-dma", now);
            obs.count("hdc", "cmds.completed", 1);
        }
        // Free the command's buffers and surface the instrumentation to the
        // driver (resolved through its claimed MSI address).
        if let Some(context) = self.contexts.remove(&id) {
            for b in &context.buffers {
                self.allocator.free(*b);
            }
            let driver = ctx
                .world_ref()
                .expect::<dcs_pcie::MmioRouting>()
                .owner_of(init.msi_addr)
                .expect("driver claimed its MSI address");
            ctx.send_now(
                driver,
                EngineBreakdown {
                    id,
                    breakdown: context.breakdown,
                },
            );
        }
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            Msi {
                addr: init.msi_addr,
                vector: init.msi_vector,
            },
        );
        // Buffer space freed: retry queued admissions.
        self.after_progress(ctx);
    }
}

impl Component for HdcEngine {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if let Some(write) = msg.get::<MmioWrite>() {
            let off = write.addr - self.bar.start;
            if off == Self::CMD_QUEUE_OFFSET {
                let data = write.data.clone();
                self.on_command_write(ctx, &data);
            } else {
                panic!("write to unmodeled engine register {off:#x}");
            }
            return;
        }
        let msg = match msg.downcast::<EngineInit>() {
            Ok(init) => {
                assert!(self.init.is_none(), "engine initialized twice");
                self.init = Some(init);
                self.start_devices(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RegisterConnection>() {
            Ok(reg) => {
                self.connections.insert(reg.conn, (reg.flow, reg.seq));
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<AdmitCmd>() {
            Ok(AdmitCmd { cmd }) => {
                self.try_admit(ctx, cmd);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<NdpDone>() {
            Ok(NdpDone { token }) => {
                self.on_ndp_done(ctx, token);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<HostReadDone>() {
            Ok(HostReadDone { token }) => {
                self.on_hostread_done(ctx, token);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<GatherDone>() {
            Ok(GatherDone { frames, .. }) => {
                self.on_gather_done(ctx, frames);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WatchdogTick>() {
            Ok(WatchdogTick) => {
                self.on_watchdog(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<MsiDelivery>() {
            Ok(d) => {
                match d.vector {
                    v if (Self::MSI_SSD_BASE..Self::MSI_SSD_BASE + 32).contains(&v) => {
                        self.on_ssd_msi(ctx, (v - Self::MSI_SSD_BASE) as usize)
                    }
                    Self::MSI_NIC_TX => self.on_nic_tx_msi(ctx),
                    Self::MSI_NIC_RX => self.on_nic_rx_msi(ctx),
                    _ => {
                        // A misrouted interrupt is device misbehavior, not
                        // an engine invariant; count it and move on.
                        ctx.world().stats.counter("hdc.unexpected_msi").add(1);
                    }
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<DmaComplete>() {
            Ok(done) => self.on_completion_dma_done(ctx, &done),
            Err(other) => panic!("HdcEngine received unexpected message: {other:?}"),
        }
    }
}
