//! The HDC Driver (§IV-B): the thin kernel module between applications
//! and the HDC Engine.
//!
//! Per D2D command the driver does exactly three things on the CPU —
//! an ioctl entry, metadata retrieval (block addresses from the VFS,
//! connection info from the TCP stack; including the page-cache
//! consistency check §IV-B describes), and a completion interrupt — and
//! everything else happens in hardware. That short list *is* DCS-ctrl's
//! performance story: compare with the per-operation submit/complete costs
//! in [`dcs_host::nvme_driver`] and [`dcs_host::nic_driver`].
//!
//! The driver accepts the same [`D2dJob`]s as the baseline executors, so
//! workloads and benchmarks swap designs by choosing which component they
//! submit to.

use dcs_sim::DetMap;

use dcs_host::costs::KernelCosts;
use dcs_host::cpu::{CpuJob, CpuJobDone};
use dcs_host::job::{D2dDone, D2dJob, D2dOp};
use dcs_nic::TcpFlow;
use dcs_pcie::{DmaComplete, DmaRequest, MmioWrite, MsiDelivery, PhysAddr, PhysMemory, TlpClass};
use dcs_sim::{fault, Breakdown, Category, Component, ComponentId, Ctx, Msg, SimTime};

use crate::command::{CompletionRecord, D2dCommand, DevOpCode};
use crate::engine::{EngineBreakdown, EngineInit, RegisterConnection};

/// Where the driver's host-side structures live.
#[derive(Debug, Clone, Copy)]
pub struct DriverLayout {
    /// Completion ring base (host DRAM, 64-byte records).
    pub completion_ring: PhysAddr,
    /// Ring depth.
    pub completion_depth: u16,
    /// The driver's MSI target (claimed for the driver component).
    pub msi_addr: PhysAddr,
    /// Host-side staging for aux data before the DMA to the engine.
    pub aux_staging: PhysAddr,
}

struct JobCtx {
    job: D2dJob,
    /// Driver CPU time charged to this job (DeviceControl category).
    driver_ns: u64,
    /// Engine-side split (arrives as out-of-band instrumentation).
    engine_bd: Option<Breakdown>,
    /// The DMA'd completion record.
    record: Option<CompletionRecord>,
    /// Completion-path CPU time, added when the interrupt is handled.
    completion_ns: u64,
    submitted_at: SimTime,
    /// Poisoned aux-staging DMAs retried for this job.
    aux_attempts: u8,
}

enum CpuPhase {
    /// Ioctl + metadata done: stage aux / write the command.
    Submit {
        id: u64,
        cmd: D2dCommand,
        aux: Option<Vec<u8>>,
    },
    /// Interrupt handled: drain the completion ring.
    Complete,
}

/// Fault mode: periodic completion-ring poll, the fallback for a
/// completion whose MSI the fabric dropped.
#[derive(Debug)]
struct RingPoll;

/// The HDC Driver component.
pub struct HdcDriver {
    cpu: ComponentId,
    fabric: ComponentId,
    engine: ComponentId,
    cmd_queue: PhysAddr,
    engine_aux_base: PhysAddr,
    layout: DriverLayout,
    costs: KernelCosts,
    jobs: DetMap<u64, JobCtx>,
    /// Registered connections (flow → engine conn id).
    conns: DetMap<TcpFlow, u16>,
    next_conn: u16,
    /// Completion ring consumer state.
    comp_head: u16,
    comp_phase: bool,
    cpu_phases: DetMap<u64, CpuPhase>,
    next_token: u64,
    /// Rotating aux slot cursor (64-byte slots).
    aux_slot: u64,
    /// A `RingPoll` is scheduled.
    poll_armed: bool,
}

impl HdcDriver {
    /// Creates the driver and the [`EngineInit`] the caller must deliver
    /// to the engine.
    pub fn new(
        cpu: ComponentId,
        fabric: ComponentId,
        engine: ComponentId,
        cmd_queue: PhysAddr,
        engine_aux_base: PhysAddr,
        layout: DriverLayout,
        costs: KernelCosts,
    ) -> (Self, EngineInit) {
        let init = EngineInit {
            completion_ring: layout.completion_ring,
            completion_depth: layout.completion_depth,
            msi_addr: layout.msi_addr,
            msi_vector: 0x80,
        };
        let driver = HdcDriver {
            cpu,
            fabric,
            engine,
            cmd_queue,
            engine_aux_base,
            layout,
            costs,
            jobs: DetMap::new(),
            conns: DetMap::new(),
            next_conn: 1,
            comp_head: 0,
            comp_phase: true,
            cpu_phases: DetMap::new(),
            next_token: 1,
            aux_slot: 0,
            poll_armed: false,
        };
        (driver, init)
    }

    fn cpu_job(&mut self, ctx: &mut Ctx<'_>, cost: u64, tag: &'static str, phase: CpuPhase) {
        let token = self.next_token;
        self.next_token += 1;
        self.cpu_phases.insert(token, phase);
        let cpu = self.cpu;
        ctx.send_now(
            cpu,
            CpuJob {
                token,
                cost_ns: cost,
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    /// Resolves (registering on first use) the engine connection id for a
    /// flow.
    fn conn_for(&mut self, ctx: &mut Ctx<'_>, flow: TcpFlow, seq: u32) -> u16 {
        if let Some(&c) = self.conns.get(&flow) {
            return c;
        }
        let c = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(flow, c);
        let engine = self.engine;
        ctx.send_now(engine, RegisterConnection { conn: c, flow, seq });
        c
    }

    fn on_job(&mut self, ctx: &mut Ctx<'_>, job: D2dJob) {
        assert!(
            job.ops.len() <= D2dCommand::MAX_OPS,
            "a D2D command carries at most {} ops",
            D2dCommand::MAX_OPS
        );
        // Translate the design-independent job into the wire command.
        let mut aux_blob: Option<Vec<u8>> = None;
        let aux_off = (self.aux_slot % 16_384) * 64;
        let mut ops = Vec::with_capacity(job.ops.len());
        let mut metadata_lookups = 0u64;
        for op in &job.ops {
            let code = match op {
                D2dOp::SsdRead { ssd, lba, len } => {
                    metadata_lookups += 1; // VFS block mapping
                    DevOpCode::SsdRead {
                        ssd: *ssd as u8,
                        lba: *lba,
                        len: *len as u32,
                    }
                }
                D2dOp::SsdWrite { ssd, lba } => {
                    metadata_lookups += 1;
                    DevOpCode::SsdWrite {
                        ssd: *ssd as u8,
                        lba: *lba,
                    }
                }
                D2dOp::Process { function, aux } => {
                    let off = if aux.is_empty() {
                        0
                    } else {
                        assert!(aux.len() <= 64, "aux block exceeds one slot");
                        aux_blob = Some(aux.clone());
                        self.aux_slot += 1;
                        aux_off as u32
                    };
                    DevOpCode::Process {
                        function: *function,
                        aux_off: off,
                        aux_len: aux.len() as u16,
                    }
                }
                D2dOp::NicSend { flow, seq } => {
                    metadata_lookups += 1; // TCP connection lookup
                    let conn = self.conn_for(ctx, *flow, *seq);
                    DevOpCode::NicSend { conn, seq: *seq }
                }
                D2dOp::NicRecv { flow, len } => {
                    metadata_lookups += 1;
                    let conn = self.conn_for(ctx, *flow, 0);
                    DevOpCode::NicRecv {
                        conn,
                        len: *len as u32,
                    }
                }
                D2dOp::MemRead { len } => {
                    metadata_lookups += 1; // cache page-table lookup
                    DevOpCode::MemRead { len: *len as u32 }
                }
            };
            ops.push(code);
        }
        let id = job.id;
        let cmd = D2dCommand { id, ops };
        let cost = self.costs.hdc_ioctl_ns + self.costs.hdc_metadata_ns * metadata_lookups.max(1);
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.req_begin(id, now);
            obs.span_begin("host", "submit-cpu", id, now);
            obs.count("host", "jobs.submitted", 1);
        }
        let tag = job.tag;
        self.jobs.insert(
            id,
            JobCtx {
                job,
                driver_ns: cost,
                engine_bd: None,
                record: None,
                completion_ns: 0,
                submitted_at: ctx.now(),
                aux_attempts: 0,
            },
        );
        self.cpu_job(
            ctx,
            cost,
            tag,
            CpuPhase::Submit {
                id,
                cmd,
                aux: aux_blob,
            },
        );
        self.arm_poll(ctx);
    }

    /// Schedules the next ring poll if fault injection is active and no
    /// poll is pending. Fault-free runs never poll: the MSI is reliable.
    fn arm_poll(&mut self, ctx: &mut Ctx<'_>) {
        if self.poll_armed {
            return;
        }
        let Some(rc) = fault::recovery(ctx.world_ref()) else {
            return;
        };
        self.poll_armed = true;
        ctx.send_self_in(rc.poll_period_ns, RingPoll);
    }

    fn on_poll(&mut self, ctx: &mut Ctx<'_>) {
        let Some(rc) = fault::recovery(ctx.world_ref()) else {
            self.poll_armed = false;
            return;
        };
        ctx.world().stats.counter("hdc.drv_polls").add(1);
        self.drain_completions(ctx);
        // Fail jobs whose completion record was lost for good (e.g. a
        // poisoned record the engine could not rewrite): the engine-side
        // watchdog already accounted the fault, so this is containment
        // only — the submitter gets a clean `ok = false` instead of a hang.
        let now = ctx.now();
        let stale: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| now - j.submitted_at > rc.op_timeout_ns)
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            self.fail_job(ctx, id, "hdc.drv_timeouts");
        }
        if self.jobs.is_empty() {
            self.poll_armed = false;
        } else {
            ctx.send_self_in(rc.poll_period_ns, RingPoll);
        }
    }

    /// Fails a job cleanly: the submitter always gets a reply, never a
    /// wrong payload and never silence.
    fn fail_job(&mut self, ctx: &mut Ctx<'_>, id: u64, counter: &'static str) {
        ctx.world().stats.counter(counter).add(1);
        let Some(j) = self.jobs.remove(&id) else {
            return;
        };
        let mut breakdown = j.engine_bd.unwrap_or_default();
        breakdown.add(Category::DeviceControl, j.driver_ns);
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.req_end(id, "host:failed", now);
            obs.count("host", "jobs.failed", 1);
        }
        ctx.send_now(
            j.job.reply_to,
            D2dDone {
                id,
                ok: false,
                breakdown,
                digest: None,
                payload_len: 0,
            },
        );
    }

    fn submit(&mut self, ctx: &mut Ctx<'_>, id: u64, cmd: D2dCommand, aux: Option<Vec<u8>>) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        job.submitted_at = ctx.now();
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.span_end("host", "submit-cpu", id, now);
            obs.mark(id, "host:ioctl+metadata", now);
        }
        match aux {
            Some(blob) => {
                // Stage aux in host DRAM, DMA it into the engine's aux
                // buffer, and write the command once the DMA lands.
                let aux_off = match cmd.ops.iter().find_map(|o| match o {
                    DevOpCode::Process {
                        aux_off, aux_len, ..
                    } if *aux_len > 0 => Some(*aux_off),
                    _ => None,
                }) {
                    Some(off) => off,
                    None => unreachable!("aux blob without a Process op"),
                };
                let staging = self.layout.aux_staging + (id % 64) * 64;
                ctx.world().expect_mut::<PhysMemory>().write(staging, &blob);
                self.send_aux_dma(ctx, id, cmd, aux_off, blob.len());
            }
            None => {
                let fabric = self.fabric;
                ctx.send_now(
                    fabric,
                    MmioWrite {
                        addr: self.cmd_queue,
                        data: cmd.to_bytes().to_vec(),
                    },
                );
            }
        }
    }

    /// DMAs the staged aux block into the engine's aux buffer, parking the
    /// command as the continuation. The CpuPhase slot doubles as the DMA
    /// continuation: the token comes back via [`DmaComplete`] instead of
    /// [`CpuJobDone`].
    fn send_aux_dma(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: u64,
        cmd: D2dCommand,
        aux_off: u32,
        len: usize,
    ) {
        let staging = self.layout.aux_staging + (id % 64) * 64;
        let token = self.next_token;
        self.next_token += 1;
        self.cpu_phases
            .insert(token, CpuPhase::Submit { id, cmd, aux: None });
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            DmaRequest {
                id: token,
                src: staging,
                dst: self.engine_aux_base + aux_off as u64,
                len,
                class: TlpClass::Data,
                reply_to: ctx.self_id(),
            },
        );
    }

    /// A poisoned/timed-out aux-staging DMA. The staging bytes in host
    /// DRAM are intact, so one clean re-DMA usually recovers; a second
    /// failure fails the job rather than submitting a command whose aux
    /// block is suspect.
    fn on_bad_aux_dma(&mut self, ctx: &mut Ctx<'_>, id: u64, cmd: D2dCommand) {
        ctx.world().stats.counter("hdc.drv_bad_aux_dmas").add(1);
        let attempts = match self.jobs.get_mut(&id) {
            Some(j) => {
                j.aux_attempts += 1;
                j.aux_attempts
            }
            None => return,
        };
        let aux = cmd.ops.iter().find_map(|o| match o {
            DevOpCode::Process {
                aux_off, aux_len, ..
            } if *aux_len > 0 => Some((*aux_off, *aux_len as usize)),
            _ => None,
        });
        match aux {
            Some((aux_off, len)) if attempts <= 1 => self.send_aux_dma(ctx, id, cmd, aux_off, len),
            _ => self.fail_job(ctx, id, "hdc.drv_aux_failures"),
        }
    }

    fn drain_completions(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let slot =
                self.layout.completion_ring + self.comp_head as u64 * CompletionRecord::SIZE as u64;
            let (record, crc_ok) = {
                let mem = ctx.world_ref().expect::<PhysMemory>();
                let raw: [u8; CompletionRecord::SIZE] = mem
                    .read(slot, CompletionRecord::SIZE)
                    .try_into()
                    .expect("64 bytes");
                (
                    CompletionRecord::from_bytes(&raw, self.comp_phase),
                    CompletionRecord::verify(&raw),
                )
            };
            let Some(record) = record else { break };
            if !crc_ok {
                // A corrupted completion record: consume the slot so the
                // ring keeps moving, but never trust its fields. The fault
                // was already attributed when the TLP crossed the fabric;
                // the owning job is recovered by the engine's record
                // rewrite or, failing that, by this driver's poll timeout.
                ctx.world().stats.counter("hdc.drv_bad_records").add(1);
                ctx.world()
                    .expect_mut::<PhysMemory>()
                    .write(slot, &[0u8; CompletionRecord::SIZE]);
                self.comp_head += 1;
                if self.comp_head == self.layout.completion_depth {
                    self.comp_head = 0;
                    self.comp_phase = !self.comp_phase;
                }
                continue;
            }
            ctx.world().stats.counter("hdc.driver_records").add(1);
            // Clear the slot so a stale same-phase record is never re-read.
            ctx.world()
                .expect_mut::<PhysMemory>()
                .write(slot, &[0u8; CompletionRecord::SIZE]);
            self.comp_head += 1;
            if self.comp_head == self.layout.completion_depth {
                self.comp_head = 0;
                self.comp_phase = !self.comp_phase;
            }
            let id = record.id;
            if let Some(j) = self.jobs.get_mut(&id) {
                j.completion_ns = self.costs.hdc_completion_ns;
                j.record = Some(record);
            }
            self.try_finish(ctx, id);
        }
    }

    fn try_finish(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let ready = self
            .jobs
            .get(&id)
            .is_some_and(|j| j.record.is_some() && j.engine_bd.is_some());
        if !ready {
            return;
        }
        let j = self.jobs.remove(&id).expect("checked");
        let record = j.record.expect("checked");
        let mut breakdown = j.engine_bd.expect("checked");
        breakdown.add(Category::DeviceControl, j.driver_ns);
        breakdown.add(Category::RequestCompletion, j.completion_ns);
        ctx.world().stats.counter("hdc.jobs_done").add(1);
        {
            let now = ctx.now();
            let e2e = now - j.submitted_at;
            let obs = &mut ctx.world().obs;
            obs.req_end(id, "host:irq+completion", now);
            obs.count("host", "jobs.done", 1);
            obs.observe("host", "job.e2e_ns", e2e);
        }
        ctx.send_now(
            j.job.reply_to,
            D2dDone {
                id,
                ok: record.ok,
                breakdown,
                digest: (!record.digest.is_empty()).then_some(record.digest),
                payload_len: record.payload_len as usize,
            },
        );
    }
}

impl Component for HdcDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<D2dJob>() {
            Ok(job) => {
                self.on_job(ctx, job);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(done) => {
                match self.cpu_phases.remove(&done.token).expect("live cpu phase") {
                    CpuPhase::Submit { id, cmd, aux } => self.submit(ctx, id, cmd, aux),
                    CpuPhase::Complete => self.drain_completions(ctx),
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<DmaComplete>() {
            Ok(done) => {
                // Aux staging DMA finished: now write the command.
                let Some(phase) = self.cpu_phases.remove(&done.id) else {
                    ctx.world().stats.counter("hdc.drv_stale_dmas").add(1);
                    return;
                };
                let CpuPhase::Submit { id, cmd, aux: None } = phase else {
                    panic!("unexpected continuation for aux DMA")
                };
                if !done.status.is_ok() {
                    self.on_bad_aux_dma(ctx, id, cmd);
                    return;
                }
                let fabric = self.fabric;
                ctx.send_now(
                    fabric,
                    MmioWrite {
                        addr: self.cmd_queue,
                        data: cmd.to_bytes().to_vec(),
                    },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<EngineBreakdown>() {
            Ok(eb) => {
                ctx.world().stats.counter("hdc.driver_engine_bd").add(1);
                if let Some(j) = self.jobs.get_mut(&eb.id) {
                    j.engine_bd = Some(eb.breakdown);
                }
                let id = eb.id;
                self.try_finish(ctx, id);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RingPoll>() {
            Ok(RingPoll) => {
                self.on_poll(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<MsiDelivery>() {
            Ok(d) => {
                assert_eq!(d.vector, 0x80, "driver handles only engine completions");
                // Interrupt + completion handling on the CPU, then drain.
                let cost = self.costs.irq_entry_ns + self.costs.hdc_completion_ns;
                // Tag under the oldest outstanding job's tag.
                let tag = self
                    .jobs
                    .values()
                    .min_by_key(|j| j.submitted_at)
                    .map(|j| j.job.tag)
                    .unwrap_or("hdc-driver");
                self.cpu_job(ctx, cost, tag, CpuPhase::Complete);
            }
            Err(other) => panic!("HdcDriver received unexpected message: {other:?}"),
        }
    }
}
