//! The NVMe SSD device component.
//!
//! Models the drive side of the NVMe contract against any initiator (host
//! driver or HDC Engine NVMe controller):
//!
//! 1. Initiator writes a 64-byte command into the submission queue (in its
//!    own memory) and rings the SQ tail doorbell (MMIO into the drive BAR).
//! 2. The drive DMA-reads the new entries, parses them, and validates
//!    opcode / LBA range / PRP alignment exactly as hardware would.
//! 3. Reads: flash access (latency + bandwidth pipeline) then DMA of the
//!    data to the PRP pages (fetching the external PRP list first when one
//!    is used). Writes: DMA the data in, then flash program time.
//! 4. The drive DMA-writes a 16-byte completion entry (phase tag managed
//!    per queue) and raises an MSI at the queue's configured address.
//!
//! Timing defaults follow the Intel SSD 750 of Table V: 17.2 Gbps reads,
//! 7.2 Gbps writes.

use dcs_sim::DetMap;

use dcs_pcie::{
    aer, AddrRange, DmaComplete, DmaRequest, MmioWrite, Msi, PhysAddr, PhysMemory, PortId, TlpClass,
};
use dcs_sim::{time, Bandwidth, Component, ComponentId, Ctx, FifoServer, Msg, Simulator};

use crate::spec::{
    NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus, PrpList, LBA_SIZE, PAGE_SIZE,
};

/// Timing and capacity parameters of the SSD model.
#[derive(Clone, Debug)]
pub struct NvmeConfig {
    /// Sequential read bandwidth out of flash.
    pub read_bandwidth: Bandwidth,
    /// Sequential write (program) bandwidth into flash.
    pub write_bandwidth: Bandwidth,
    /// Access latency before read data starts flowing, in ns.
    pub read_latency_ns: u64,
    /// Program latency charged after write data arrives, in ns.
    pub write_latency_ns: u64,
    /// Controller-side fixed overhead per command (fetch/parse/complete).
    pub command_overhead_ns: u64,
    /// Namespace capacity in logical blocks.
    pub capacity_lbas: u64,
    /// Largest data transfer a single command may carry, in bytes (MDTS).
    pub max_transfer: usize,
}

impl Default for NvmeConfig {
    fn default() -> Self {
        NvmeConfig {
            read_bandwidth: Bandwidth::gbps(17.2),
            write_bandwidth: Bandwidth::gbps(7.2),
            read_latency_ns: time::us(14),
            write_latency_ns: time::us(18),
            command_overhead_ns: 700,
            // 400 GB at 4 KiB blocks.
            capacity_lbas: 400_000_000_000 / LBA_SIZE,
            max_transfer: 1 << 20,
        }
    }
}

/// Registers an I/O queue pair with the device.
///
/// In real hardware this handshake runs over the admin queue
/// (Create I/O CQ / Create I/O SQ commands); the model condenses it into
/// one configuration message carrying the same parameters, sent by the
/// initiator before first use.
#[derive(Debug, Clone, Copy)]
pub struct AttachQueuePair {
    /// Queue identifier (1-based; the admin queue is not modeled).
    pub qid: u16,
    /// Submission ring base (in the initiator's memory).
    pub sq_base: PhysAddr,
    /// Completion ring base.
    pub cq_base: PhysAddr,
    /// Entries in each ring.
    pub depth: u16,
    /// MSI target address for completions on this queue.
    pub msi_addr: PhysAddr,
    /// MSI vector for completions on this queue.
    pub msi_vector: u32,
}

/// Everything a scenario needs to talk to an installed SSD.
#[derive(Debug, Clone)]
pub struct NvmeHandle {
    /// The device component.
    pub device: ComponentId,
    /// The device's register BAR (doorbells live here).
    pub bar: AddrRange,
    /// The flash backing region (tests pre-populate data here).
    pub flash: AddrRange,
    /// The PCIe port the device occupies.
    pub port: PortId,
}

impl NvmeHandle {
    /// Address of the SQ tail doorbell for queue `qid`.
    pub fn sq_doorbell(&self, qid: u16) -> PhysAddr {
        self.bar.start + 0x1000 + (qid as u64) * 8
    }

    /// Address of the CQ head doorbell for queue `qid`.
    pub fn cq_doorbell(&self, qid: u16) -> PhysAddr {
        self.bar.start + 0x1000 + (qid as u64) * 8 + 4
    }

    /// Physical flash address of a logical block.
    pub fn lba_addr(&self, lba: u64) -> PhysAddr {
        self.flash.start + lba * LBA_SIZE
    }
}

struct QueuePair {
    sq_base: PhysAddr,
    cq_base: PhysAddr,
    depth: u16,
    msi_addr: PhysAddr,
    msi_vector: u32,
    /// Device-side SQ head (next entry to fetch).
    sq_head: u16,
    /// Last tail value written to the doorbell.
    sq_tail: u16,
    /// Device-side CQ tail (next completion slot).
    cq_tail: u16,
    /// Phase tag for the current CQ pass.
    cq_phase: bool,
    /// CQ head as reported by the initiator's head doorbell.
    cq_head: u16,
}

impl QueuePair {
    fn cq_free(&self) -> u16 {
        self.depth - 1 - (self.cq_tail.wrapping_sub(self.cq_head) % self.depth)
    }
}

/// Device-internal operation state.
enum OpPhase {
    /// Waiting for the 64-byte SQ entry DMA.
    FetchEntry,
    /// Waiting for the external PRP-list page DMA.
    FetchPrpList { cmd: NvmeCommand },
    /// Waiting for flash read access; data DMA comes next.
    FlashRead {
        cmd: NvmeCommand,
        pages: Vec<PhysAddr>,
    },
    /// Waiting for data DMA(s); `remaining` counts outstanding segments,
    /// `tainted` whether any segment landed poisoned (the command then
    /// completes with a data-transfer error once all segments settle).
    DataTransfer {
        cmd: NvmeCommand,
        remaining: usize,
        tainted: bool,
    },
    /// Waiting for flash program time (writes).
    FlashWrite { cmd: NvmeCommand },
    /// Waiting for the completion-entry DMA; MSI follows. `slot` is the
    /// initiator-CQ destination (kept for one rewrite if the entry DMA
    /// lands poisoned), `attempts` how many rewrites happened already.
    WriteCompletion {
        qid: u16,
        slot: PhysAddr,
        attempts: u8,
    },
}

struct Op {
    qid: u16,
    phase: OpPhase,
}

/// Internal: flash access finished for token.
#[derive(Debug)]
struct FlashDone {
    token: u64,
}

/// The SSD component.
pub struct NvmeDevice {
    config: NvmeConfig,
    fabric: ComponentId,
    bar: AddrRange,
    flash: AddrRange,
    /// Scratch area inside the BAR region used to land SQ-entry and
    /// PRP-list fetches (device-internal SRAM).
    scratch: PhysAddr,
    queues: DetMap<u16, QueuePair>,
    ops: DetMap<u64, Op>,
    next_token: u64,
    flash_read_unit: FifoServer,
    flash_write_unit: FifoServer,
}

impl NvmeDevice {
    /// Creates the device.
    ///
    /// The caller supplies pre-allocated `bar` and `flash` regions (see
    /// [`install_nvme`] for the standard wiring).
    pub fn new(config: NvmeConfig, fabric: ComponentId, bar: AddrRange, flash: AddrRange) -> Self {
        // Scratch: upper half of the BAR page space, far from doorbells.
        let scratch = bar.start + bar.len / 2;
        NvmeDevice {
            config,
            fabric,
            bar,
            flash,
            scratch,
            queues: DetMap::new(),
            ops: DetMap::new(),
            next_token: 1,
            flash_read_unit: FifoServer::new(),
            flash_write_unit: FifoServer::new(),
        }
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn scratch_for(&self, token: u64) -> PhysAddr {
        // 8 KiB of scratch per outstanding op, recycled modulo 64 ops.
        self.scratch + (token % 64) * 8192
    }

    fn on_doorbell(&mut self, ctx: &mut Ctx<'_>, write: &MmioWrite) {
        let off = write.addr - self.bar.start;
        assert!(off >= 0x1000, "write to unmodeled register {off:#x}");
        let db_index = (off - 0x1000) / 8;
        let qid = db_index as u16;
        let is_cq = (off - 0x1000) % 8 == 4;
        let value = u32::from_le_bytes(
            write
                .data
                .as_slice()
                .try_into()
                .expect("doorbell writes are 4 bytes"),
        ) as u16;
        if is_cq {
            if let Some(qp) = self.queues.get_mut(&qid) {
                qp.cq_head = value % qp.depth;
            }
            return;
        }
        let (sq_base, depth) = {
            let Some(qp) = self.queues.get_mut(&qid) else {
                panic!("doorbell for unattached queue {qid}");
            };
            qp.sq_tail = value % qp.depth;
            (qp.sq_base, qp.depth)
        };
        // Fetch every not-yet-fetched entry.
        loop {
            let slot = {
                let qp = self.queues.get_mut(&qid).expect("checked above");
                if qp.sq_head == qp.sq_tail {
                    break;
                }
                let slot = sq_base + qp.sq_head as u64 * NvmeCommand::SIZE as u64;
                qp.sq_head = (qp.sq_head + 1) % depth;
                slot
            };
            let token = self.token();
            let dst = self.scratch_for(token);
            self.ops.insert(
                token,
                Op {
                    qid,
                    phase: OpPhase::FetchEntry,
                },
            );
            {
                let now = ctx.now();
                let obs = &mut ctx.world().obs;
                obs.span_begin("nvme", "doorbell-fetch", token, now);
                obs.count("nvme", "sq.fetches", 1);
            }
            let req = DmaRequest {
                id: token,
                src: slot,
                dst,
                len: NvmeCommand::SIZE,
                class: TlpClass::Data,
                reply_to: ctx.self_id(),
            };
            let fabric = self.fabric;
            ctx.send_in(self.config.command_overhead_ns / 2, fabric, req);
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, token: u64, qid: u16, cid: u16, status: NvmeStatus) {
        let qp = self
            .queues
            .get_mut(&qid)
            .expect("completing on attached queue");
        assert!(qp.cq_free() > 0, "completion queue overflow on queue {qid}");
        let entry = NvmeCompletion {
            sq_head: qp.sq_head,
            sq_id: qid,
            cid,
            phase: qp.cq_phase,
            status,
        };
        let slot = qp.cq_base + qp.cq_tail as u64 * NvmeCompletion::SIZE as u64;
        qp.cq_tail += 1;
        if qp.cq_tail == qp.depth {
            qp.cq_tail = 0;
            qp.cq_phase = !qp.cq_phase;
        }
        {
            let now = ctx.now();
            ctx.world().obs.span_begin("nvme", "cq-write", token, now);
        }
        // Stage the entry in scratch, then DMA it to the initiator's CQ.
        let staging = self.scratch_for(token) + 4096;
        ctx.world()
            .expect_mut::<PhysMemory>()
            .write(staging, &entry.to_bytes());
        self.ops.insert(
            token,
            Op {
                qid,
                phase: OpPhase::WriteCompletion {
                    qid,
                    slot,
                    attempts: 0,
                },
            },
        );
        let req = DmaRequest {
            id: token,
            src: staging,
            dst: slot,
            len: NvmeCompletion::SIZE,
            class: TlpClass::Completion,
            reply_to: ctx.self_id(),
        };
        let fabric = self.fabric;
        ctx.send_in(self.config.command_overhead_ns / 2, fabric, req);
    }

    fn on_entry_fetched(&mut self, ctx: &mut Ctx<'_>, token: u64, qid: u16) {
        let raw: [u8; NvmeCommand::SIZE] = ctx
            .world_ref()
            .expect::<PhysMemory>()
            .read(self.scratch_for(token), NvmeCommand::SIZE)
            .try_into()
            .expect("64 bytes");
        let Some(cmd) = NvmeCommand::from_bytes(&raw) else {
            // cid sits at a fixed offset even in unknown commands.
            let cid = u16::from_le_bytes([raw[2], raw[3]]);
            self.complete(ctx, token, qid, cid, NvmeStatus::InvalidOpcode);
            return;
        };
        // Validate.
        let len = cmd.transfer_len();
        if cmd.slba + cmd.nlb as u64 + 1 > self.config.capacity_lbas
            || len > self.config.max_transfer
        {
            self.complete(ctx, token, qid, cmd.cid, NvmeStatus::LbaOutOfRange);
            return;
        }
        if cmd.opcode == NvmeOpcode::Flush {
            self.complete(ctx, token, qid, cmd.cid, NvmeStatus::Success);
            return;
        }
        let pages = (len as u64).div_ceil(PAGE_SIZE);
        if pages > 2 {
            // External PRP list: fetch it first.
            let list_len = (pages as usize - 1) * 8;
            let dst = self.scratch_for(token) + 2048;
            self.ops.insert(
                token,
                Op {
                    qid,
                    phase: OpPhase::FetchPrpList { cmd },
                },
            );
            let req = DmaRequest {
                id: token,
                src: cmd.prp2,
                dst,
                len: list_len,
                class: TlpClass::Data,
                reply_to: ctx.self_id(),
            };
            let fabric = self.fabric;
            ctx.send_now(fabric, req);
        } else {
            self.start_data_phase(ctx, token, qid, cmd, vec![]);
        }
    }

    fn on_prp_list_fetched(&mut self, ctx: &mut Ctx<'_>, token: u64, qid: u16, cmd: NvmeCommand) {
        let pages = (cmd.transfer_len() as u64).div_ceil(PAGE_SIZE);
        let raw = ctx
            .world_ref()
            .expect::<PhysMemory>()
            .read(self.scratch_for(token) + 2048, (pages as usize - 1) * 8);
        let list = PrpList::parse_list(&raw, pages as usize - 1);
        self.start_data_phase(ctx, token, qid, cmd, list);
    }

    fn start_data_phase(
        &mut self,
        ctx: &mut Ctx<'_>,
        token: u64,
        qid: u16,
        cmd: NvmeCommand,
        list: Vec<PhysAddr>,
    ) {
        let len = cmd.transfer_len();
        let Some(pages) = PrpList::data_pages(cmd.prp1, cmd.prp2, &list, len) else {
            self.complete(ctx, token, qid, cmd.cid, NvmeStatus::InvalidPrp);
            return;
        };
        if pages[0].as_u64() % PAGE_SIZE != 0 {
            // The model requires page-aligned buffers throughout.
            self.complete(ctx, token, qid, cmd.cid, NvmeStatus::InvalidPrp);
            return;
        }
        match cmd.opcode {
            NvmeOpcode::Read => {
                // Flash access: latency + bandwidth-serialized streaming.
                let service = self.config.read_bandwidth.transfer_time(len);
                let ser_done = self.flash_read_unit.offer(ctx.now(), service);
                let done = ser_done.max(ctx.now() + self.config.read_latency_ns);
                self.ops.insert(
                    token,
                    Op {
                        qid,
                        phase: OpPhase::FlashRead { cmd, pages },
                    },
                );
                let delay = done - ctx.now();
                {
                    let now = ctx.now();
                    let obs = &mut ctx.world().obs;
                    obs.span("nvme", "flash-read", token, now, done);
                    obs.observe("nvme", "flash.read_ns", delay);
                }
                ctx.send_self_in(delay, FlashDone { token });
            }
            NvmeOpcode::Write => {
                // Pull the data in first.
                let runs = PrpList::coalesce(&pages, len);
                let flash_base = self.flash.start + cmd.slba * LBA_SIZE;
                let remaining = runs.len();
                self.ops.insert(
                    token,
                    Op {
                        qid,
                        phase: OpPhase::DataTransfer {
                            cmd,
                            remaining,
                            tainted: false,
                        },
                    },
                );
                {
                    let now = ctx.now();
                    ctx.world()
                        .obs
                        .span_begin("nvme", "data-transfer", token, now);
                }
                let mut off = 0u64;
                let fabric = self.fabric;
                let me = ctx.self_id();
                for (addr, run_len) in runs {
                    let req = DmaRequest {
                        id: token,
                        src: addr,
                        dst: flash_base + off,
                        len: run_len,
                        class: TlpClass::Data,
                        reply_to: me,
                    };
                    ctx.send_now(fabric, req);
                    off += run_len as u64;
                }
            }
            NvmeOpcode::Flush => unreachable!("handled before the data phase"),
        }
    }

    fn on_flash_read_done(
        &mut self,
        ctx: &mut Ctx<'_>,
        token: u64,
        qid: u16,
        cmd: NvmeCommand,
        pages: Vec<PhysAddr>,
    ) {
        // Data is in the internal buffer; DMA it out to the PRP pages.
        let len = cmd.transfer_len();
        let runs = PrpList::coalesce(&pages, len);
        let flash_base = self.flash.start + cmd.slba * LBA_SIZE;
        let remaining = runs.len();
        self.ops.insert(
            token,
            Op {
                qid,
                phase: OpPhase::DataTransfer {
                    cmd,
                    remaining,
                    tainted: false,
                },
            },
        );
        {
            let now = ctx.now();
            ctx.world()
                .obs
                .span_begin("nvme", "data-transfer", token, now);
        }
        let mut off = 0u64;
        let fabric = self.fabric;
        let me = ctx.self_id();
        for (addr, run_len) in runs {
            let req = DmaRequest {
                id: token,
                src: flash_base + off,
                dst: addr,
                len: run_len,
                class: TlpClass::Data,
                reply_to: me,
            };
            ctx.send_now(fabric, req);
            off += run_len as u64;
        }
    }

    fn on_data_segment_done(
        &mut self,
        ctx: &mut Ctx<'_>,
        token: u64,
        qid: u16,
        cmd: NvmeCommand,
        remaining: usize,
        tainted: bool,
    ) {
        if remaining > 0 {
            self.ops.insert(
                token,
                Op {
                    qid,
                    phase: OpPhase::DataTransfer {
                        cmd,
                        remaining,
                        tainted,
                    },
                },
            );
            return;
        }
        {
            let now = ctx.now();
            ctx.world()
                .obs
                .span_end("nvme", "data-transfer", token, now);
        }
        if tainted {
            // Poison followed the data: at least one segment is not
            // trustworthy, so the command must not succeed (and a write
            // must not program poisoned bytes as durable). The status is
            // retryable — the initiator resubmits the whole command.
            ctx.world()
                .stats
                .counter("nvme.data_transfer_errors")
                .add(1);
            self.complete(ctx, token, qid, cmd.cid, NvmeStatus::DataTransferError);
            return;
        }
        match cmd.opcode {
            NvmeOpcode::Read => {
                self.complete(ctx, token, qid, cmd.cid, NvmeStatus::Success);
            }
            NvmeOpcode::Write => {
                let service = self
                    .config
                    .write_bandwidth
                    .transfer_time(cmd.transfer_len());
                let ser_done = self.flash_write_unit.offer(ctx.now(), service);
                let done = ser_done.max(ctx.now() + self.config.write_latency_ns);
                self.ops.insert(
                    token,
                    Op {
                        qid,
                        phase: OpPhase::FlashWrite { cmd },
                    },
                );
                let delay = done - ctx.now();
                {
                    let now = ctx.now();
                    let obs = &mut ctx.world().obs;
                    obs.span("nvme", "flash-write", token, now, done);
                    obs.observe("nvme", "flash.write_ns", delay);
                }
                ctx.send_self_in(delay, FlashDone { token });
            }
            NvmeOpcode::Flush => unreachable!(),
        }
    }
}

impl Component for NvmeDevice {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if let Some(write) = msg.get::<MmioWrite>() {
            let write = write.clone();
            self.on_doorbell(ctx, &write);
            return;
        }
        let msg = match msg.downcast::<AttachQueuePair>() {
            Ok(att) => {
                assert!(att.qid != 0, "admin queue (qid 0) is not modeled");
                let prev = self.queues.insert(
                    att.qid,
                    QueuePair {
                        sq_base: att.sq_base,
                        cq_base: att.cq_base,
                        depth: att.depth,
                        msi_addr: att.msi_addr,
                        msi_vector: att.msi_vector,
                        sq_head: 0,
                        sq_tail: 0,
                        cq_tail: 0,
                        cq_phase: true,
                        cq_head: 0,
                    },
                );
                if prev.is_some() {
                    // Re-attaching a live queue is a controller reset for
                    // that qid: every in-flight op on it is abandoned (its
                    // late flash/DMA completions land as stale and are
                    // dropped) and the ring state starts over. The host
                    // driver resubmits whatever it still cares about.
                    let stale: Vec<u64> = self
                        .ops
                        .iter()
                        .filter(|(_, op)| op.qid == att.qid)
                        .map(|(&t, _)| t)
                        .collect();
                    let aborted = stale.len() as u64;
                    for t in stale {
                        self.ops.remove(&t);
                    }
                    let now = ctx.now();
                    let world = ctx.world();
                    world.stats.counter("nvme.resets").add(1);
                    world.stats.counter("nvme.reset_aborted_ops").add(aborted);
                    aer::record(
                        world,
                        now.as_nanos(),
                        u64::from(att.qid),
                        "nvme.reset",
                        aer::AerKind::DeviceReset,
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<FlashDone>() {
            Ok(FlashDone { token }) => {
                let Some(op) = self.ops.remove(&token) else {
                    // The op was abandoned by a controller reset while the
                    // flash access was in flight.
                    ctx.world().stats.counter("nvme.stale_completions").add(1);
                    return;
                };
                match op.phase {
                    OpPhase::FlashRead { cmd, pages } => {
                        if dcs_sim::fault::inject(ctx.world(), dcs_sim::fault::NVME_MEDIA).is_some()
                        {
                            // Unrecovered read error from the medium: no
                            // data moves; the host sees a retryable status
                            // and may resubmit the command.
                            ctx.world().stats.counter("nvme.media_errors").add(1);
                            self.complete(ctx, token, op.qid, cmd.cid, NvmeStatus::MediaError);
                            return;
                        }
                        self.on_flash_read_done(ctx, token, op.qid, cmd, pages)
                    }
                    OpPhase::FlashWrite { cmd } => {
                        self.complete(ctx, token, op.qid, cmd.cid, NvmeStatus::Success)
                    }
                    _ => panic!("FlashDone in unexpected phase"),
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<DmaComplete>() {
            Ok(done) => {
                let token = done.id;
                let Some(op) = self.ops.remove(&token) else {
                    // Late completion for an op a controller reset dropped.
                    ctx.world().stats.counter("nvme.stale_completions").add(1);
                    return;
                };
                match op.phase {
                    OpPhase::FetchEntry => {
                        let now = ctx.now();
                        ctx.world()
                            .obs
                            .span_end("nvme", "doorbell-fetch", token, now);
                        if !done.status.is_ok() {
                            // The fetched SQ entry is poison or never
                            // arrived: parsing it would act on garbage
                            // opcodes and addresses. Drop the command; the
                            // host's per-command timeout resubmits it.
                            ctx.world().stats.counter("nvme.poisoned_fetches").add(1);
                            return;
                        }
                        self.on_entry_fetched(ctx, token, op.qid)
                    }
                    OpPhase::FetchPrpList { cmd } => {
                        if !done.status.is_ok() {
                            // A poisoned PRP list is a pile of garbage
                            // addresses; never walk it. We still know the
                            // command's cid, so fail it cleanly instead.
                            ctx.world().stats.counter("nvme.poisoned_prp_lists").add(1);
                            self.complete(
                                ctx,
                                token,
                                op.qid,
                                cmd.cid,
                                NvmeStatus::DataTransferError,
                            );
                            return;
                        }
                        self.on_prp_list_fetched(ctx, token, op.qid, cmd)
                    }
                    OpPhase::DataTransfer {
                        cmd,
                        remaining,
                        tainted,
                    } => {
                        let tainted = tainted || !done.status.is_ok();
                        self.on_data_segment_done(ctx, token, op.qid, cmd, remaining - 1, tainted)
                    }
                    OpPhase::WriteCompletion {
                        qid,
                        slot,
                        attempts,
                    } => {
                        if !done.status.is_ok() {
                            if attempts == 0 {
                                // The CQE itself was poisoned or timed out.
                                // Rewrite it once from the staged copy —
                                // the staging buffer still holds the good
                                // entry — before giving up.
                                ctx.world().stats.counter("nvme.cqe_rewrites").add(1);
                                self.ops.insert(
                                    token,
                                    Op {
                                        qid,
                                        phase: OpPhase::WriteCompletion {
                                            qid,
                                            slot,
                                            attempts: 1,
                                        },
                                    },
                                );
                                let req = DmaRequest {
                                    id: token,
                                    src: self.scratch_for(token) + 4096,
                                    dst: slot,
                                    len: NvmeCompletion::SIZE,
                                    class: TlpClass::Completion,
                                    reply_to: ctx.self_id(),
                                };
                                let fabric = self.fabric;
                                ctx.send_now(fabric, req);
                                return;
                            }
                            // Rewrite failed too: the CQE is lost. No MSI —
                            // the host driver's reset ladder recovers the
                            // whole queue.
                            ctx.world().stats.counter("nvme.cqe_lost").add(1);
                            return;
                        }
                        // Entry landed in the initiator's CQ: raise the MSI.
                        let qp = &self.queues[&qid];
                        let msi = Msi {
                            addr: qp.msi_addr,
                            vector: qp.msi_vector,
                        };
                        let fabric = self.fabric;
                        ctx.send_now(fabric, msi);
                        ctx.world().stats.counter("nvme.completions").add(1);
                        {
                            let now = ctx.now();
                            let obs = &mut ctx.world().obs;
                            obs.span_end("nvme", "cq-write", token, now);
                            obs.count("nvme", "cmd.completed", 1);
                        }
                    }
                    OpPhase::FlashRead { .. } | OpPhase::FlashWrite { .. } => {
                        panic!("DmaComplete in flash phase")
                    }
                }
            }
            Err(other) => panic!("NvmeDevice received unexpected message: {other:?}"),
        }
    }
}

/// Allocates regions, claims the BAR, and installs an SSD on `port`.
///
/// The standard wiring every scenario uses; returns the handle with the
/// device id and region addresses.
pub fn install_nvme(
    sim: &mut Simulator,
    fabric: ComponentId,
    config: NvmeConfig,
    name: &str,
    port: PortId,
) -> NvmeHandle {
    let capacity_bytes = config.capacity_lbas * LBA_SIZE;
    let (bar, flash) = {
        let mem = sim.world_mut().expect_mut::<PhysMemory>();
        let bar = mem.alloc_region(&format!("{name}-bar"), 1 << 20, port);
        let flash = mem.alloc_region(&format!("{name}-flash"), capacity_bytes, port);
        (bar, flash)
    };
    let id = sim.add(name, NvmeDevice::new(config, fabric, bar, flash));
    sim.world_mut()
        .expect_mut::<dcs_pcie::MmioRouting>()
        .claim(AddrRange::new(bar.start, 0x2000), id);
    NvmeHandle {
        device: id,
        bar,
        flash,
        port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{CompletionQueueReader, SubmissionQueueWriter};
    use dcs_pcie::{MmioRouting, PcieConfig, PcieFabric};
    use dcs_sim::{FaultPlan, FaultSpec, RecoveryConfig, Rng};

    /// A minimal initiator driving the SSD directly (stands in for the
    /// host driver / HDC controller in these unit tests).
    struct Initiator {
        completions: Vec<NvmeCompletion>,
        cq: CompletionQueueReader,
    }

    impl Component for Initiator {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            if msg.get::<dcs_pcie::MsiDelivery>().is_some() {
                let popped = {
                    let mem = ctx.world_ref().expect::<PhysMemory>();
                    let mut out = vec![];
                    while let Some(e) = self.cq.pop(mem) {
                        out.push(e);
                    }
                    out
                };
                for e in popped {
                    ctx.world().stats.counter("init.completions").add(1);
                    if e.status.is_ok() {
                        ctx.world().stats.counter("init.ok").add(1);
                    }
                    self.completions.push(e);
                }
            }
        }
    }

    struct Bench {
        sim: Simulator,
        handle: NvmeHandle,
        fabric: ComponentId,
        initiator: ComponentId,
        sq: SubmissionQueueWriter,
        rings: AddrRange,
    }

    fn setup() -> Bench {
        let mut sim = Simulator::new(1);
        sim.world_mut().insert(PhysMemory::new());
        sim.world_mut().insert(MmioRouting::new());
        let fabric = sim.add("pcie", PcieFabric::new(PcieConfig::default()));
        let cfg = NvmeConfig {
            capacity_lbas: 1 << 20,
            ..NvmeConfig::default()
        };
        let handle = install_nvme(&mut sim, fabric, cfg, "ssd0", PortId(1));
        // Rings + data buffers live in a "host" region on the root port.
        let rings =
            sim.world_mut()
                .expect_mut::<PhysMemory>()
                .alloc_region("host", 1 << 22, PortId::ROOT);
        let sq_base = rings.start;
        let cq_base = rings.start + 64 * 64;
        let msi_addr = rings.start + 0x10000;
        let cq = CompletionQueueReader::new(cq_base, 64);
        let initiator = sim.add(
            "initiator",
            Initiator {
                completions: vec![],
                cq,
            },
        );
        sim.world_mut()
            .expect_mut::<MmioRouting>()
            .claim(AddrRange::new(msi_addr, 0x100), initiator);
        sim.kickoff(
            handle.device,
            AttachQueuePair {
                qid: 1,
                sq_base,
                cq_base,
                depth: 64,
                msi_addr,
                msi_vector: 1,
            },
        );
        let sq = SubmissionQueueWriter::new(sq_base, 64);
        Bench {
            sim,
            handle,
            fabric,
            initiator,
            sq,
            rings,
        }
    }

    /// Data buffer area within the host region (page-aligned).
    fn buf_addr(b: &Bench) -> PhysAddr {
        b.rings.start + 0x20000
    }

    fn submit(b: &mut Bench, cmd: NvmeCommand) {
        let Bench { sim, sq, .. } = b;
        let tail = {
            let mem = sim.world_mut().expect_mut::<PhysMemory>();
            sq.push(mem, &cmd);
            sq.tail()
        };
        b.sim.kickoff(
            b.fabric,
            MmioWrite {
                addr: b.handle.sq_doorbell(1),
                data: (tail as u32).to_le_bytes().to_vec(),
            },
        );
    }

    #[test]
    fn read_returns_flash_contents() {
        let mut b = setup();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let lba = 100;
        b.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(b.handle.lba_addr(lba), &payload);
        let dst = buf_addr(&b);
        submit(
            &mut b,
            NvmeCommand {
                opcode: NvmeOpcode::Read,
                cid: 1,
                nsid: 1,
                prp1: dst,
                prp2: PhysAddr::ZERO,
                slba: lba,
                nlb: 0,
            },
        );
        b.sim.run();
        assert_eq!(b.sim.world().stats.counter_value("init.ok"), 1);
        assert_eq!(
            b.sim.world().expect::<PhysMemory>().read(dst, 4096),
            payload
        );
        // Latency: ≥ flash read latency, within a few tens of us.
        let t = b.sim.now().as_nanos();
        assert!(t >= time::us(14), "{t}");
        assert!(t < time::us(40), "{t}");
    }

    #[test]
    fn write_persists_to_flash() {
        let mut b = setup();
        let payload = vec![0x5Au8; 8192];
        let src = buf_addr(&b);
        b.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(src, &payload);
        submit(
            &mut b,
            NvmeCommand {
                opcode: NvmeOpcode::Write,
                cid: 2,
                nsid: 1,
                prp1: src,
                prp2: src + 4096,
                slba: 500,
                nlb: 1,
            },
        );
        b.sim.run();
        assert_eq!(b.sim.world().stats.counter_value("init.ok"), 1);
        assert_eq!(
            b.sim
                .world()
                .expect::<PhysMemory>()
                .read(b.handle.lba_addr(500), 8192),
            payload
        );
    }

    #[test]
    fn large_read_uses_prp_list() {
        let mut b = setup();
        let len = 64 * 1024;
        let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
        b.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(b.handle.lba_addr(0), &payload);
        let dst = buf_addr(&b);
        let list_page = b.rings.start + 0x18000;
        let prps = PrpList::for_contiguous(dst, len, list_page);
        assert!(!prps.list_entries.is_empty());
        b.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(list_page, &prps.list_bytes());
        submit(
            &mut b,
            NvmeCommand {
                opcode: NvmeOpcode::Read,
                cid: 3,
                nsid: 1,
                prp1: prps.prp1,
                prp2: prps.prp2,
                slba: 0,
                nlb: (len / 4096 - 1) as u16,
            },
        );
        b.sim.run();
        assert_eq!(b.sim.world().stats.counter_value("init.ok"), 1);
        assert_eq!(b.sim.world().expect::<PhysMemory>().read(dst, len), payload);
    }

    #[test]
    fn out_of_range_lba_fails_cleanly() {
        let mut b = setup();
        let prp1 = buf_addr(&b);
        submit(
            &mut b,
            NvmeCommand {
                opcode: NvmeOpcode::Read,
                cid: 4,
                nsid: 1,
                prp1,
                prp2: PhysAddr::ZERO,
                slba: u64::MAX / LBA_SIZE,
                nlb: 0,
            },
        );
        b.sim.run();
        assert_eq!(b.sim.world().stats.counter_value("init.completions"), 1);
        assert_eq!(b.sim.world().stats.counter_value("init.ok"), 0);
    }

    #[test]
    fn misaligned_prp_fails_with_invalid_prp() {
        let mut b = setup();
        let prp1 = buf_addr(&b) + 12; // misaligned
        submit(
            &mut b,
            NvmeCommand {
                opcode: NvmeOpcode::Read,
                cid: 5,
                nsid: 1,
                prp1,
                prp2: PhysAddr::ZERO,
                slba: 0,
                nlb: 0,
            },
        );
        b.sim.run();
        assert_eq!(b.sim.world().stats.counter_value("init.completions"), 1);
        assert_eq!(b.sim.world().stats.counter_value("init.ok"), 0);
    }

    #[test]
    fn pipelined_reads_share_flash_bandwidth() {
        let mut b = setup();
        let n = 8u64;
        let len = 128 * 1024;
        for i in 0..n {
            let data = vec![i as u8; len];
            b.sim
                .world_mut()
                .expect_mut::<PhysMemory>()
                .write(b.handle.lba_addr(i * 64), &data);
        }
        let list_area = b.rings.start + 0x100000;
        for i in 0..n {
            let dst = buf_addr(&b) + i * len as u64;
            let list_page = list_area + i * 4096;
            let prps = PrpList::for_contiguous(dst, len, list_page);
            b.sim
                .world_mut()
                .expect_mut::<PhysMemory>()
                .write(list_page, &prps.list_bytes());
            submit(
                &mut b,
                NvmeCommand {
                    opcode: NvmeOpcode::Read,
                    cid: 10 + i as u16,
                    nsid: 1,
                    prp1: prps.prp1,
                    prp2: prps.prp2,
                    slba: i * 64,
                    nlb: (len / 4096 - 1) as u16,
                },
            );
        }
        b.sim.run();
        assert_eq!(b.sim.world().stats.counter_value("init.ok"), n);
        // Aggregate bandwidth bound: n * len bytes at 17.2 Gbps plus one
        // access latency, with some fabric slack.
        let total_bytes = (n as usize) * len;
        let floor = NvmeConfig::default()
            .read_bandwidth
            .transfer_time(total_bytes);
        let t = b.sim.now().as_nanos();
        assert!(t >= floor, "{t} >= {floor}");
        assert!(t < floor + time::us(120), "{t} < {floor} + slack");
        // Data integrity for each stream.
        for i in 0..n {
            let dst = buf_addr(&b) + i * len as u64;
            let got = b.sim.world().expect::<PhysMemory>().read(dst, len);
            assert!(got.iter().all(|&x| x == i as u8), "stream {i}");
        }
    }

    #[test]
    fn flush_completes_without_data_movement() {
        let mut b = setup();
        submit(
            &mut b,
            NvmeCommand {
                opcode: NvmeOpcode::Flush,
                cid: 9,
                nsid: 1,
                prp1: PhysAddr::ZERO,
                prp2: PhysAddr::ZERO,
                slba: 0,
                nlb: 0,
            },
        );
        b.sim.run();
        assert_eq!(b.sim.world().stats.counter_value("init.ok"), 1);
        assert!(b.sim.now().as_nanos() < time::us(10));
    }

    #[test]
    #[should_panic(expected = "unattached queue")]
    fn doorbell_on_unattached_queue_panics() {
        let mut b = setup();
        b.sim.kickoff(
            b.fabric,
            MmioWrite {
                addr: b.handle.sq_doorbell(5),
                data: 1u32.to_le_bytes().to_vec(),
            },
        );
        b.sim.run();
    }

    #[test]
    fn initiator_component_is_reachable() {
        // Guards against accidentally dropping the initiator from setup().
        let b = setup();
        assert!(b.initiator.index() < b.sim.component_count());
    }

    #[test]
    fn reattach_resets_the_queue_and_abandons_inflight_ops() {
        let mut b = setup();
        let payload = vec![0x77u8; 4096];
        b.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(b.handle.lba_addr(3), &payload);
        let dst = buf_addr(&b);
        submit(
            &mut b,
            NvmeCommand {
                opcode: NvmeOpcode::Read,
                cid: 11,
                nsid: 1,
                prp1: dst,
                prp2: PhysAddr::ZERO,
                slba: 3,
                nlb: 0,
            },
        );
        // Reset qid 1 while the command is mid-flight: the flash read and
        // trailing DMAs land stale, nothing completes, and the ring state
        // is back at zero so a fresh submission works normally.
        let sq_base = b.rings.start;
        let cq_base = b.rings.start + 64 * 64;
        let msi_addr = b.rings.start + 0x10000;
        b.sim.schedule_at(
            dcs_sim::SimTime::from_us(2),
            b.handle.device,
            AttachQueuePair {
                qid: 1,
                sq_base,
                cq_base,
                depth: 64,
                msi_addr,
                msi_vector: 1,
            },
        );
        b.sim.run();
        let stats = &b.sim.world().stats;
        assert_eq!(stats.counter_value("nvme.resets"), 1);
        assert!(stats.counter_value("nvme.reset_aborted_ops") >= 1);
        assert!(stats.counter_value("nvme.stale_completions") >= 1);
        assert_eq!(stats.counter_value("init.completions"), 0);
        assert_eq!(b.sim.world().stats.counter_value("aer.device_reset"), 1);
        // The queue is usable again after the reset: resubmit from a fresh
        // writer (the device's ring state also restarted at zero).
        let mut b2 = Bench {
            sq: SubmissionQueueWriter::new(sq_base, 64),
            ..b
        };
        submit(
            &mut b2,
            NvmeCommand {
                opcode: NvmeOpcode::Read,
                cid: 12,
                nsid: 1,
                prp1: dst,
                prp2: PhysAddr::ZERO,
                slba: 3,
                nlb: 0,
            },
        );
        b2.sim.run();
        assert_eq!(b2.sim.world().stats.counter_value("init.ok"), 1);
        assert_eq!(
            b2.sim.world().expect::<PhysMemory>().read(dst, 4096),
            payload
        );
    }

    #[test]
    fn poisoned_cqe_is_rewritten_from_staging() {
        let mut b = setup();
        // Default recovery gives the fabric 2 ECRC replays; scheduling the
        // completion-class site at draws 0,1,2 burns the budget and poisons
        // the first CQE write. The device then rewrites the entry from its
        // staging copy (draw 3 is clean) and the command still succeeds.
        {
            let mut plan = FaultPlan::new(Rng::new(0xFA11));
            plan.enable(dcs_sim::fault::CPL_CORRUPT, FaultSpec::Nth(vec![0, 1, 2]));
            plan.recovery = RecoveryConfig::default();
            b.sim.world_mut().insert(plan);
        }
        let payload = vec![0x42u8; 4096];
        b.sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(b.handle.lba_addr(9), &payload);
        let dst = buf_addr(&b);
        submit(
            &mut b,
            NvmeCommand {
                opcode: NvmeOpcode::Read,
                cid: 21,
                nsid: 1,
                prp1: dst,
                prp2: PhysAddr::ZERO,
                slba: 9,
                nlb: 0,
            },
        );
        b.sim.run();
        let stats = &b.sim.world().stats;
        assert_eq!(stats.counter_value("nvme.cqe_rewrites"), 1);
        assert_eq!(
            stats.counter_value("init.ok"),
            1,
            "command completes after the rewrite"
        );
        assert_eq!(
            b.sim.world().expect::<PhysMemory>().read(dst, 4096),
            payload
        );
        // Conservation at the fabric: 3 injected = 2 replays + 1 poison.
        let tallies: std::collections::BTreeMap<_, _> =
            b.sim.world().expect::<FaultPlan>().tallies().collect();
        let t = tallies[dcs_sim::fault::CPL_CORRUPT];
        assert_eq!((t.injected, t.recovered, t.exhausted), (3, 2, 1));
    }
}
