//! Submission/completion ring helpers shared by every NVMe initiator.
//!
//! Both the host NVMe driver (baseline designs) and the HDC Engine's NVMe
//! controller (DCS-ctrl) drive the device through rings in memory — host
//! DRAM for the former, FPGA BRAM for the latter (§IV-C). These helpers
//! own the producer/consumer indices and serialize entries into simulated
//! memory; initiators differ only in where the rings live and how entry
//! writes are charged for time.

use dcs_pcie::{PhysAddr, PhysMemory};

use crate::spec::{NvmeCommand, NvmeCompletion};

/// Producer-side view of a submission queue ring.
#[derive(Clone, Debug)]
pub struct SubmissionQueueWriter {
    base: PhysAddr,
    depth: u16,
    tail: u16,
    head: u16,
}

impl SubmissionQueueWriter {
    /// A writer for a ring of `depth` entries at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(base: PhysAddr, depth: u16) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        SubmissionQueueWriter {
            base,
            depth,
            tail: 0,
            head: 0,
        }
    }

    /// Ring base address.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Current tail index (the value to write to the tail doorbell).
    pub fn tail(&self) -> u16 {
        self.tail
    }

    /// Number of free slots (one slot is sacrificed to distinguish full
    /// from empty, as the spec requires).
    pub fn free_slots(&self) -> u16 {
        self.depth - 1 - (self.tail.wrapping_sub(self.head) % self.depth)
    }

    /// Whether the ring has room for another entry.
    pub fn is_full(&self) -> bool {
        self.free_slots() == 0
    }

    /// Records the device's reported SQ head (from a completion entry),
    /// freeing consumed slots.
    pub fn update_head(&mut self, head: u16) {
        self.head = head % self.depth;
    }

    /// Writes `cmd` into the next slot and advances the tail. Returns the
    /// slot's address (initiators charge the 64-byte entry write to their
    /// own cost model).
    ///
    /// # Panics
    ///
    /// Panics if the ring is full — callers must check
    /// [`SubmissionQueueWriter::is_full`] first, as real initiators do.
    pub fn push(&mut self, mem: &mut PhysMemory, cmd: &NvmeCommand) -> PhysAddr {
        assert!(!self.is_full(), "submission queue overflow");
        let slot = self.base + self.tail as u64 * NvmeCommand::SIZE as u64;
        mem.write(slot, &cmd.to_bytes());
        self.tail = (self.tail + 1) % self.depth;
        slot
    }
}

/// Consumer-side view of a completion queue ring, tracking the phase tag.
#[derive(Clone, Debug)]
pub struct CompletionQueueReader {
    base: PhysAddr,
    depth: u16,
    head: u16,
    phase: bool,
}

impl CompletionQueueReader {
    /// A reader for a ring of `depth` entries at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(base: PhysAddr, depth: u16) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        // Phase starts at 1: the device's first pass writes entries with
        // the phase bit set.
        CompletionQueueReader {
            base,
            depth,
            head: 0,
            phase: true,
        }
    }

    /// Ring base address.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Current head index (the value to write to the head doorbell after
    /// consuming entries).
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Pops the next completion if one with the expected phase tag is
    /// present (i.e. the device has written it).
    pub fn pop(&mut self, mem: &PhysMemory) -> Option<NvmeCompletion> {
        let slot = self.base + self.head as u64 * NvmeCompletion::SIZE as u64;
        let bytes: [u8; NvmeCompletion::SIZE] = mem
            .read(slot, NvmeCompletion::SIZE)
            .try_into()
            .expect("16 bytes");
        let entry = NvmeCompletion::from_bytes(&bytes);
        if entry.phase != self.phase {
            return None;
        }
        self.head += 1;
        if self.head == self.depth {
            self.head = 0;
            self.phase = !self.phase;
        }
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{NvmeOpcode, NvmeStatus};
    use dcs_pcie::PortId;

    fn mem_with_region(len: u64) -> (PhysMemory, PhysAddr) {
        let mut m = PhysMemory::new();
        let r = m.alloc_region("ring", len, PortId::ROOT);
        (m, r.start)
    }

    fn cmd(cid: u16) -> NvmeCommand {
        NvmeCommand {
            opcode: NvmeOpcode::Read,
            cid,
            nsid: 1,
            prp1: PhysAddr(0x1000),
            prp2: PhysAddr::ZERO,
            slba: 0,
            nlb: 0,
        }
    }

    #[test]
    fn sq_push_serializes_entries_in_ring_order() {
        let (mut mem, base) = mem_with_region(64 * 64);
        let mut sq = SubmissionQueueWriter::new(base, 64);
        let s0 = sq.push(&mut mem, &cmd(10));
        let s1 = sq.push(&mut mem, &cmd(11));
        assert_eq!(s0, base);
        assert_eq!(s1, base + 64);
        assert_eq!(sq.tail(), 2);
        let raw: [u8; 64] = mem.read(s1, 64).try_into().unwrap();
        assert_eq!(NvmeCommand::from_bytes(&raw).unwrap().cid, 11);
    }

    #[test]
    fn sq_full_detection_and_head_updates() {
        let (mut mem, base) = mem_with_region(4 * 64);
        let mut sq = SubmissionQueueWriter::new(base, 4);
        assert_eq!(sq.free_slots(), 3);
        for i in 0..3 {
            sq.push(&mut mem, &cmd(i));
        }
        assert!(sq.is_full());
        sq.update_head(2); // device consumed two
        assert_eq!(sq.free_slots(), 2);
        sq.push(&mut mem, &cmd(100)); // wraps to slot 3 then 0
        assert_eq!(sq.tail(), 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn sq_overflow_panics() {
        let (mut mem, base) = mem_with_region(2 * 64);
        let mut sq = SubmissionQueueWriter::new(base, 2);
        sq.push(&mut mem, &cmd(0));
        sq.push(&mut mem, &cmd(1));
    }

    #[test]
    fn cq_pop_respects_phase_tag() {
        let (mut mem, base) = mem_with_region(4 * 16);
        let mut cq = CompletionQueueReader::new(base, 4);
        // Nothing written yet: all-zero entries have phase 0 != expected 1.
        assert!(cq.pop(&mem).is_none());
        let entry = NvmeCompletion {
            sq_head: 1,
            sq_id: 1,
            cid: 77,
            phase: true,
            status: NvmeStatus::Success,
        };
        mem.write(base, &entry.to_bytes());
        let got = cq.pop(&mem).expect("entry with correct phase");
        assert_eq!(got.cid, 77);
        assert_eq!(cq.head(), 1);
        // Same slot again: stale (already consumed), head moved on.
        assert!(cq.pop(&mem).is_none());
    }

    #[test]
    fn cq_phase_flips_on_wraparound() {
        let (mut mem, base) = mem_with_region(2 * 16);
        let mut cq = CompletionQueueReader::new(base, 2);
        let mk = |cid, phase| NvmeCompletion {
            sq_head: 0,
            sq_id: 1,
            cid,
            phase,
            status: NvmeStatus::Success,
        };
        mem.write(base, &mk(1, true).to_bytes());
        mem.write(base + 16, &mk(2, true).to_bytes());
        assert_eq!(cq.pop(&mem).unwrap().cid, 1);
        assert_eq!(cq.pop(&mem).unwrap().cid, 2);
        // Wrapped: now expects phase = false. Old phase-1 entries are stale.
        mem.write(base, &mk(3, true).to_bytes());
        assert!(cq.pop(&mem).is_none());
        mem.write(base, &mk(4, false).to_bytes());
        assert_eq!(cq.pop(&mem).unwrap().cid, 4);
    }
}
