//! # dcs-nvme — a functional NVMe SSD device model
//!
//! DCS-ctrl's flexibility claim rests on the HDC Engine speaking the
//! *standard* command protocols of off-the-shelf devices (§III-C): its NVMe
//! controller allocates a submission/completion queue pair in FPGA BRAM,
//! builds real NVMe commands, rings the drive's doorbell registers over
//! PCIe P2P, and consumes completions — exactly what a host driver does.
//! This crate models the drive side of that contract:
//!
//! * [`spec`] — wire-format structures: 64-byte submission entries, 16-byte
//!   completion entries with phase bits, PRP data-pointer handling. These
//!   are real bytes written to and parsed from simulated memory, so any
//!   component that builds a malformed command is caught the way real
//!   hardware would catch it.
//! * [`queue`] — producer/consumer helpers for submission and completion
//!   rings shared by the host driver ([`dcs-host`](../dcs_host/index.html))
//!   and the HDC Engine's NVMe controller.
//! * [`device`] — the SSD component: doorbell MMIO, command fetch over DMA,
//!   flash timing (Intel 750-like: 17.2 Gbps read / 7.2 Gbps write), PRP
//!   resolution, data DMA, completion write-back, MSI.
//!
//! Timing parameters default to the paper's Intel SSD 750 (Table V).

pub mod device;
pub mod queue;
pub mod spec;

pub use device::{install_nvme, AttachQueuePair, NvmeConfig, NvmeDevice, NvmeHandle};
pub use queue::{CompletionQueueReader, SubmissionQueueWriter};
pub use spec::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus, PrpList, LBA_SIZE};
