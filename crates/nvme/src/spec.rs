//! NVMe wire-format structures (NVM Express 1.2, the revision the paper
//! cites as \[40\]).
//!
//! Commands and completions serialize to their real on-the-wire layouts and
//! are written into / parsed out of simulated memory, so the HDC Engine's
//! NVMe controller and the host driver interoperate with the device model
//! through actual bytes, not Rust structs.

use dcs_pcie::PhysAddr;

/// Logical block size used by all namespaces in the model (the Intel 750
/// supports 4 KiB-formatted namespaces; 4 KiB also matches the paper's
/// per-command transfer unit in §IV-C).
pub const LBA_SIZE: u64 = 4096;

/// Memory page size assumed by PRP handling (`CC.MPS` = 4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// NVM command-set opcodes used in the model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum NvmeOpcode {
    /// Flush (no-op in the model: writes are durable at completion).
    Flush = 0x00,
    /// Write logical blocks.
    Write = 0x01,
    /// Read logical blocks.
    Read = 0x02,
}

impl NvmeOpcode {
    /// Parses an opcode byte.
    pub fn from_u8(v: u8) -> Option<NvmeOpcode> {
        match v {
            0x00 => Some(NvmeOpcode::Flush),
            0x01 => Some(NvmeOpcode::Write),
            0x02 => Some(NvmeOpcode::Read),
            _ => None,
        }
    }
}

/// Command completion status (generic command status codes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NvmeStatus {
    /// Successful completion.
    Success,
    /// Opcode not supported.
    InvalidOpcode,
    /// PRP offset or alignment rules violated.
    InvalidPrp,
    /// LBA range exceeds namespace capacity.
    LbaOutOfRange,
    /// Unrecovered read error from the medium (SCT=2 media error). A
    /// transient flash fault: the spec marks it retryable and hosts are
    /// expected to resubmit within their retry budget.
    MediaError,
    /// Data transfer error (generic SC=0x04): the controller detected a
    /// transport-level problem moving data — in this model, a poisoned
    /// TLP on a command's data or PRP-list DMA. Transient at the fabric
    /// level, so retryable, but the retry is a *resubmission of the
    /// whole command*; the corrupted transfer itself is never completed
    /// as success.
    DataTransferError,
}

impl NvmeStatus {
    /// Status-field encoding (SCT in bits 10:8, low bits = status code).
    pub fn to_code(self) -> u16 {
        match self {
            NvmeStatus::Success => 0x0000,
            NvmeStatus::InvalidOpcode => 0x0001,
            NvmeStatus::InvalidPrp => 0x0013,
            NvmeStatus::LbaOutOfRange => 0x0080,
            NvmeStatus::MediaError => 0x0281, // SCT=2, SC=0x81 unrecovered read
            NvmeStatus::DataTransferError => 0x0004,
        }
    }

    /// Decodes a status field.
    pub fn from_code(code: u16) -> NvmeStatus {
        match code & 0x7FF {
            0x0000 => NvmeStatus::Success,
            0x0004 => NvmeStatus::DataTransferError,
            0x0013 => NvmeStatus::InvalidPrp,
            0x0080 => NvmeStatus::LbaOutOfRange,
            0x0281 => NvmeStatus::MediaError,
            _ => NvmeStatus::InvalidOpcode,
        }
    }

    /// Whether the status signals success.
    pub fn is_ok(self) -> bool {
        self == NvmeStatus::Success
    }

    /// Whether resubmitting the command may succeed (transient faults).
    pub fn is_retryable(self) -> bool {
        matches!(self, NvmeStatus::MediaError | NvmeStatus::DataTransferError)
    }
}

/// A 64-byte NVM submission-queue entry.
///
/// Only the fields the model interprets are meaningful; the rest serialize
/// as zeros, as a real initiator would leave reserved fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NvmeCommand {
    /// Opcode (CDW0 bits 07:00).
    pub opcode: NvmeOpcode,
    /// Command identifier (CDW0 bits 31:16), echoed in the completion.
    pub cid: u16,
    /// Namespace identifier.
    pub nsid: u32,
    /// PRP entry 1: first data page.
    pub prp1: PhysAddr,
    /// PRP entry 2: second page, or pointer to a PRP list.
    pub prp2: PhysAddr,
    /// Starting LBA (CDW10/11).
    pub slba: u64,
    /// Number of logical blocks, zero-based (CDW12 bits 15:00).
    pub nlb: u16,
}

impl NvmeCommand {
    /// Size of a submission entry in bytes.
    pub const SIZE: usize = 64;

    /// Transfer length in bytes implied by `nlb` (zero-based field).
    pub fn transfer_len(&self) -> usize {
        (self.nlb as usize + 1) * LBA_SIZE as usize
    }

    /// Serializes to the 64-byte submission-entry layout.
    pub fn to_bytes(&self) -> [u8; Self::SIZE] {
        let mut b = [0u8; Self::SIZE];
        b[0] = self.opcode as u8;
        b[2..4].copy_from_slice(&self.cid.to_le_bytes());
        b[4..8].copy_from_slice(&self.nsid.to_le_bytes());
        b[24..32].copy_from_slice(&self.prp1.as_u64().to_le_bytes());
        b[32..40].copy_from_slice(&self.prp2.as_u64().to_le_bytes());
        b[40..48].copy_from_slice(&self.slba.to_le_bytes());
        b[48..50].copy_from_slice(&self.nlb.to_le_bytes());
        b
    }

    /// Parses a 64-byte submission entry.
    ///
    /// Returns `None` for opcodes outside the supported NVM set — the
    /// device completes such commands with
    /// [`NvmeStatus::InvalidOpcode`].
    pub fn from_bytes(b: &[u8; Self::SIZE]) -> Option<NvmeCommand> {
        let opcode = NvmeOpcode::from_u8(b[0])?;
        Some(NvmeCommand {
            opcode,
            cid: u16::from_le_bytes([b[2], b[3]]),
            nsid: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
            prp1: PhysAddr(u64::from_le_bytes(b[24..32].try_into().expect("8 bytes"))),
            prp2: PhysAddr(u64::from_le_bytes(b[32..40].try_into().expect("8 bytes"))),
            slba: u64::from_le_bytes(b[40..48].try_into().expect("8 bytes")),
            nlb: u16::from_le_bytes([b[48], b[49]]),
        })
    }
}

/// A 16-byte completion-queue entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NvmeCompletion {
    /// Submission-queue head pointer at completion time.
    pub sq_head: u16,
    /// Submission queue the command came from.
    pub sq_id: u16,
    /// Command identifier being completed.
    pub cid: u16,
    /// Phase tag — toggles each pass around the CQ ring.
    pub phase: bool,
    /// Completion status.
    pub status: NvmeStatus,
}

impl NvmeCompletion {
    /// Size of a completion entry in bytes.
    pub const SIZE: usize = 16;

    /// Serializes to the 16-byte completion-entry layout.
    pub fn to_bytes(&self) -> [u8; Self::SIZE] {
        let mut b = [0u8; Self::SIZE];
        b[8..10].copy_from_slice(&self.sq_head.to_le_bytes());
        b[10..12].copy_from_slice(&self.sq_id.to_le_bytes());
        b[12..14].copy_from_slice(&self.cid.to_le_bytes());
        let sf = (self.status.to_code() << 1) | self.phase as u16;
        b[14..16].copy_from_slice(&sf.to_le_bytes());
        b
    }

    /// Parses a 16-byte completion entry.
    pub fn from_bytes(b: &[u8; Self::SIZE]) -> NvmeCompletion {
        let sf = u16::from_le_bytes([b[14], b[15]]);
        NvmeCompletion {
            sq_head: u16::from_le_bytes([b[8], b[9]]),
            sq_id: u16::from_le_bytes([b[10], b[11]]),
            cid: u16::from_le_bytes([b[12], b[13]]),
            phase: sf & 1 == 1,
            status: NvmeStatus::from_code(sf >> 1),
        }
    }
}

/// Builds and resolves PRP (Physical Region Page) data pointers.
///
/// NVMe describes a data buffer as up to two inline page pointers, or one
/// inline pointer plus a pointer to a *PRP list* page holding further
/// 8-byte entries. The paper's §IV-C notes that HDC Engine "uses a PRP list
/// to transfer multiple blocks with a single NVMe command" — this type is
/// that mechanism, shared by every initiator in the model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrpList {
    /// First data pointer (may carry a page offset for the first page).
    pub prp1: PhysAddr,
    /// Second data pointer or list pointer (zero when unused).
    pub prp2: PhysAddr,
    /// Entries stored in the external list page, if one is needed.
    pub list_entries: Vec<PhysAddr>,
}

impl PrpList {
    /// Describes a *page-aligned, physically contiguous* buffer of `len`
    /// bytes at `base`, writing an external PRP list page at `list_page`
    /// when more than two pages are spanned.
    ///
    /// Returns the descriptor; if `list_entries` is non-empty the caller
    /// must store those 8-byte little-endian entries at `list_page` before
    /// submitting the command (a real initiator DMA-writes the list page).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned, `len` is zero, or the list
    /// would exceed one page (512 entries ⇒ 2 MiB max, beyond the model's
    /// 1 MiB max transfer).
    pub fn for_contiguous(base: PhysAddr, len: usize, list_page: PhysAddr) -> PrpList {
        assert!(len > 0, "empty data buffer");
        assert!(
            base.as_u64().is_multiple_of(PAGE_SIZE),
            "PRP1 must be page-aligned in this model"
        );
        let pages = (len as u64).div_ceil(PAGE_SIZE);
        match pages {
            1 => PrpList {
                prp1: base,
                prp2: PhysAddr::ZERO,
                list_entries: vec![],
            },
            2 => PrpList {
                prp1: base,
                prp2: base + PAGE_SIZE,
                list_entries: vec![],
            },
            n => {
                assert!(n <= 512, "transfer exceeds one PRP list page");
                let list_entries = (1..n).map(|i| base + i * PAGE_SIZE).collect::<Vec<_>>();
                PrpList {
                    prp1: base,
                    prp2: list_page,
                    list_entries,
                }
            }
        }
    }

    /// Serializes the external list entries (empty when none are needed).
    pub fn list_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.list_entries.len() * 8);
        for e in &self.list_entries {
            out.extend_from_slice(&e.as_u64().to_le_bytes());
        }
        out
    }

    /// Parses `n` entries of an external PRP list page.
    pub fn parse_list(bytes: &[u8], n: usize) -> Vec<PhysAddr> {
        assert!(bytes.len() >= n * 8, "PRP list page too short");
        (0..n)
            .map(|i| {
                PhysAddr(u64::from_le_bytes(
                    bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"),
                ))
            })
            .collect()
    }

    /// The page addresses a transfer of `len` bytes covers, in order,
    /// given the resolved pointers (prp1, prp2-or-list).
    ///
    /// `resolved_list` must be the parsed external list when one is in use.
    /// Returns `None` if any pointer beyond the first is not page-aligned
    /// (the device fails such commands with [`NvmeStatus::InvalidPrp`]).
    pub fn data_pages(
        prp1: PhysAddr,
        prp2: PhysAddr,
        resolved_list: &[PhysAddr],
        len: usize,
    ) -> Option<Vec<PhysAddr>> {
        let pages = (len as u64).div_ceil(PAGE_SIZE);
        let mut out = Vec::with_capacity(pages as usize);
        out.push(prp1);
        match pages {
            0 | 1 => {}
            2 if resolved_list.is_empty() => {
                if !prp2.as_u64().is_multiple_of(PAGE_SIZE) {
                    return None;
                }
                out.push(prp2);
            }
            _ => {
                if resolved_list.len() != pages as usize - 1 {
                    return None;
                }
                for &e in resolved_list {
                    if e.as_u64() % PAGE_SIZE != 0 {
                        return None;
                    }
                    out.push(e);
                }
            }
        }
        Some(out)
    }

    /// Coalesces an ordered page list into maximal physically-contiguous
    /// `(addr, len)` runs so the device can issue one DMA per run (the
    /// common case — one run — keeps event counts low).
    pub fn coalesce(pages: &[PhysAddr], len: usize) -> Vec<(PhysAddr, usize)> {
        let mut runs: Vec<(PhysAddr, usize)> = Vec::new();
        let mut remaining = len;
        for (i, &p) in pages.iter().enumerate() {
            let this = remaining.min(PAGE_SIZE as usize);
            remaining -= this;
            match runs.last_mut() {
                Some((start, run_len)) if *start + *run_len as u64 == p && i != 0 => {
                    *run_len += this;
                }
                _ => runs.push((p, this)),
            }
        }
        debug_assert_eq!(remaining, 0);
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrips_through_bytes() {
        let cmd = NvmeCommand {
            opcode: NvmeOpcode::Read,
            cid: 0xBEEF,
            nsid: 1,
            prp1: PhysAddr(0x1000),
            prp2: PhysAddr(0x2000),
            slba: 0x1234_5678_9ABC,
            nlb: 31,
        };
        let bytes = cmd.to_bytes();
        assert_eq!(bytes[0], 0x02);
        assert_eq!(NvmeCommand::from_bytes(&bytes), Some(cmd));
        assert_eq!(cmd.transfer_len(), 32 * 4096);
    }

    #[test]
    fn unknown_opcode_parses_to_none() {
        let mut bytes = [0u8; 64];
        bytes[0] = 0x99;
        assert_eq!(NvmeCommand::from_bytes(&bytes), None);
    }

    #[test]
    fn completion_roundtrips_with_phase_and_status() {
        for phase in [false, true] {
            for status in [
                NvmeStatus::Success,
                NvmeStatus::LbaOutOfRange,
                NvmeStatus::InvalidPrp,
                NvmeStatus::MediaError,
                NvmeStatus::DataTransferError,
            ] {
                let c = NvmeCompletion {
                    sq_head: 7,
                    sq_id: 1,
                    cid: 42,
                    phase,
                    status,
                };
                let parsed = NvmeCompletion::from_bytes(&c.to_bytes());
                assert_eq!(parsed, c);
            }
        }
    }

    #[test]
    fn status_codes_match_spec_values() {
        assert_eq!(NvmeStatus::Success.to_code(), 0);
        assert_eq!(NvmeStatus::LbaOutOfRange.to_code(), 0x80);
        assert_eq!(NvmeStatus::MediaError.to_code(), 0x281);
        assert_eq!(NvmeStatus::from_code(0x281), NvmeStatus::MediaError);
        assert!(NvmeStatus::Success.is_ok());
        assert!(!NvmeStatus::InvalidPrp.is_ok());
        assert!(NvmeStatus::MediaError.is_retryable());
        assert!(!NvmeStatus::LbaOutOfRange.is_retryable());
        assert_eq!(NvmeStatus::DataTransferError.to_code(), 0x0004);
        assert_eq!(NvmeStatus::from_code(0x0004), NvmeStatus::DataTransferError);
        assert!(NvmeStatus::DataTransferError.is_retryable());
    }

    #[test]
    fn prp_one_page() {
        let p = PrpList::for_contiguous(PhysAddr(0x1000), 100, PhysAddr(0xF000));
        assert_eq!(p.prp1, PhysAddr(0x1000));
        assert_eq!(p.prp2, PhysAddr::ZERO);
        assert!(p.list_entries.is_empty());
    }

    #[test]
    fn prp_two_pages_inline() {
        let p = PrpList::for_contiguous(PhysAddr(0x1000), 8192, PhysAddr(0xF000));
        assert_eq!(p.prp2, PhysAddr(0x2000));
        assert!(p.list_entries.is_empty());
    }

    #[test]
    fn prp_list_for_many_pages() {
        let p = PrpList::for_contiguous(PhysAddr(0x10000), 5 * 4096, PhysAddr(0xF000));
        assert_eq!(p.prp2, PhysAddr(0xF000));
        assert_eq!(p.list_entries.len(), 4);
        assert_eq!(p.list_entries[0], PhysAddr(0x11000));
        let bytes = p.list_bytes();
        assert_eq!(PrpList::parse_list(&bytes, 4), p.list_entries);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn prp_rejects_unaligned_base() {
        let _ = PrpList::for_contiguous(PhysAddr(0x1004), 100, PhysAddr(0xF000));
    }

    #[test]
    fn data_pages_resolution_and_validation() {
        // Two inline pages.
        let pages = PrpList::data_pages(PhysAddr(0x1000), PhysAddr(0x2000), &[], 8192).unwrap();
        assert_eq!(pages, vec![PhysAddr(0x1000), PhysAddr(0x2000)]);
        // Misaligned prp2 is rejected.
        assert!(PrpList::data_pages(PhysAddr(0x1000), PhysAddr(0x2004), &[], 8192).is_none());
        // List with wrong entry count is rejected.
        assert!(PrpList::data_pages(
            PhysAddr(0x1000),
            PhysAddr(0xF000),
            &[PhysAddr(0x2000)],
            3 * 4096
        )
        .is_none());
    }

    #[test]
    fn coalesce_merges_contiguous_runs() {
        let pages = vec![
            PhysAddr(0x1000),
            PhysAddr(0x2000),
            PhysAddr(0x3000),
            PhysAddr(0x9000), // gap
            PhysAddr(0xA000),
        ];
        let runs = PrpList::coalesce(&pages, 5 * 4096);
        assert_eq!(
            runs,
            vec![(PhysAddr(0x1000), 3 * 4096), (PhysAddr(0x9000), 2 * 4096)]
        );
        // Short tail: last page partially used.
        let runs = PrpList::coalesce(&pages[..2], 4096 + 100);
        assert_eq!(runs, vec![(PhysAddr(0x1000), 4196)]);
    }
}
