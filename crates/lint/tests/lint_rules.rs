//! Integration tests: each rule against its fixture (positive hit,
//! pragma-suppressed, baseline-suppressed), plus a gate that the real
//! workspace is clean modulo the checked-in baseline — so a determinism
//! hazard reintroduced anywhere fails `cargo test`, not just CI.

use std::path::Path;

use dcs_lint::baseline::Baseline;
use dcs_lint::rules::{Finding, Suppression};
use dcs_lint::{analyze_source, source_line, workspace_files};

const DETERMINISM: &str = include_str!("fixtures/determinism.rs");
const INVARIANTS: &str = include_str!("fixtures/invariants.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");
const FIXTURE_BASELINE: &str = include_str!("fixtures/baseline.toml");

fn active<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .collect()
}

#[test]
fn determinism_fixture_trips_every_determinism_rule() {
    let f = analyze_source("crates/fixture/src/determinism.rs", DETERMINISM);
    // HashMap (use + 2 decls + ctor) and HashSet each count.
    assert!(active(&f, "hash-collection").len() >= 4, "{f:#?}");
    // Field iter(), field for-loop, retain, local values().
    assert!(active(&f, "hash-iter").len() >= 4, "{f:#?}");
    assert_eq!(active(&f, "wall-clock").len(), 2, "{f:#?}");
    assert_eq!(active(&f, "ambient-rng").len(), 2, "{f:#?}");
    assert_eq!(active(&f, "thread-spawn").len(), 1, "{f:#?}");
}

#[test]
fn invariants_fixture_trips_every_invariant_rule() {
    let f = analyze_source("crates/nvme/src/fixture.rs", INVARIANTS);
    // handle() + on_dma_complete(); the messaged expect, the non-event
    // fn, and the #[cfg(test)] unwrap are all sanctioned.
    let unwraps = active(&f, "unwrap-in-event-path");
    assert_eq!(unwraps.len(), 2, "{f:#?}");
    assert_eq!(active(&f, "wildcard-event-arm").len(), 1, "{f:#?}");
    // deadline_time and dma_addr truncate; `count as u32` is fine.
    assert_eq!(active(&f, "lossy-cast").len(), 2, "{f:#?}");
}

#[test]
fn wildcard_arm_is_scoped_to_protocol_crates() {
    let elsewhere = analyze_source("crates/cluster/src/fixture.rs", INVARIANTS);
    assert!(active(&elsewhere, "wildcard-event-arm").is_empty());
    // The path-independent rules still fire there.
    assert_eq!(active(&elsewhere, "unwrap-in-event-path").len(), 2);
}

#[test]
fn pragmas_suppress_exactly_their_rule_and_line() {
    let f = analyze_source("crates/fixture/src/suppressed.rs", SUPPRESSED);

    // Same-line pragma on the `use`.
    let hash: Vec<_> = f.iter().filter(|f| f.rule == "hash-collection").collect();
    assert!(
        hash.iter()
            .any(|f| f.suppressed == Some(Suppression::Pragma)),
        "use-line pragma must suppress: {hash:#?}"
    );
    // The `HashMap` in `fn table() -> HashMap<u8, u8>` return type has
    // no pragma on its line: still active.
    assert!(!active(&f, "hash-collection").is_empty(), "{f:#?}");

    // Pragma above `fn timed()` covers the signature line, not the
    // Instant::now() two lines down: wall-clock stays active.
    assert_eq!(active(&f, "wall-clock").len(), 2, "{f:#?}");

    // Pragma directly above the spawn call suppresses it.
    assert!(active(&f, "thread-spawn").is_empty(), "{f:#?}");

    // Reasonless pragma: suppresses nothing, and is itself a finding.
    assert_eq!(active(&f, "ambient-rng").len(), 1, "{f:#?}");
    assert!(!active(&f, "pragma-missing-reason").is_empty(), "{f:#?}");
}

#[test]
fn baseline_grandfathers_and_reports_stale_entries() {
    let mut baseline = Baseline::parse(FIXTURE_BASELINE).expect("fixture baseline parses");
    let mut findings = analyze_source("crates/fixture/src/suppressed.rs", SUPPRESSED);
    for f in findings.iter_mut() {
        baseline.apply(f, source_line(SUPPRESSED, f.line));
    }
    // The thread_rng and SystemTime::now sites are grandfathered…
    let baselined: Vec<_> = findings
        .iter()
        .filter(|f| f.suppressed == Some(Suppression::Baseline))
        .map(|f| f.rule)
        .collect();
    assert!(baselined.contains(&"ambient-rng"), "{findings:#?}");
    assert!(baselined.contains(&"wall-clock"), "{findings:#?}");
    // …while the entry pointing at a nonexistent file is stale.
    let stale = baseline.stale();
    assert_eq!(stale.len(), 1, "{stale:#?}");
    assert_eq!(stale[0].file, "crates/fixture/src/nonexistent.rs");
}

#[test]
fn baseline_does_not_cover_other_files_or_rules() {
    let mut baseline = Baseline::parse(FIXTURE_BASELINE).expect("parses");
    let mut findings = analyze_source("crates/fixture/src/other.rs", SUPPRESSED);
    for f in findings.iter_mut() {
        baseline.apply(f, source_line(SUPPRESSED, f.line));
    }
    assert!(
        findings
            .iter()
            .all(|f| f.suppressed != Some(Suppression::Baseline)),
        "entries are file-scoped: {findings:#?}"
    );
}

#[test]
fn allow_file_pragma_below_first_item_still_covers_whole_file() {
    // An allow-file pragma is position-independent: sitting at the
    // bottom of the file (below every item) it still waives the rule
    // everywhere above it.
    let src = "\
use std::collections::HashMap;
struct A { x: HashMap<u8, u8> }
// dcs-lint: allow-file(hash-collection) — interior index, never iterated
";
    let f = analyze_source("crates/x/src/lib.rs", src);
    let hash: Vec<_> = f.iter().filter(|f| f.rule == "hash-collection").collect();
    assert!(hash.len() >= 2, "{f:#?}");
    assert!(
        hash.iter()
            .all(|f| f.suppressed == Some(Suppression::Pragma)),
        "bottom-of-file allow-file must suppress lines above it: {f:#?}"
    );
}

#[test]
fn reasonless_pragma_is_rejected_even_for_allow_file() {
    let src = "\
// dcs-lint: allow-file(hash-collection)
use std::collections::HashMap;
";
    let f = analyze_source("crates/x/src/lib.rs", src);
    assert!(!active(&f, "hash-collection").is_empty(), "{f:#?}");
    assert!(!active(&f, "pragma-missing-reason").is_empty(), "{f:#?}");
}

#[test]
fn stale_pragma_is_flagged_once_the_violation_is_gone() {
    // The pragma once waived a HashMap on this line; the HashMap was
    // fixed but the pragma stayed behind.
    let src = "use dcs_sim::DetMap; // dcs-lint: allow(hash-collection) — index only\n";
    let f = analyze_source("crates/x/src/lib.rs", src);
    let stale = active(&f, "stale-pragma");
    assert_eq!(stale.len(), 1, "{f:#?}");
    assert!(stale[0].message.contains("hash-collection"));

    // A pragma that still suppresses something is NOT stale.
    let live = "use std::collections::HashMap; // dcs-lint: allow(hash-collection) — index only\n";
    let f = analyze_source("crates/x/src/lib.rs", live);
    assert!(active(&f, "stale-pragma").is_empty(), "{f:#?}");
}

#[test]
fn workspace_rule_pragmas_are_not_judged_stale_per_file() {
    // analyze_source never runs the workspace pass, so it cannot know
    // whether a shared-mut-state pragma is stale — it must stay silent
    // rather than cry wolf.
    let src = "struct S { x: u8 } // dcs-lint: allow(shared-mut-state) — judged by full run\n";
    let f = analyze_source("crates/nic/src/s.rs", src);
    assert!(active(&f, "stale-pragma").is_empty(), "{f:#?}");
}

/// The lint gate's coverage: the walk must include the root `tests/`
/// and `examples/` trees and every crate (crates/bench included) — a
/// determinism hazard in a benchmark harness or example skews the
/// paper tables just as surely as one in the library.
#[test]
fn workspace_walk_covers_tests_examples_and_bench() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root");
    let files = workspace_files(&root).expect("walk workspace");
    let rels: Vec<String> = files
        .iter()
        .map(|p| {
            p.strip_prefix(&root)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect();
    for required in ["tests/", "examples/", "crates/bench/", "src/"] {
        assert!(
            rels.iter().any(|r| r.starts_with(required)),
            "lint walk must cover `{required}`: {rels:?}"
        );
    }
    // And the exclusions hold: no build output, no rule fixtures
    // (which are violations on purpose).
    assert!(
        rels.iter()
            .all(|r| !r.contains("target/") && !r.contains("fixtures/")),
        "{rels:?}"
    );
}

/// The real workspace must be clean modulo the checked-in baseline.
/// This is the same gate CI runs (`--workspace --deny`), enforced from
/// `cargo test` so a stray HashMap or Instant::now cannot land even
/// when CI is skipped.
#[test]
fn workspace_is_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root");
    let files = workspace_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks wrong: {} files",
        files.len()
    );

    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.toml")).expect("baseline exists");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");

    let report = dcs_lint::run(&root, &files, Some(baseline)).expect("lint run");
    let active: Vec<String> = report
        .active()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        active.is_empty() && report.stale_baseline.is_empty(),
        "workspace must lint clean.\nactive:\n{}\nstale:\n{}",
        active.join("\n"),
        report.stale_baseline.join("\n")
    );
}
