//! Integration tests: each rule against its fixture (positive hit,
//! pragma-suppressed, baseline-suppressed), plus a gate that the real
//! workspace is clean modulo the checked-in baseline — so a determinism
//! hazard reintroduced anywhere fails `cargo test`, not just CI.

use std::path::Path;

use dcs_lint::baseline::Baseline;
use dcs_lint::rules::{Finding, Suppression};
use dcs_lint::{analyze_source, source_line, workspace_files};

const DETERMINISM: &str = include_str!("fixtures/determinism.rs");
const INVARIANTS: &str = include_str!("fixtures/invariants.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");
const FIXTURE_BASELINE: &str = include_str!("fixtures/baseline.toml");

fn active<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .collect()
}

#[test]
fn determinism_fixture_trips_every_determinism_rule() {
    let f = analyze_source("crates/fixture/src/determinism.rs", DETERMINISM);
    // HashMap (use + 2 decls + ctor) and HashSet each count.
    assert!(active(&f, "hash-collection").len() >= 4, "{f:#?}");
    // Field iter(), field for-loop, retain, local values().
    assert!(active(&f, "hash-iter").len() >= 4, "{f:#?}");
    assert_eq!(active(&f, "wall-clock").len(), 2, "{f:#?}");
    assert_eq!(active(&f, "ambient-rng").len(), 2, "{f:#?}");
    assert_eq!(active(&f, "thread-spawn").len(), 1, "{f:#?}");
}

#[test]
fn invariants_fixture_trips_every_invariant_rule() {
    let f = analyze_source("crates/nvme/src/fixture.rs", INVARIANTS);
    // handle() + on_dma_complete(); the messaged expect, the non-event
    // fn, and the #[cfg(test)] unwrap are all sanctioned.
    let unwraps = active(&f, "unwrap-in-event-path");
    assert_eq!(unwraps.len(), 2, "{f:#?}");
    assert_eq!(active(&f, "wildcard-event-arm").len(), 1, "{f:#?}");
    // deadline_time and dma_addr truncate; `count as u32` is fine.
    assert_eq!(active(&f, "lossy-cast").len(), 2, "{f:#?}");
}

#[test]
fn wildcard_arm_is_scoped_to_protocol_crates() {
    let elsewhere = analyze_source("crates/cluster/src/fixture.rs", INVARIANTS);
    assert!(active(&elsewhere, "wildcard-event-arm").is_empty());
    // The path-independent rules still fire there.
    assert_eq!(active(&elsewhere, "unwrap-in-event-path").len(), 2);
}

#[test]
fn pragmas_suppress_exactly_their_rule_and_line() {
    let f = analyze_source("crates/fixture/src/suppressed.rs", SUPPRESSED);

    // Same-line pragma on the `use`.
    let hash: Vec<_> = f.iter().filter(|f| f.rule == "hash-collection").collect();
    assert!(
        hash.iter()
            .any(|f| f.suppressed == Some(Suppression::Pragma)),
        "use-line pragma must suppress: {hash:#?}"
    );
    // The `HashMap` in `fn table() -> HashMap<u8, u8>` return type has
    // no pragma on its line: still active.
    assert!(!active(&f, "hash-collection").is_empty(), "{f:#?}");

    // Pragma above `fn timed()` covers the signature line, not the
    // Instant::now() two lines down: wall-clock stays active.
    assert_eq!(active(&f, "wall-clock").len(), 2, "{f:#?}");

    // Pragma directly above the spawn call suppresses it.
    assert!(active(&f, "thread-spawn").is_empty(), "{f:#?}");

    // Reasonless pragma: suppresses nothing, and is itself a finding.
    assert_eq!(active(&f, "ambient-rng").len(), 1, "{f:#?}");
    assert!(!active(&f, "pragma-missing-reason").is_empty(), "{f:#?}");
}

#[test]
fn baseline_grandfathers_and_reports_stale_entries() {
    let mut baseline = Baseline::parse(FIXTURE_BASELINE).expect("fixture baseline parses");
    let mut findings = analyze_source("crates/fixture/src/suppressed.rs", SUPPRESSED);
    for f in findings.iter_mut() {
        baseline.apply(f, source_line(SUPPRESSED, f.line));
    }
    // The thread_rng and SystemTime::now sites are grandfathered…
    let baselined: Vec<_> = findings
        .iter()
        .filter(|f| f.suppressed == Some(Suppression::Baseline))
        .map(|f| f.rule)
        .collect();
    assert!(baselined.contains(&"ambient-rng"), "{findings:#?}");
    assert!(baselined.contains(&"wall-clock"), "{findings:#?}");
    // …while the entry pointing at a nonexistent file is stale.
    let stale = baseline.stale();
    assert_eq!(stale.len(), 1, "{stale:#?}");
    assert_eq!(stale[0].file, "crates/fixture/src/nonexistent.rs");
}

#[test]
fn baseline_does_not_cover_other_files_or_rules() {
    let mut baseline = Baseline::parse(FIXTURE_BASELINE).expect("parses");
    let mut findings = analyze_source("crates/fixture/src/other.rs", SUPPRESSED);
    for f in findings.iter_mut() {
        baseline.apply(f, source_line(SUPPRESSED, f.line));
    }
    assert!(
        findings
            .iter()
            .all(|f| f.suppressed != Some(Suppression::Baseline)),
        "entries are file-scoped: {findings:#?}"
    );
}

/// The real workspace must be clean modulo the checked-in baseline.
/// This is the same gate CI runs (`--workspace --deny`), enforced from
/// `cargo test` so a stray HashMap or Instant::now cannot land even
/// when CI is skipped.
#[test]
fn workspace_is_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root");
    let files = workspace_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks wrong: {} files",
        files.len()
    );

    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.toml")).expect("baseline exists");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");

    let report = dcs_lint::run(&root, &files, Some(baseline)).expect("lint run");
    let active: Vec<String> = report
        .active()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        active.is_empty() && report.stale_baseline.is_empty(),
        "workspace must lint clean.\nactive:\n{}\nstale:\n{}",
        active.join("\n"),
        report.stale_baseline.join("\n")
    );
}
