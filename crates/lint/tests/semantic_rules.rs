//! Integration tests for the lint v2 workspace pass: the
//! world-isolation prover's parallel-readiness rules against seeded
//! violation fixtures, the cross-file semantic rules, and a gate that
//! the real workspace's isolation certificates cover every sim-state
//! crate and come back clean.

use std::path::Path;

use dcs_lint::baseline::Baseline;
use dcs_lint::model::{Workspace, SIM_STATE_CRATES};
use dcs_lint::rules::{check_workspace, Finding};
use dcs_lint::workspace_files;

const ISOLATION: &str = include_str!("fixtures/isolation_violations.rs");
const REPORT_DECL: &str = include_str!("fixtures/report_liveness_decl.rs");
const REPORT_WRITER: &str = include_str!("fixtures/report_liveness_writer.rs");
const RNG_COLLISION: &str = include_str!("fixtures/rng_collision.rs");

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::build(
        files
            .iter()
            .map(|(r, s)| (r.to_string(), s.to_string()))
            .collect(),
    )
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn isolation_fixture_trips_every_parallel_rule() {
    let w = ws(&[("crates/nic/src/fake_device.rs", ISOLATION)]);
    let out = check_workspace(&w);
    let f = &out.findings;

    // `static mut EVENT_COUNTER` and the interior-mutable
    // `static SHARED_TALLY: Mutex<…>`.
    assert_eq!(by_rule(f, "static-mut").len(), 2, "{f:#?}");
    assert_eq!(by_rule(f, "thread-local-state").len(), 1, "{f:#?}");
    // `dma_window: *mut u8`.
    assert_eq!(by_rule(f, "raw-pointer-field").len(), 1, "{f:#?}");
    // PeerLink.peer (Rc + RefCell) and PeerLink.stats (Arc + Mutex),
    // reached from the `impl Component for FakeNic` root.
    assert_eq!(by_rule(f, "shared-mut-state").len(), 4, "{f:#?}");
    // `scratch: &'static mut [u8; 64]` — mutable, so the `'static`
    // exemption does not apply; `label: &'static str` stays exempt.
    let borrowed = by_rule(f, "borrowed-state");
    assert_eq!(borrowed.len(), 1, "{f:#?}");
    assert!(borrowed[0].message.contains("`scratch`"));

    // The prover's coverage stats feed the nic certificate row.
    let nic = out
        .per_crate
        .iter()
        .find(|c| c.0 == "nic")
        .expect("nic row");
    assert!(nic.1.contains(&"FakeNic".to_string()), "{:?}", nic.1);
    assert_eq!(nic.2, 2, "FakeNic + PeerLink visited");
}

#[test]
fn violations_scoped_to_sim_state_crates() {
    // The same fixture under a non-sim-state crate: the isolation rules
    // must stay quiet (workloads code may use Arc freely).
    let w = ws(&[("crates/workloads/src/fake_device.rs", ISOLATION)]);
    let out = check_workspace(&w);
    for rule in [
        "static-mut",
        "thread-local-state",
        "raw-pointer-field",
        "shared-mut-state",
        "borrowed-state",
    ] {
        assert!(
            by_rule(&out.findings, rule).is_empty(),
            "{rule} must not fire outside sim-state crates: {:#?}",
            out.findings
        );
    }
}

#[test]
fn report_field_liveness_joins_across_files() {
    let w = ws(&[
        ("crates/cluster/src/report.rs", REPORT_DECL),
        ("crates/cluster/src/render.rs", REPORT_WRITER),
    ]);
    let out = check_workspace(&w);
    let dead = by_rule(&out.findings, "report-field-never-written");
    let fields: Vec<&str> = dead
        .iter()
        .map(|f| {
            let start = f.message.find('`').unwrap() + 1;
            &f.message[start..f.message[start..].find('`').unwrap() + start]
        })
        .collect();
    // `completed_ops` (plain assign), `notes` (mutator call), and
    // `p50_ns` (struct-literal init) are all written in the OTHER
    // file; `untouched` belongs to a non-report struct.
    assert_eq!(fields, vec!["dead_metric", "orphan_ns"], "{dead:#?}");
    // Findings point at the declaration, in the declaring file.
    assert!(dead
        .iter()
        .all(|f| f.file == "crates/cluster/src/report.rs"));
}

#[test]
fn rng_stream_collision_flags_duplicate_sites_once() {
    let w = ws(&[("crates/sim/src/fault_sites.rs", RNG_COLLISION)]);
    let out = check_workspace(&w);
    let hits = by_rule(&out.findings, "rng-stream-collision");
    // One finding, at the SECOND declaration, naming the first.
    assert_eq!(hits.len(), 1, "{:#?}", out.findings);
    assert!(hits[0].message.contains("wire.drop"), "{}", hits[0].message);
    assert!(hits[0].message.contains("WIRE_DROP"), "{}", hits[0].message);
    assert!(hits[0].message.contains("LINK_DROP"), "{}", hits[0].message);
}

#[test]
fn rng_collision_spans_files_but_ignores_test_consts() {
    let w = ws(&[
        (
            "crates/sim/src/fault.rs",
            r#"pub const WIRE_DROP: &str = "wire.drop";"#,
        ),
        (
            "crates/nic/src/faults.rs",
            r#"pub const NIC_WIRE: &str = "wire.drop";"#,
        ),
        (
            "crates/nvme/src/t.rs",
            "#[cfg(test)]\nmod tests { const ALSO: &str = \"wire.drop\"; }",
        ),
    ]);
    let out = check_workspace(&w);
    let hits = by_rule(&out.findings, "rng-stream-collision");
    // The cross-crate duplicate fires; the #[cfg(test)] const (a test
    // intentionally reusing a site name) does not.
    assert_eq!(hits.len(), 1, "{:#?}", out.findings);
    assert_eq!(hits[0].file, "crates/nic/src/faults.rs");
}

/// The real workspace's isolation certificates: one per sim-state
/// crate, every crate covered (roots found, structs visited), and —
/// the property ROADMAP items 1–2 build on — every crate isolated.
#[test]
fn real_workspace_certificates_cover_every_sim_state_crate_and_are_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root");
    let files = workspace_files(&root).expect("walk workspace");
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.toml")).expect("baseline exists");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let report = dcs_lint::run(&root, &files, Some(baseline)).expect("lint run");

    let crates: Vec<&str> = report
        .certificates
        .iter()
        .map(|c| c.crate_name.as_str())
        .collect();
    assert_eq!(crates, SIM_STATE_CRATES, "one certificate per crate");
    for cert in &report.certificates {
        assert!(
            !cert.roots.is_empty(),
            "crate `{}` has no isolation roots — the prover lost its anchors",
            cert.crate_name
        );
        assert!(
            cert.structs_checked > 0,
            "crate `{}` had no structs visited",
            cert.crate_name
        );
        assert!(
            cert.isolated(),
            "crate `{}` is NOT world-isolated: {} active violation(s)",
            cert.crate_name,
            cert.active_violations
        );
    }
    // The document renders and round-trips the schema marker.
    let json = report.certificate_json();
    assert!(json.contains("dcs-lint-isolation-v1"), "{json}");
}
