//! Lexer regression fixture: every literal/comment syntax that has
//! bitten a token-pattern linter. None of the rule-trigger words in
//! here (HashMap, Instant, thread_rng, SystemTime) are code — a lexer
//! that leaks them out of strings or comments fails the regression
//! tests in crates/lint/tests/lexer_regressions.rs.

pub const RAW: &str = r#"contains "quotes" and HashMap tokens"#;
pub const RAW_NESTED: &str = r##"outer r#"Instant::now()"# still one literal"##;
/* nested /* block */ comments hide thread_rng() entirely */
pub const MULTI: &str = "line one
line two mentions SystemTime::now()
line three";
pub fn life<'a>(x: &'a str) -> &'a str {
    x
}
pub const ESCAPED_QUOTE: char = '\'';
pub const BYTES: &[u8] = b"HashMap in a byte string";
pub const SITE: &'static str = "wire.drop";
