//! RNG-stream-collision fixture: two const declarations share the
//! dotted site name `wire.drop`, so `stream_base ^ fnv1a64(site)`
//! derives the SAME stream for both — the exact silent-sharing bug the
//! rule exists to catch. `nvme.media` is unique and must not fire.

pub const WIRE_DROP: &str = "wire.drop";
pub const LINK_DROP: &str = "wire.drop";
pub const NVME_MEDIA: &str = "nvme.media";

/// Not a site name (uppercase / no dot): ignored by the rule.
pub const LABEL: &str = "WireDrop";
pub const PLAIN: &str = "wiredrop";
