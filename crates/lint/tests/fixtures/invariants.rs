//! Fixture: invariant-rule violations. Fed to the analyzer with a
//! protocol-crate path (e.g. `crates/nvme/src/fixture.rs`) so the
//! crate-scoped rules fire.

enum Event {
    Doorbell,
    Completion,
    Reset,
}

struct Device {
    pending: Option<u64>,
}

impl Device {
    // Event path: bare unwrap is a violation...
    fn handle(&mut self, e: Event) {
        match e {
            Event::Doorbell => {
                let _token = self.pending.unwrap();
            }
            Event::Completion => self.on_dma_complete(),
            // ...and an empty wildcard arm swallows Reset.
            _ => {}
        }
    }

    // Completion paths are event paths too.
    fn on_dma_complete(&mut self) {
        let _token = self.pending.unwrap();
    }

    // Messaged expect is the sanctioned form: not flagged.
    fn on_msi_complete(&mut self) {
        let _token = self.pending.expect("completion for a posted DMA");
    }

    // Not an event path: bare unwrap allowed.
    fn debug_dump(&self) -> u64 {
        self.pending.unwrap()
    }
}

fn truncations(deadline_time: u64, dma_addr: u64, count: u64) -> (u32, u16, u32) {
    let t = deadline_time as u32;
    let a = dma_addr as u16;
    let fine = count as u32;
    (t, a, fine)
}

#[cfg(test)]
mod tests {
    // Inside test code, unwrap in an event-path-named fn is fine.
    fn handle(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
