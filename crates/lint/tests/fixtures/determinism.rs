//! Fixture: determinism-rule violations, one per construct.
//! This file is NOT compiled or linted as part of the workspace
//! (`workspace_files` skips `fixtures/` directories); the integration
//! tests feed it to the analyzer and assert on the findings.

use std::collections::{HashMap, HashSet};

struct Tables {
    ops: HashMap<u64, u32>,
    seen: HashSet<u64>,
}

impl Tables {
    fn scan(&mut self) -> u32 {
        let mut total = 0;
        // Method-style iteration over a hash-ordered field.
        for (_k, v) in self.ops.iter() {
            total += v;
        }
        // Direct for-loop iteration.
        for k in &self.seen {
            total += *k as u32;
        }
        self.ops.retain(|_, v| *v > 0);
        total
    }
}

fn locals() {
    let mut local = HashMap::new();
    local.insert(1u8, 2u8);
    for v in local.values() {
        let _ = v;
    }
}

fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

fn system_clock() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}

fn ambient_randomness() {
    let _rng = rand::thread_rng();
    let _v: u32 = rand::random();
}

fn parallelism() {
    std::thread::spawn(|| {});
}
