//! Report-field-liveness fixture, declaration side: two output structs
//! whose fields are written (or not) by report_liveness_writer.rs in a
//! DIFFERENT file — the rule must join across the workspace model.

/// Sweep outcome; `dead_metric` is never written anywhere.
pub struct SweepReport {
    pub completed_ops: u64,
    pub dead_metric: u64,
    pub notes: Vec<String>,
}

/// Latency digest; `orphan_ns` is never written anywhere.
pub struct LatencyPerf {
    pub p50_ns: u64,
    pub orphan_ns: u64,
}

/// Not a report/perf struct: out of the rule's scope even though
/// nothing writes it.
pub struct ScratchState {
    pub untouched: u64,
}
