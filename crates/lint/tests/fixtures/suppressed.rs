//! Fixture: every suppression mechanism, plus pragma misuse.

// Same-line pragma.
use std::collections::HashMap; // dcs-lint: allow(hash-collection) — fixture: lookup-only table

// Pragma on the line above the offending code.
// dcs-lint: allow(wall-clock) — fixture: self-timing only
fn timed() -> std::time::Instant {
    std::time::Instant::now() // this line is NOT covered by the pragma above
}

fn spawns() {
    // dcs-lint: allow(thread-spawn) — fixture: pragma covers the next code line
    std::thread::spawn(|| {});
}

// A pragma without a reason suppresses nothing and is itself flagged.
fn entropy() {
    let _ = rand::thread_rng(); // dcs-lint: allow(ambient-rng)
}

// This one is left for the baseline file to grandfather.
fn baselined_clock() {
    let _ = std::time::SystemTime::now();
}

fn table() -> HashMap<u8, u8> {
    // dcs-lint: allow(hash-collection) — fixture: constructor call below
    HashMap::new()
}
