//! Report-field-liveness fixture, writer side: exercises every write
//! shape the rule recognizes — plain assign, mutator method call, and
//! struct-literal init. `dead_metric` and `orphan_ns` are deliberately
//! never written.

pub fn render(r: &mut SweepReport) {
    r.completed_ops = 1;
    r.notes.push(String::from("phase done"));
}

pub fn build() -> LatencyPerf {
    LatencyPerf {
        p50_ns: 42,
        ..Default::default()
    }
}
