//! Seeded parallel-readiness violations for the semantic-rule
//! integration tests (crates/lint/tests/semantic_rules.rs). Fed to the
//! analyzer under a sim-state crate path; every construct below must
//! be caught. NOT compiled into the workspace — the `fixtures`
//! directory is excluded from the lint walk and from cargo.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Process-global mutable counter: `static-mut`.
static mut EVENT_COUNTER: u64 = 0;

/// Interior-mutable static — also `static-mut` (no `mut` keyword, same
/// hazard).
static SHARED_TALLY: Mutex<u64> = Mutex::new(0);

thread_local! {
    /// Thread-keyed scratch space: `thread-local-state`.
    static SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::new());
}

/// Reached from `FakeNic` below; both fields are `shared-mut-state`.
pub struct PeerLink {
    /// `Rc` + `RefCell`: two shared-mut hits on one field.
    pub peer: Rc<RefCell<u64>>,
    /// `Arc` + `Mutex`: two more.
    pub stats: Arc<Mutex<u64>>,
}

/// A fake component whose state seeds one of each violation kind.
pub struct FakeNic {
    link: PeerLink,
    /// `raw-pointer-field`.
    dma_window: *mut u8,
    /// Exempt: `&'static str` is immutable forever.
    label: &'static str,
    /// NOT exempt: `&'static mut` aliases mutable data across worlds.
    scratch: &'static mut [u8; 64],
}

impl Component for FakeNic {
    fn handle(&mut self) {
        self.label = "fake";
    }
}
