//! Lexer regression tests over the torture fixture: raw strings
//! (including nested-hash raw strings), nested block comments,
//! lifetimes vs char literals, byte strings, and multi-line string
//! literals. A lexer bug in any of these leaks rule-trigger words out
//! of literals — so the fixture deliberately hides `HashMap`,
//! `Instant`, `thread_rng`, and `SystemTime` inside them.

use dcs_lint::analyze_source;
use dcs_lint::lexer::{lex, TokenKind};

const TORTURE: &str = include_str!("fixtures/lexer_torture.rs");

#[test]
fn literal_and_comment_contents_never_become_idents() {
    let lexed = lex(TORTURE);
    let idents: Vec<&str> = lexed.tokens.iter().filter_map(|t| t.ident()).collect();
    for trigger in ["HashMap", "Instant", "thread_rng", "SystemTime"] {
        assert!(
            !idents.contains(&trigger),
            "`{trigger}` leaked out of a literal/comment: {idents:?}"
        );
    }
}

#[test]
fn torture_fixture_is_lint_clean() {
    // No rule may fire on trigger words that only exist inside
    // literals and comments.
    let findings = analyze_source("crates/x/src/torture.rs", TORTURE);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn raw_string_contents_are_captured() {
    let lexed = lex(TORTURE);
    let texts: Vec<&str> = lexed.tokens.iter().filter_map(|t| t.str_text()).collect();
    assert!(
        texts.iter().any(|s| s.contains("contains \"quotes\"")),
        "{texts:?}"
    );
    // The nested-hash raw string is ONE literal, inner `r#"…"#` intact.
    assert!(
        texts
            .iter()
            .any(|s| s.contains("r#\"Instant::now()\"#") && s.contains("still one literal")),
        "{texts:?}"
    );
    // Dotted site names in plain strings are readable (the
    // rng-stream-collision rule depends on this).
    assert!(texts.contains(&"wire.drop"), "{texts:?}");
}

#[test]
fn multiline_literal_reports_its_opening_line() {
    let lexed = lex(TORTURE);
    let multi = lexed
        .tokens
        .iter()
        .find(|t| t.str_text().is_some_and(|s| s.contains("line one")))
        .expect("multi-line literal");
    let decl_line = TORTURE
        .lines()
        .position(|l| l.contains("pub const MULTI"))
        .expect("MULTI decl") as u32
        + 1;
    assert_eq!(
        multi.line, decl_line,
        "a multi-line literal must anchor to the line it opens on"
    );
    // Tokens after it still carry correct lines: `pub fn life` sits two
    // lines below the literal's closing quote.
    let life = lexed
        .tokens
        .iter()
        .find(|t| t.is_ident("life"))
        .expect("fn life");
    let life_line = TORTURE
        .lines()
        .position(|l| l.contains("pub fn life"))
        .expect("life decl") as u32
        + 1;
    assert_eq!(life.line, life_line);
}

#[test]
fn lifetimes_lex_as_apostrophe_idents_not_char_literals() {
    let lexed = lex(TORTURE);
    assert!(
        lexed.tokens.iter().any(|t| t.is_ident("'a")),
        "lifetime 'a must be an ident token"
    );
    // The escaped-quote char literal is a content-less literal, not a
    // lifetime and not a lexer derail.
    assert!(lexed
        .tokens
        .iter()
        .any(|t| matches!(t.kind, TokenKind::Literal(None))));
    // `&'static str` distinguishes from `&'a str` downstream (the
    // borrowed-state exemption depends on it).
    assert!(
        lexed.tokens.iter().any(|t| t.is_ident("'static")),
        "explicit 'static lifetime must lex as an ident"
    );
}

#[test]
fn unterminated_literal_is_tolerated_and_line_counts_survive() {
    // A file that ends mid-string must not panic or loop.
    let lexed = lex("const A: u8 = 1;\nlet s = \"never closed\nconst B");
    assert!(lexed.tokens.iter().any(|t| t.is_ident("A")));
    let a = lexed.tokens.iter().find(|t| t.is_ident("A")).unwrap();
    assert_eq!(a.line, 1);
}
