//! CLI for the workspace determinism & invariant analyzer.
//!
//! ```text
//! cargo run -p dcs-lint -- --workspace            # report violations
//! cargo run -p dcs-lint -- --workspace --deny     # exit 1 on any active finding (CI)
//! cargo run -p dcs-lint -- --list-rules           # rule table
//! cargo run -p dcs-lint -- path/to/file.rs ...    # lint specific files
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 active
//! findings or stale baseline entries under `--deny`, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use dcs_lint::baseline::Baseline;
use dcs_lint::rules::{Suppression, RULES};
use dcs_lint::{run, workspace_files, Report};

struct Args {
    workspace: bool,
    deny: bool,
    list_rules: bool,
    no_baseline: bool,
    baseline: Option<PathBuf>,
    root: PathBuf,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: dcs-lint [--workspace] [--deny] [--baseline FILE] [--no-baseline] \
     [--root DIR] [--list-rules] [PATH...]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        deny: false,
        list_rules: false,
        no_baseline: false,
        baseline: None,
        root: PathBuf::from("."),
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--no-baseline" => args.no_baseline = true,
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a path")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && !args.list_rules && args.paths.is_empty() {
        return Err(usage().to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        println!("{:<24} {:<12} summary", "rule", "family");
        for r in RULES {
            println!("{:<24} {:<12} {}", r.id, r.family, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let files = if args.workspace {
        match workspace_files(&args.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dcs-lint: walking {}: {e}", args.root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut files = Vec::new();
        for p in &args.paths {
            if p.is_dir() {
                match workspace_files(p) {
                    Ok(f) => files.extend(f),
                    Err(e) => {
                        eprintln!("dcs-lint: walking {}: {e}", p.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                files.push(p.clone());
            }
        }
        files
    };

    // Baseline: explicit path, or <root>/lint-baseline.toml when present.
    let baseline = if args.no_baseline {
        None
    } else {
        let path = args
            .baseline
            .clone()
            .unwrap_or_else(|| args.root.join("lint-baseline.toml"));
        match std::fs::read_to_string(&path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(errors) => {
                    for e in errors {
                        eprintln!("{}: {e}", path.display());
                    }
                    return ExitCode::from(2);
                }
            },
            Err(_) if args.baseline.is_none() => None, // default baseline is optional
            Err(e) => {
                eprintln!("dcs-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    };

    let report = match run(&args.root, &files, baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dcs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    print_report(&report);

    if args.deny && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_report(report: &Report) {
    for f in report.active() {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    for s in &report.stale_baseline {
        println!("{s}");
    }
    let active = report.active().count();
    let pragma = report.suppressed_count(Suppression::Pragma);
    let grandfathered = report.suppressed_count(Suppression::Baseline);
    println!(
        "dcs-lint: {} file(s), {} active finding(s), {} pragma-allowed, {} baselined, {} stale baseline entr(ies)",
        report.files,
        active,
        pragma,
        grandfathered,
        report.stale_baseline.len()
    );
}
