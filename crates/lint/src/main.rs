//! CLI for the workspace determinism & invariant analyzer.
//!
//! ```text
//! cargo run -p dcs-lint -- --workspace            # report violations
//! cargo run -p dcs-lint -- --workspace --deny     # exit 1 on any active finding (CI)
//! cargo run -p dcs-lint -- --list-rules           # rule table
//! cargo run -p dcs-lint -- path/to/file.rs ...    # lint specific files
//! cargo run -p dcs-lint -- --workspace --format json          # machine-readable findings
//! cargo run -p dcs-lint -- --workspace --certificate FILE     # write isolation certificates
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 active
//! findings or stale baseline entries under `--deny`, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use dcs_lint::baseline::Baseline;
use dcs_lint::model::json_escape;
use dcs_lint::rules::{Suppression, RULES};
use dcs_lint::{run, workspace_files, Report};

/// Findings output format.
#[derive(PartialEq)]
enum Format {
    /// `file:line: [rule] message` lines plus a summary — the shape
    /// the CI problem matcher (.github/problem-matchers/dcs-lint.json)
    /// parses into PR annotations.
    Text,
    /// One JSON document with findings, certificates, and counts.
    Json,
}

struct Args {
    workspace: bool,
    deny: bool,
    list_rules: bool,
    no_baseline: bool,
    baseline: Option<PathBuf>,
    root: PathBuf,
    paths: Vec<PathBuf>,
    format: Format,
    certificate: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: dcs-lint [--workspace] [--deny] [--baseline FILE] [--no-baseline] \
     [--root DIR] [--format text|json] [--certificate FILE] [--list-rules] [PATH...]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        deny: false,
        list_rules: false,
        no_baseline: false,
        baseline: None,
        root: PathBuf::from("."),
        paths: Vec::new(),
        format: Format::Text,
        certificate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--no-baseline" => args.no_baseline = true,
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a path")?),
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format needs `text` or `json`, got `{}`",
                            other.unwrap_or("")
                        ))
                    }
                };
            }
            "--certificate" => {
                args.certificate = Some(PathBuf::from(
                    it.next().ok_or("--certificate needs a path")?,
                ));
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && !args.list_rules && args.paths.is_empty() {
        return Err(usage().to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        println!("{:<24} {:<12} summary", "rule", "family");
        for r in RULES {
            println!("{:<24} {:<12} {}", r.id, r.family, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let files = if args.workspace {
        match workspace_files(&args.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dcs-lint: walking {}: {e}", args.root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut files = Vec::new();
        for p in &args.paths {
            if p.is_dir() {
                match workspace_files(p) {
                    Ok(f) => files.extend(f),
                    Err(e) => {
                        eprintln!("dcs-lint: walking {}: {e}", p.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                files.push(p.clone());
            }
        }
        files
    };

    // Baseline: explicit path, or <root>/lint-baseline.toml when present.
    let baseline = if args.no_baseline {
        None
    } else {
        let path = args
            .baseline
            .clone()
            .unwrap_or_else(|| args.root.join("lint-baseline.toml"));
        match std::fs::read_to_string(&path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(errors) => {
                    for e in errors {
                        eprintln!("{}: {e}", path.display());
                    }
                    return ExitCode::from(2);
                }
            },
            Err(_) if args.baseline.is_none() => None, // default baseline is optional
            Err(e) => {
                eprintln!("dcs-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    };

    let report = match run(&args.root, &files, baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dcs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.certificate {
        if let Err(e) = std::fs::write(path, report.certificate_json()) {
            eprintln!("dcs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match args.format {
        Format::Text => print_report(&report),
        Format::Json => print_json(&report),
    }

    if args.deny && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_report(report: &Report) {
    for f in report.active() {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    for s in &report.stale_baseline {
        println!("{s}");
    }
    for c in &report.certificates {
        if !c.isolated() {
            println!(
                "isolation: crate `{}` NOT isolated — {} active violation(s)",
                c.crate_name, c.active_violations
            );
        }
    }
    let active = report.active().count();
    let pragma = report.suppressed_count(Suppression::Pragma);
    let grandfathered = report.suppressed_count(Suppression::Baseline);
    println!(
        "dcs-lint: {} file(s), {} active finding(s), {} pragma-allowed, {} baselined, {} stale baseline entr(ies)",
        report.files,
        active,
        pragma,
        grandfathered,
        report.stale_baseline.len()
    );
}

/// One JSON document on stdout: active findings (file/line/rule/
/// message), suppression counts, and the isolation certificates.
/// Hand-rolled — the crate is deliberately dependency-free.
fn print_json(report: &Report) {
    let findings = report
        .active()
        .map(|f| {
            format!(
                "    {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule,
                json_escape(&f.message)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let stale = report
        .stale_baseline
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect::<Vec<_>>()
        .join(",");
    let certs = report
        .certificates
        .iter()
        .map(|c| format!("    {}", c.to_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    println!("{{");
    println!("  \"files\": {},", report.files);
    println!("  \"active\": {},", report.active().count());
    println!(
        "  \"pragma_allowed\": {},",
        report.suppressed_count(Suppression::Pragma)
    );
    println!(
        "  \"baselined\": {},",
        report.suppressed_count(Suppression::Baseline)
    );
    println!("  \"stale_baseline\": [{stale}],");
    println!("  \"findings\": [\n{findings}\n  ],");
    println!("  \"certificates\": [\n{certs}\n  ]");
    println!("}}");
}
