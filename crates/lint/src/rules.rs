//! The lint rules: machine-checkable violations of the repo's
//! determinism and protocol-invariant policy (DESIGN.md §10).
//!
//! Two families:
//!
//! * **Determinism** — constructs whose behavior depends on per-process
//!   randomness, wall-clock time, or OS scheduling. Any of these inside
//!   the simulation breaks the bit-identical same-seed replay that
//!   tests/chaos.rs, tests/cluster.rs, and tests/failover.rs assert.
//! * **Invariants** — patterns that swallow protocol events or panic in
//!   device event paths, where the policy is "fail loudly with a
//!   message" (`expect("why")`) or "handle every arm explicitly".
//!
//! Every rule reports `Finding`s; suppression (pragmas, baseline) is
//! layered on top by [`crate::analyze_source`] and [`crate::baseline`].
//!
//! Since lint v2 there are two *passes* (DESIGN.md §15):
//!
//! * **Per-file** ([`check_file`]) — token-pattern rules that need one
//!   file at a time;
//! * **Workspace** ([`check_workspace`]) — semantic rules over the
//!   parsed item model ([`crate::model`]): the world-isolation prover's
//!   parallel-readiness family (`static-mut`, `thread-local-state`,
//!   `raw-pointer-field`, `shared-mut-state`, `borrowed-state`) and the
//!   cross-file family (`report-field-never-written`,
//!   `rng-stream-collision`).

use crate::lexer::{lex, Token, TokenKind};
use crate::model::{is_sim_state_crate, Workspace};
use crate::parser::ItemKind;
use crate::resolve::{is_atomic, prove_isolation, Resolver};

/// One rule violation at a specific source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `hash-collection`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// How the finding was suppressed, if it was.
    pub suppressed: Option<Suppression>,
}

/// Why a finding does not count against `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suppression {
    /// An inline `// dcs-lint: allow(rule) — reason` pragma.
    Pragma,
    /// A `lint-baseline.toml` entry.
    Baseline,
}

/// Rule metadata for `--list-rules` and the docs.
pub struct RuleInfo {
    pub id: &'static str,
    pub family: &'static str,
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-collection",
        family: "determinism",
        summary: "std HashMap/HashSet/RandomState (randomized iteration order) — use dcs_sim::{DetMap, DetSet}",
    },
    RuleInfo {
        id: "hash-iter",
        family: "determinism",
        summary: "iteration over a hash-ordered collection declared in this file",
    },
    RuleInfo {
        id: "wall-clock",
        family: "determinism",
        summary: "Instant::now()/SystemTime::now() — simulation time must come from Ctx/SimTime",
    },
    RuleInfo {
        id: "ambient-rng",
        family: "determinism",
        summary: "thread_rng/OsRng/from_entropy/rand::random — randomness must come from the seeded World rng",
    },
    RuleInfo {
        id: "thread-spawn",
        family: "determinism",
        summary: "thread::spawn — the simulator is single-threaded by contract; OS scheduling is nondeterministic",
    },
    RuleInfo {
        id: "float-in-sim-state",
        family: "determinism",
        summary: "f32/f64 field in a cluster/store simulation-state struct — evolved state must be fixed-point integers; floats belong in *Config inputs and *Perf/*Report outputs",
    },
    RuleInfo {
        id: "unwrap-in-event-path",
        family: "invariant",
        summary: "bare .unwrap() inside handle/on_event/completion paths — use expect(\"invariant\") with a message",
    },
    RuleInfo {
        id: "unwrap-in-recovery-path",
        family: "invariant",
        summary: ".unwrap()/.expect(..) inside recovery/error-containment fns — damaged state is the expected input there; tolerate it (let-else + counter) instead of crashing",
    },
    RuleInfo {
        id: "wildcard-event-arm",
        family: "invariant",
        summary: "empty `_ => {}` match arm in an NVMe/NIC/PCIe state machine silently swallows protocol events",
    },
    RuleInfo {
        id: "lossy-cast",
        family: "invariant",
        summary: "narrowing `as` cast on a time/address-named value can truncate SimTime/PhysAddr quantities",
    },
    RuleInfo {
        id: "static-mut",
        family: "parallel",
        summary: "`static mut` or interior-mutable static in a sim-state crate — process-global state is shared by every World; per-world state must live in the World",
    },
    RuleInfo {
        id: "thread-local-state",
        family: "parallel",
        summary: "`thread_local!` in a sim-state crate — state keyed by OS thread breaks world migration across the parallel runner's workers",
    },
    RuleInfo {
        id: "raw-pointer-field",
        family: "parallel",
        summary: "raw-pointer field in a sim-state struct — the prover cannot show the pointee is uniquely owned per world",
    },
    RuleInfo {
        id: "shared-mut-state",
        family: "parallel",
        summary: "Rc/Arc/RefCell/Cell/Mutex/RwLock/Atomic* reachable from an isolation root (World, Component impl, world resource) — worlds must not alias mutable state",
    },
    RuleInfo {
        id: "borrowed-state",
        family: "parallel",
        summary: "reference field in a struct reachable from an isolation root — per-world state must own its data (share *Config/*Report by clone)",
    },
    RuleInfo {
        id: "report-field-never-written",
        family: "semantic",
        summary: "a *Report/*Perf field is declared but never written anywhere in the workspace — it renders as a permanent zero",
    },
    RuleInfo {
        id: "rng-stream-collision",
        family: "semantic",
        summary: "two fault/RNG stream site constants share one dotted name — `stream_base ^ fnv1a64(site)` collides and the sites silently share an RNG sequence",
    },
    RuleInfo {
        id: "pragma-missing-reason",
        family: "meta",
        summary: "a dcs-lint allow pragma must carry a reason after a dash",
    },
    RuleInfo {
        id: "stale-pragma",
        family: "meta",
        summary: "a reasoned allow pragma that suppressed nothing — the violation is gone; delete the pragma",
    },
];

/// Rules produced by the workspace pass ([`check_workspace`]) rather
/// than the per-file pass — [`crate::analyze_source`] must not treat a
/// pragma for these as stale, since it never sees their findings.
pub const WORKSPACE_RULES: &[&str] = &[
    "static-mut",
    "thread-local-state",
    "raw-pointer-field",
    "shared-mut-state",
    "borrowed-state",
    "report-field-never-written",
    "rng-stream-collision",
];

/// True if `id` is produced by the workspace pass.
pub fn is_workspace_rule(id: &str) -> bool {
    WORKSPACE_RULES.contains(&id)
}

/// The parallel-readiness rules that feed the per-crate isolation
/// certificate's violation counts.
pub const ISOLATION_RULES: &[&str] = &[
    "static-mut",
    "thread-local-state",
    "raw-pointer-field",
    "shared-mut-state",
    "borrowed-state",
];

/// True if `id` names a known rule.
pub fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Per-file analysis context shared by the rule passes.
struct FileCtx<'a> {
    file: &'a str,
    tokens: &'a [Token],
    /// Token-index ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
    /// Enclosing-fn name per token index (innermost), empty if none.
    fn_names: Vec<&'a str>,
}

impl FileCtx<'_> {
    fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx < b)
    }
}

/// Runs every rule over one file. `file` is the workspace-relative
/// path; it scopes the protocol-crate rules (`wildcard-event-arm`).
/// Suppressions are NOT applied here.
pub fn check_file(file: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let ctx = FileCtx {
        file,
        tokens,
        test_ranges: find_test_ranges(tokens),
        fn_names: enclosing_fn_names(tokens),
    };
    let mut findings = Vec::new();
    rule_hash_collection(&ctx, &mut findings);
    rule_hash_iter(&ctx, &mut findings);
    rule_wall_clock(&ctx, &mut findings);
    rule_ambient_rng(&ctx, &mut findings);
    rule_thread_spawn(&ctx, &mut findings);
    rule_float_in_sim_state(&ctx, &mut findings);
    rule_unwrap_in_event_path(&ctx, &mut findings);
    rule_unwrap_in_recovery_path(&ctx, &mut findings);
    rule_wildcard_event_arm(&ctx, &mut findings);
    rule_lossy_cast(&ctx, &mut findings);
    findings.sort_by_key(|f| f.line);
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    ctx: &FileCtx,
    line: u32,
    message: String,
) {
    findings.push(Finding {
        rule,
        file: ctx.file.to_string(),
        line,
        message,
        suppressed: None,
    });
}

/// Token-index ranges of items annotated `#[cfg(test)]` (and `#[test]`
/// functions), where the invariant rules do not apply: test code may
/// unwrap freely.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = matches_seq(tokens, i, &["#", "[", "cfg", "(", "test", ")", "]"]);
        let is_test_attr = matches_seq(tokens, i, &["#", "[", "test", "]"]);
        if is_cfg_test || is_test_attr {
            // The annotated item runs to the close of its brace block.
            if let Some(open) = tokens[i..].iter().position(|t| t.is_punct('{')) {
                let start = i + open;
                let end = matching_brace(tokens, start).unwrap_or(tokens.len());
                ranges.push((i, end + 1));
                i = start + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// For each token, the name of the innermost enclosing `fn` ("" when
/// at module scope). Closures count as part of their enclosing fn.
fn enclosing_fn_names(tokens: &[Token]) -> Vec<&str> {
    let mut names = vec![""; tokens.len()];
    // Stack of (fn name, depth at which its body opened); `None` depth
    // means the signature has not reached `{` yet.
    let mut stack: Vec<(&str, Option<u32>)> = Vec::new();
    let mut depth = 0u32;
    for (i, t) in tokens.iter().enumerate() {
        match &t.kind {
            TokenKind::Ident(name) if name == "fn" => {
                if let Some(TokenKind::Ident(fname)) = tokens.get(i + 1).map(|t| &t.kind) {
                    stack.push((fname.as_str(), None));
                }
            }
            TokenKind::Punct('{') => {
                if let Some(top) = stack.last_mut() {
                    if top.1.is_none() {
                        top.1 = Some(depth);
                    }
                }
                depth += 1;
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if let Some(&(_, Some(d))) = stack.last() {
                    if d == depth {
                        stack.pop();
                    }
                }
            }
            TokenKind::Punct(';') => {
                // Trait method declaration without a body: `fn f(...);`
                if let Some(&(_, None)) = stack.last() {
                    stack.pop();
                }
            }
            _ => {}
        }
        if let Some(&(name, Some(_))) = stack.last() {
            names[i] = name;
        }
    }
    names
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// True when the identifiers/punctuation at `start` match `pat` exactly
/// (each element is either an ident name or a single punct char).
fn matches_seq(tokens: &[Token], start: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(j, p)| {
        let Some(t) = tokens.get(start + j) else {
            return false;
        };
        if p.len() == 1 && !p.chars().next().unwrap().is_ascii_alphanumeric() {
            t.is_punct(p.chars().next().unwrap())
        } else {
            t.is_ident(p)
        }
    })
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState", "DefaultHasher"];

fn rule_hash_collection(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for t in ctx.tokens {
        if let TokenKind::Ident(name) = &t.kind {
            if HASH_TYPES.contains(&name.as_str()) {
                push(
                    findings,
                    "hash-collection",
                    ctx,
                    t.line,
                    format!(
                        "`{name}` has randomized iteration order; use `dcs_sim::DetMap`/`DetSet` \
                         so same-seed replay stays bit-identical"
                    ),
                );
            }
        }
    }
}

const ORDER_SENSITIVE_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn rule_hash_iter(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    // Pass 1: names declared with a hash-ordered type in this file
    // (`name: HashMap<..>` fields/params or `let name = HashMap::new()`).
    let mut hash_names: Vec<&str> = Vec::new();
    for (i, t) in ctx.tokens.iter().enumerate() {
        let TokenKind::Ident(tyname) = &t.kind else {
            continue;
        };
        if !HASH_TYPES.contains(&tyname.as_str()) {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && ctx.tokens[j - 1].is_punct(':') && ctx.tokens[j - 2].is_punct(':') {
            j -= 2;
            if j >= 1 && ctx.tokens[j - 1].ident().is_some() {
                j -= 1;
            }
        }
        // `name : <path> HashMap <` — a field, param, or typed let.
        if j >= 2 && ctx.tokens[j - 1].is_punct(':') && !ctx.tokens[j - 2].is_punct(':') {
            if let Some(name) = ctx.tokens[j - 2].ident() {
                hash_names.push(name);
            }
        }
        // `let (mut)? name (: ..)? = HashMap :: new/with_capacity/from`.
        if let Some(eq) = (j.saturating_sub(6)..j)
            .rev()
            .find(|&k| ctx.tokens[k].is_punct('='))
        {
            let mut k = eq;
            while k >= 1 && !ctx.tokens[k].is_ident("let") {
                k -= 1;
            }
            if ctx.tokens[k].is_ident("let") {
                let name_idx = if ctx.tokens[k + 1].is_ident("mut") {
                    k + 2
                } else {
                    k + 1
                };
                if let Some(name) = ctx.tokens.get(name_idx).and_then(|t| t.ident()) {
                    hash_names.push(name);
                }
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }
    hash_names.sort_unstable();
    hash_names.dedup();

    // Pass 2: order-sensitive uses of those names.
    for (i, t) in ctx.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if hash_names.binary_search(&name.as_str()).is_err() {
            continue;
        }
        // `name . method (` with method order-sensitive.
        if ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            if let Some(m) = ctx.tokens.get(i + 2).and_then(|t| t.ident()) {
                if ORDER_SENSITIVE_METHODS.contains(&m) {
                    push(
                        findings,
                        "hash-iter",
                        ctx,
                        t.line,
                        format!(
                            "`.{m}()` on hash-ordered `{name}` visits entries in a \
                             seed-dependent order; migrate `{name}` to `DetMap`/`DetSet`"
                        ),
                    );
                }
            }
        }
        // `for .. in [&][mut] [self .] name {` — direct iteration.
        if i >= 1 {
            let mut j = i - 1;
            // Skip over `self .`, `&`, `mut` prefix tokens.
            loop {
                let tok = &ctx.tokens[j];
                let skip = tok.is_punct('.')
                    || tok.is_punct('&')
                    || tok.is_ident("self")
                    || tok.is_ident("mut");
                if skip && j > 0 {
                    j -= 1;
                } else {
                    break;
                }
            }
            if ctx.tokens[j].is_ident("in")
                && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('{'))
            {
                push(
                    findings,
                    "hash-iter",
                    ctx,
                    t.line,
                    format!(
                        "iterating hash-ordered `{name}` in a `for` loop is seed-dependent; \
                         migrate `{name}` to `DetMap`/`DetSet`"
                    ),
                );
            }
        }
    }
}

fn rule_wall_clock(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if (name == "Instant" || name == "SystemTime")
            && matches_seq(ctx.tokens, i + 1, &[":", ":", "now"])
        {
            push(
                findings,
                "wall-clock",
                ctx,
                t.line,
                format!(
                    "`{name}::now()` reads the wall clock; simulation time must come from \
                     `ctx.now()`/`SimTime` so runs replay identically"
                ),
            );
        }
    }
}

fn rule_ambient_rng(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        let ambient = match name.as_str() {
            "thread_rng" | "OsRng" | "from_entropy" => true,
            "random" => i >= 3 && matches_seq(ctx.tokens, i - 3, &["rand", ":", ":"]),
            _ => false,
        };
        if ambient {
            push(
                findings,
                "ambient-rng",
                ctx,
                t.line,
                format!(
                    "`{name}` draws OS entropy; all randomness must come from the seeded \
                     `World::rng` so the seed fully determines the run"
                ),
            );
        }
    }
}

fn rule_thread_spawn(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.is_ident("thread") && matches_seq(ctx.tokens, i + 1, &[":", ":", "spawn"]) {
            push(
                findings,
                "thread-spawn",
                ctx,
                t.line,
                "`thread::spawn` introduces OS scheduling into the simulation; the event loop \
                 is single-threaded by contract"
                    .to_string(),
            );
        }
    }
}

/// Crates whose live simulation state `float-in-sim-state` polices:
/// the layers whose structs evolve during the event loop and feed the
/// bit-identical same-seed replay that tests/determinism.rs asserts.
const SIM_STATE_CRATES: &[&str] = &["crates/cluster/", "crates/store/"];

/// Struct-name suffixes exempt from `float-in-sim-state`: `*Config`/
/// `*Spec` are inputs frozen before the run starts, `*Perf`/`*Report`
/// are derived outputs rendered after it ends. Neither evolves inside
/// the event loop, so float rounding there cannot fork a replay.
const FLOAT_OK_SUFFIXES: &[&str] = &["Config", "Perf", "Report", "Spec"];

/// The field name owning the type token at `k`: the closest preceding
/// `name :` pair inside the struct body opened at `open`. A path
/// segment (`std :: vec`) has a second colon, which rules it out.
fn field_name_before(tokens: &[Token], open: usize, k: usize) -> Option<&str> {
    (open + 1..k).rev().find_map(|j| {
        let name = tokens[j].ident()?;
        let typed = tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && !tokens.get(j + 2).is_some_and(|t| t.is_punct(':'));
        let path_segment = j >= 1 && tokens[j - 1].is_punct(':');
        (typed && !path_segment).then_some(name)
    })
}

fn rule_float_in_sim_state(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let normalized = ctx.file.replace('\\', "/");
    if !SIM_STATE_CRATES.iter().any(|p| normalized.contains(p)) {
        return;
    }
    let mut i = 0;
    while i < ctx.tokens.len() {
        if !ctx.tokens[i].is_ident("struct") || ctx.in_test(i) {
            i += 1;
            continue;
        }
        let Some(name) = ctx.tokens.get(i + 1).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        // Locate the field block. Hitting `;` or `(` first means a unit
        // or tuple struct — those carry config-like scalars (`Bandwidth`),
        // not evolving state, and stay out of scope.
        let Some(open_rel) = ctx.tokens[i + 2..]
            .iter()
            .position(|t| t.is_punct('{') || t.is_punct('(') || t.is_punct(';'))
        else {
            break;
        };
        let open = i + 2 + open_rel;
        if !ctx.tokens[open].is_punct('{') {
            i = open + 1;
            continue;
        }
        let close = matching_brace(ctx.tokens, open).unwrap_or(ctx.tokens.len());
        if FLOAT_OK_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            i = close + 1;
            continue;
        }
        for k in open + 1..close {
            let Some(ty) = ctx.tokens[k].ident() else {
                continue;
            };
            if ty != "f32" && ty != "f64" {
                continue;
            }
            let field = field_name_before(ctx.tokens, open, k).unwrap_or("<field>");
            push(
                findings,
                "float-in-sim-state",
                ctx,
                ctx.tokens[k].line,
                format!(
                    "struct `{name}` holds `{ty}` field `{field}`; live simulation state must \
                     be fixed-point integers (u64 ns, bytes, shifted EWMAs) so same-seed \
                     replay stays bit-identical — floats belong in `*Config` inputs and \
                     `*Perf`/`*Report` outputs"
                ),
            );
        }
        i = close + 1;
    }
}

/// Event-path function names: the component dispatch entry point and
/// completion handlers.
fn is_event_path_fn(name: &str) -> bool {
    name == "handle"
        || name == "on_event"
        || name.contains("complete")
        || name.contains("completion")
}

fn rule_unwrap_in_event_path(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident("unwrap") {
            continue;
        }
        let call = i >= 1
            && ctx.tokens[i - 1].is_punct('.')
            && matches_seq(ctx.tokens, i + 1, &["(", ")"]);
        if !call || ctx.in_test(i) {
            continue;
        }
        let fn_name = ctx.fn_names[i];
        if is_event_path_fn(fn_name) {
            push(
                findings,
                "unwrap-in-event-path",
                ctx,
                t.line,
                format!(
                    "bare `.unwrap()` inside event path `fn {fn_name}`; a poisoned event must \
                     fail with a protocol message — use `.expect(\"invariant…\")`"
                ),
            );
        }
    }
}

/// Recovery/error-containment function names: reset ladders, watchdog
/// and timeout sweeps, abort/failure handlers, poison containment.
/// These run precisely when device state is already damaged, so a
/// panic there turns a contained error into a simulator crash.
fn is_recovery_path_fn(name: &str) -> bool {
    const MARKS: &[&str] = &[
        "recover",
        "reset",
        "abort",
        "retransmit",
        "resubmit",
        "watchdog",
        "timed_out",
        "timeout",
        "poison",
        "fail_",
    ];
    MARKS.iter().any(|m| name.contains(m)) || name == "fail"
}

fn rule_unwrap_in_recovery_path(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if name != "unwrap" && name != "expect" {
            continue;
        }
        // A method call: `.unwrap()` / `.expect("…")`. The `(` check
        // also excludes `world.expect::<T>()` — a resource lookup whose
        // absence is a harness bug, not damaged protocol state.
        let method = i >= 1
            && ctx.tokens[i - 1].is_punct('.')
            && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !method || ctx.in_test(i) {
            continue;
        }
        let fn_name = ctx.fn_names[i];
        if !is_recovery_path_fn(fn_name) {
            continue;
        }
        push(
            findings,
            "unwrap-in-recovery-path",
            ctx,
            t.line,
            format!(
                "`.{name}(…)` inside recovery path `fn {fn_name}` turns damaged state into a \
                 crash; recovery code must tolerate missing or duplicate state (let-else + a \
                 counter), since it runs exactly when invariants are already broken"
            ),
        );
    }
}

/// Path components that mark a file as part of a protocol state machine
/// for `wildcard-event-arm`.
const PROTOCOL_CRATES: &[&str] = &["crates/nvme/", "crates/nic/", "crates/pcie/"];

fn rule_wildcard_event_arm(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let normalized = ctx.file.replace('\\', "/");
    if !PROTOCOL_CRATES.iter().any(|p| normalized.contains(p)) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident("_") {
            continue;
        }
        if ctx.in_test(i) {
            continue;
        }
        // `_ => {}` or `_ => ()` (with optional trailing comma).
        let arrow = matches_seq(ctx.tokens, i + 1, &["=", ">"]);
        if !arrow {
            continue;
        }
        let empty = matches_seq(ctx.tokens, i + 3, &["{", "}"])
            || matches_seq(ctx.tokens, i + 3, &["(", ")"]);
        if empty {
            push(
                findings,
                "wildcard-event-arm",
                ctx,
                t.line,
                "empty `_ => {}` arm in a protocol state machine silently drops events; \
                 match the variants explicitly or fail loudly"
                    .to_string(),
            );
        }
    }
}

const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier names that carry 64-bit simulated-time or address
/// quantities in this codebase.
fn is_wide_quantity_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("time")
        || lower.contains("addr")
        || lower.ends_with("_ns")
        || lower == "now"
        || lower == "lba"
}

fn rule_lossy_cast(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident("as") || ctx.in_test(i) {
            continue;
        }
        let Some(target) = ctx.tokens.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !NARROW_INTS.contains(&target) {
            continue;
        }
        // Source expression: `name as u32`, `name.0 as u32`,
        // `expr.name as u32`, or `name() as u32`.
        let mut j = i.checked_sub(1);
        // Skip a closing paren of a call: `name ( ... ) as` — walk to `(`'s callee.
        if let Some(k) = j {
            if ctx.tokens[k].is_punct(')') {
                let mut depth = 0i64;
                let mut m = k;
                loop {
                    if ctx.tokens[m].is_punct(')') {
                        depth += 1;
                    } else if ctx.tokens[m].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if m == 0 {
                        break;
                    }
                    m -= 1;
                }
                j = m.checked_sub(1);
            } else if ctx.tokens[k].kind == TokenKind::Number
                && k >= 1
                && ctx.tokens[k - 1].is_punct('.')
            {
                // Tuple field `.0`.
                j = (k - 1).checked_sub(1);
            }
        }
        let Some(k) = j else { continue };
        let Some(src_name) = ctx.tokens[k].ident() else {
            continue;
        };
        if is_wide_quantity_name(src_name) {
            push(
                findings,
                "lossy-cast",
                ctx,
                t.line,
                format!(
                    "`{src_name} as {target}` can truncate a 64-bit time/address quantity; \
                     use `try_into()` or widen the target"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Workspace pass: semantic rules over the parsed item model.
// ---------------------------------------------------------------------

/// Output of the workspace pass: cross-file findings plus the prover's
/// per-crate coverage stats (crate, roots, structs_checked,
/// opaque_edges) that [`crate::run`] turns into isolation certificates.
pub struct WorkspaceAnalysis {
    pub findings: Vec<Finding>,
    pub per_crate: Vec<(String, Vec<String>, usize, usize)>,
}

/// Runs every workspace-level rule over the parsed model.
/// Suppressions are NOT applied here.
pub fn check_workspace(ws: &Workspace) -> WorkspaceAnalysis {
    let resolver = Resolver::new(ws);
    let iso = prove_isolation(ws, &resolver);
    let mut findings = iso.findings;
    rule_static_mut(ws, &mut findings);
    rule_thread_local(ws, &mut findings);
    rule_raw_pointer_field(ws, &mut findings);
    rule_report_field_liveness(ws, &mut findings);
    rule_rng_stream_collision(ws, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    WorkspaceAnalysis {
        findings,
        per_crate: iso.per_crate,
    }
}

fn push_ws(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    file: &str,
    line: u32,
    message: String,
) {
    findings.push(Finding {
        rule,
        file: file.to_string(),
        line,
        message,
        suppressed: None,
    });
}

/// Type heads that make even a non-`mut` static mutable in place.
const INTERIOR_MUT_TYPES: &[&str] = &["Cell", "RefCell", "UnsafeCell", "Mutex", "RwLock"];

fn rule_static_mut(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (r, item) in ws.items() {
        let file = &ws.files[r.file];
        if item.cfg_test || !is_sim_state_crate(&file.crate_name) {
            continue;
        }
        let ItemKind::Static { mutable, ty } = &item.kind else {
            continue;
        };
        if *mutable {
            push_ws(
                findings,
                "static-mut",
                &file.rel,
                item.line,
                format!(
                    "`static mut {}` is process-global mutable state shared by every `World` in \
                     the process; the parallel runner clones worlds across workers — move this \
                     into the `World` (a resource or component field)",
                    item.name
                ),
            );
        } else if ty
            .idents()
            .any(|i| INTERIOR_MUT_TYPES.contains(&i) || is_atomic(i))
        {
            push_ws(
                findings,
                "static-mut",
                &file.rel,
                item.line,
                format!(
                    "static `{}` holds interior-mutable `{}` — a process-global that every \
                     `World` can write through; move it into the `World`",
                    item.name,
                    ty.display()
                ),
            );
        }
    }
}

fn rule_thread_local(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (r, item) in ws.items() {
        let file = &ws.files[r.file];
        if item.cfg_test || !is_sim_state_crate(&file.crate_name) {
            continue;
        }
        if matches!(item.kind, ItemKind::MacroCall) && item.name == "thread_local" {
            push_ws(
                findings,
                "thread-local-state",
                &file.rel,
                item.line,
                "`thread_local!` keys state by OS thread; the parallel runner migrates worlds \
                 between workers, so thread-local state silently forks a replay — store it in \
                 the `World` instead"
                    .to_string(),
            );
        }
    }
}

fn rule_raw_pointer_field(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (r, item) in ws.items() {
        let file = &ws.files[r.file];
        if item.cfg_test || !is_sim_state_crate(&file.crate_name) {
            continue;
        }
        let fields: Vec<&crate::parser::Field> = match &item.kind {
            ItemKind::Struct { fields, .. } => fields.iter().collect(),
            ItemKind::Enum { variants } => variants.iter().flat_map(|v| v.fields.iter()).collect(),
            _ => continue,
        };
        for field in fields {
            if field.ty.has_raw_pointer() {
                let shown = if field.name.is_empty() {
                    "<tuple field>"
                } else {
                    field.name.as_str()
                };
                push_ws(
                    findings,
                    "raw-pointer-field",
                    &file.rel,
                    field.line,
                    format!(
                        "field `{shown}` of `{}` is a raw pointer (`{}`); the isolation prover \
                         cannot show the pointee is owned by one world — use an index or a \
                         handle into world-owned storage",
                        item.name,
                        field.ty.display()
                    ),
                );
            }
        }
    }
}

/// `report-field-never-written`: a `*Report`/`*Perf` struct field that
/// no code anywhere in the workspace ever writes renders as a permanent
/// zero in every table — usually a refactor left the plumbing behind.
///
/// Write detection is deliberately generous (any plausible write
/// position counts), so the rule errs toward silence, never toward a
/// false positive: `x.f = …`, compound assigns, `f: …` struct-literal
/// inits outside type declarations, `&mut x.f`, and any method call on
/// the field (`r.f.push(…)`) all count as writes.
fn rule_report_field_liveness(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Candidate fields: named fields of non-test *Report/*Perf structs.
    struct Candidate {
        file: usize,
        struct_name: String,
        field: String,
        line: u32,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for (r, item) in ws.items() {
        if item.cfg_test || !(item.name.ends_with("Report") || item.name.ends_with("Perf")) {
            continue;
        }
        let ItemKind::Struct {
            fields,
            tuple: false,
        } = &item.kind
        else {
            continue;
        };
        for f in fields {
            if !f.name.is_empty() {
                candidates.push(Candidate {
                    file: r.file,
                    struct_name: item.name.clone(),
                    field: f.name.clone(),
                    line: f.line,
                });
            }
        }
    }
    if candidates.is_empty() {
        return;
    }
    let mut names: Vec<&str> = candidates.iter().map(|c| c.field.as_str()).collect();
    names.sort_unstable();
    names.dedup();

    let mut written: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    const COMPOUND_OPS: &[char] = &['+', '-', '*', '/', '%', '&', '|', '^', '<', '>'];
    for file in &ws.files {
        let toks = &file.lexed.tokens;
        // Token ranges of struct/enum declarations: `f:` there is a
        // field declaration, not a struct-literal write.
        let decl_spans: Vec<(usize, usize)> = file
            .parsed
            .items
            .iter()
            .filter(|it| matches!(it.kind, ItemKind::Struct { .. } | ItemKind::Enum { .. }))
            .map(|it| it.span)
            .collect();
        let in_decl = |i: usize| decl_spans.iter().any(|&(a, b)| i >= a && i < b);
        for (i, t) in toks.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            if names.binary_search(&name).is_err() || written.contains(name) {
                continue;
            }
            let prev_dot = i >= 1 && toks[i - 1].is_punct('.');
            let prev_colon = i >= 1 && toks[i - 1].is_punct(':');
            let next = |k: usize| toks.get(i + k);
            let is_write =
                // `x.f = v` (not `==`), `x.f += v` and friends.
                (prev_dot
                    && ((next(1).is_some_and(|t| t.is_punct('='))
                        && !next(2).is_some_and(|t| t.is_punct('=')))
                        || (next(1).is_some_and(|t| COMPOUND_OPS.iter().any(|&c| t.is_punct(c)))
                            && (next(2).is_some_and(|t| t.is_punct('='))
                                || next(3).is_some_and(|t| t.is_punct('='))))))
                // `x.f.method(…)` — the method may mutate.
                || (prev_dot
                    && next(1).is_some_and(|t| t.is_punct('.'))
                    && next(2).is_some_and(|t| t.ident().is_some())
                    && next(3).is_some_and(|t| t.is_punct('(')))
                // `f: v` outside a type declaration — struct-literal init.
                || (!in_decl(i)
                    && !prev_colon
                    && next(1).is_some_and(|t| t.is_punct(':'))
                    && !next(2).is_some_and(|t| t.is_punct(':')))
                // `&mut x.y.f` — mutable borrow of the field.
                || (prev_dot && {
                    let mut k = i - 1; // at the `.`
                    while k >= 2
                        && toks[k].is_punct('.')
                        && toks[k - 1].ident().is_some()
                    {
                        k -= 2;
                        if !(k >= 1 && toks[k].is_punct('.')) {
                            break;
                        }
                    }
                    k >= 1 && toks[k].is_ident("mut") && toks[k - 1].is_punct('&')
                });
            if is_write {
                written.insert(name);
            }
        }
    }

    for c in &candidates {
        if !written.contains(c.field.as_str()) {
            push_ws(
                findings,
                "report-field-never-written",
                &ws.files[c.file].rel,
                c.line,
                format!(
                    "field `{}` of `{}` is never written anywhere in the workspace — it renders \
                     as a permanent default; wire it up or delete it",
                    c.field, c.struct_name
                ),
            );
        }
    }
}

/// A fault/RNG stream site name: lowercase dotted words
/// (`"wire.drop"`). The shape the `Rng::new(stream_base ^
/// fnv1a64(site))` derivation in `crates/sim/src/fault.rs` keys on.
fn is_stream_site(s: &str) -> bool {
    s.contains('.')
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        && s.split('.').all(|seg| !seg.is_empty())
}

fn rule_rng_stream_collision(ws: &Workspace, findings: &mut Vec<Finding>) {
    // site value -> declaration sites (file rel, line, const name).
    let mut sites: std::collections::BTreeMap<&str, Vec<(&str, u32, &str)>> =
        std::collections::BTreeMap::new();
    for (r, item) in ws.items() {
        let file = &ws.files[r.file];
        if item.cfg_test
            || !is_sim_state_crate(&file.crate_name)
            || !matches!(item.kind, ItemKind::Const)
        {
            continue;
        }
        let toks = &file.lexed.tokens;
        let span = &toks[item.span.0..item.span.1.min(toks.len())];
        // Only string-typed consts can declare stream sites.
        if !span.iter().any(|t| t.is_ident("str")) {
            continue;
        }
        for t in span {
            if let Some(s) = t.str_text() {
                if is_stream_site(s) {
                    sites.entry(s).or_default().push((
                        file.rel.as_str(),
                        t.line,
                        item.name.as_str(),
                    ));
                }
            }
        }
    }
    for (value, decls) in &sites {
        if decls.len() < 2 {
            continue;
        }
        let (f0, l0, n0) = decls[0];
        for &(file, line, name) in &decls[1..] {
            push_ws(
                findings,
                "rng-stream-collision",
                file,
                line,
                format!(
                    "stream site `{value}` (const `{name}`) is already declared as `{n0}` at \
                     {f0}:{l0}; `stream_base ^ fnv1a64(site)` collides, so the two sites \
                     silently draw from one RNG sequence — pick a unique dotted name"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(file: &str, src: &str) -> Vec<&'static str> {
        let mut r: Vec<_> = check_file(file, src).into_iter().map(|f| f.rule).collect();
        r.dedup();
        r
    }

    #[test]
    fn clean_file_has_no_findings() {
        let src = r#"
            use dcs_sim::DetMap;
            struct S { m: DetMap<u64, u32> }
            impl S {
                fn handle(&mut self) {
                    for (k, v) in self.m.iter() { let _ = (k, v); }
                }
            }
        "#;
        assert!(check_file("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn detects_hash_collection_and_iteration() {
        let src = r#"
            use std::collections::HashMap;
            struct S { ops: HashMap<u64, u32> }
            impl S {
                fn scan(&self) {
                    for (k, v) in self.ops.iter() { let _ = (k, v); }
                }
            }
        "#;
        let hits = rules_hit("crates/x/src/lib.rs", src);
        assert!(hits.contains(&"hash-collection"));
        assert!(hits.contains(&"hash-iter"));
    }

    #[test]
    fn detects_for_loop_over_hash_field() {
        let src = r#"
            use std::collections::HashMap;
            struct S { sends: HashMap<u64, u32> }
            impl S {
                fn scan(&self) {
                    for (at, s) in &self.sends { let _ = (at, s); }
                }
            }
        "#;
        let f = check_file("crates/x/src/lib.rs", src);
        assert!(
            f.iter()
                .any(|f| f.rule == "hash-iter" && f.message.contains("for")),
            "{f:?}"
        );
    }

    #[test]
    fn detects_wall_clock_and_rng_and_spawn() {
        let src = r#"
            fn f() {
                let t = std::time::Instant::now();
                let s = std::time::SystemTime::now();
                let r = rand::thread_rng();
                std::thread::spawn(|| {});
            }
        "#;
        let hits = rules_hit("crates/x/src/lib.rs", src);
        assert!(hits.contains(&"wall-clock"));
        assert!(hits.contains(&"ambient-rng"));
        assert!(hits.contains(&"thread-spawn"));
    }

    #[test]
    fn unwrap_flagged_only_in_event_paths_and_not_in_tests() {
        let src = r#"
            fn handle(x: Option<u32>) -> u32 { x.unwrap() }
            fn helper(x: Option<u32>) -> u32 { x.unwrap() }
            fn on_dma_complete(x: Option<u32>) -> u32 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                fn handle(x: Option<u32>) -> u32 { x.unwrap() }
            }
        "#;
        let f = check_file("crates/x/src/lib.rs", src);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "unwrap-in-event-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![2, 4], "{f:?}");
    }

    #[test]
    fn recovery_paths_reject_unwrap_and_expect() {
        let src = r#"
            fn on_watchdog(x: Option<u32>) -> u32 { x.expect("live op") }
            fn fail_job(x: Option<u32>) -> u32 { x.unwrap() }
            fn controller_reset(x: Option<u32>) -> u32 { x.expect("queue") }
            fn helper(x: Option<u32>) -> u32 { x.expect("fine outside recovery") }
            fn resubmit_chunk(w: &mut World) {
                let plan = w.expect::<FaultPlan>();
            }
            #[cfg(test)]
            mod tests {
                fn fail_job(x: Option<u32>) -> u32 { x.unwrap() }
            }
        "#;
        let f = check_file("crates/x/src/lib.rs", src);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "unwrap-in-recovery-path")
            .map(|f| f.line)
            .collect();
        // The turbofish `expect::<T>()` (line 7) and the helper are fine.
        assert_eq!(lines, vec![2, 3, 4], "{f:?}");
    }

    #[test]
    fn expect_with_message_is_sanctioned() {
        let src =
            r#"fn handle(x: Option<u32>) -> u32 { x.expect("queue attached before doorbell") }"#;
        assert!(check_file("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wildcard_arm_only_in_protocol_crates() {
        let src = r#"
            fn step(e: u32) {
                match e {
                    0 => {}
                    _ => {}
                }
            }
        "#;
        assert!(rules_hit("crates/nvme/src/device.rs", src).contains(&"wildcard-event-arm"));
        assert!(rules_hit("crates/nic/src/device.rs", src).contains(&"wildcard-event-arm"));
        assert!(!rules_hit("crates/cluster/src/health.rs", src).contains(&"wildcard-event-arm"));
    }

    #[test]
    fn wildcard_arm_with_body_is_fine() {
        let src = r#"
            fn step(e: u32) {
                match e {
                    0 => {}
                    _ => panic!("unmodeled event"),
                }
            }
        "#;
        assert!(!rules_hit("crates/nvme/src/device.rs", src).contains(&"wildcard-event-arm"));
    }

    #[test]
    fn lossy_cast_on_time_and_addr_names() {
        let src = r#"
            fn f(deadline_time: u64, addr: u64, count: u64) {
                let a = deadline_time as u32;
                let b = addr as u16;
                let fine = count as u32;
                let also_fine = deadline_time as u64;
            }
        "#;
        let f = check_file("crates/x/src/lib.rs", src);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "lossy-cast")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![3, 4], "{f:?}");
    }

    #[test]
    fn float_state_flagged_outside_config_and_report_structs() {
        let src = r#"
            pub struct HealthConfig { pub repair_gbps: f64 }
            pub struct NodePerf { pub cpu_utilization: f64 }
            pub struct ClusterReport { pub goodput: f64 }
            pub struct TenantSpec { pub weight: f64 }
            struct Driver { ewma_ns: u64, mean_gap_ns: f64, weights: Vec<f64> }
        "#;
        let f = check_file("crates/cluster/src/driver.rs", src);
        let hits: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "float-in-sim-state")
            .collect();
        // Only the two `Driver` float fields; the suffix-exempt structs
        // pass untouched.
        assert_eq!(hits.len(), 2, "{f:?}");
        assert!(
            hits[0].message.contains("`mean_gap_ns`"),
            "{}",
            hits[0].message
        );
        assert!(hits[1].message.contains("`weights`"), "{}", hits[1].message);
    }

    #[test]
    fn float_state_scoped_to_state_crates_and_skips_tuple_structs() {
        // Out-of-scope crate: the workload generator's lognormal mu/sigma
        // are fine where they are.
        let src = "struct SizeState { mu: f64 }";
        assert!(!rules_hit("crates/workloads/src/gen.rs", src).contains(&"float-in-sim-state"));
        assert!(rules_hit("crates/store/src/qos.rs", src).contains(&"float-in-sim-state"));
        // Tuple structs (config-like scalars) are out of scope, and the
        // scan resynchronizes on the struct that follows.
        let src = r#"
            pub struct Gbps(pub f64);
            struct Next { vtime: f64 }
        "#;
        let f = check_file("crates/cluster/src/switch.rs", src);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "float-in-sim-state")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![3], "{f:?}");
    }

    #[test]
    fn float_state_ignores_test_structs() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                struct Fixture { jitter: f64 }
            }
        "#;
        assert!(!rules_hit("crates/cluster/src/health.rs", src).contains(&"float-in-sim-state"));
    }

    #[test]
    fn lossy_cast_through_tuple_field_and_call() {
        let src = r#"
            fn f(t: SimTime) {
                let a = t.start_time.0 as u32;
                let b = now() as u32;
            }
        "#;
        let f = check_file("crates/x/src/lib.rs", src);
        assert_eq!(
            f.iter().filter(|f| f.rule == "lossy-cast").count(),
            2,
            "{f:?}"
        );
    }
}
