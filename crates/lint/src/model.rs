//! The workspace model: every file lexed and item-parsed once, with
//! crate attribution, so the semantic rule families and the
//! world-isolation prover ([`crate::resolve`]) can reason across files.

use crate::lexer::{lex, Lexed};
use crate::parser::{parse, Item, ItemKind, ParsedFile};

/// One source file: its text, token stream, and parsed item table.
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Short crate name (`sim`, `cluster`, `tests`, `examples`, …).
    pub crate_name: String,
    pub src: String,
    pub lexed: Lexed,
    pub parsed: ParsedFile,
}

/// Every file of one linter invocation, lexed and parsed.
#[derive(Default)]
pub struct Workspace {
    pub files: Vec<FileModel>,
}

/// Stable reference to an item: (file index, item index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ItemRef {
    pub file: usize,
    pub item: usize,
}

impl Workspace {
    /// Builds the model from `(rel_path, source)` pairs.
    pub fn build(sources: Vec<(String, String)>) -> Workspace {
        let files = sources
            .into_iter()
            .map(|(rel, src)| {
                let lexed = lex(&src);
                let parsed = parse(&lexed);
                FileModel {
                    crate_name: crate_of(&rel),
                    rel,
                    src,
                    lexed,
                    parsed,
                }
            })
            .collect();
        Workspace { files }
    }

    /// The item behind a reference.
    pub fn item(&self, r: ItemRef) -> &Item {
        &self.files[r.file].parsed.items[r.item]
    }

    /// Iterates `(ItemRef, &Item)` over every item of every file.
    pub fn items(&self) -> impl Iterator<Item = (ItemRef, &Item)> {
        self.files.iter().enumerate().flat_map(|(fi, f)| {
            f.parsed
                .items
                .iter()
                .enumerate()
                .map(move |(ii, item)| (ItemRef { file: fi, item: ii }, item))
        })
    }

    /// The struct/enum items named `name` (workspace-wide, test items
    /// excluded — fixtures and test doubles are not simulation state).
    pub fn types_named(&self, name: &str) -> Vec<ItemRef> {
        self.items()
            .filter(|(_, it)| {
                !it.cfg_test
                    && it.name == name
                    && matches!(it.kind, ItemKind::Struct { .. } | ItemKind::Enum { .. })
            })
            .map(|(r, _)| r)
            .collect()
    }
}

/// Short crate name for a workspace-relative path: `crates/sim/…` →
/// `sim`; the root facade, integration tests, and examples get
/// pseudo-crate names so scoping rules can include or exclude them.
pub fn crate_of(rel: &str) -> String {
    let rel = rel.replace('\\', "/");
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    for (prefix, name) in [
        ("src/", "dcs"),
        ("tests/", "tests"),
        ("examples/", "examples"),
    ] {
        if rel.starts_with(prefix) {
            return name.to_string();
        }
    }
    "workspace".to_string()
}

/// Crates whose live simulation state the world-isolation prover and
/// the parallel-readiness rules police: each cluster node's `World` and
/// everything reachable from it must be ownable per-world for the
/// lock-step parallel runner (ROADMAP items 1–2) to be sound.
pub const SIM_STATE_CRATES: &[&str] = &[
    "sim", "pcie", "nvme", "nic", "gpu", "core", "cluster", "store",
];

/// True when `crate_name` is one of the sim-state crates.
pub fn is_sim_state_crate(crate_name: &str) -> bool {
    SIM_STATE_CRATES.contains(&crate_name)
}

/// Per-crate isolation certificate: the machine-readable summary the
/// parallel-DES CI gate consumes (DESIGN.md §15). One entry per
/// sim-state crate, always emitted — a crate with zero roots still
/// appears, so coverage gaps are visible rather than silent.
#[derive(Debug, Clone)]
pub struct CrateCertificate {
    /// Short crate name (`sim`, `pcie`, …).
    pub crate_name: String,
    /// Isolation roots found in this crate (the `World`, `Component`
    /// impls, registered world resources), sorted.
    pub roots: Vec<String>,
    /// Structs/enums defined in this crate visited by the prover.
    pub structs_checked: usize,
    /// `dyn Trait` edges in this crate's checked state the prover
    /// cannot see through (type-erased — isolation is asserted, not
    /// proven, across these).
    pub opaque_edges: usize,
    /// Isolation findings still active after pragmas and baseline.
    pub active_violations: usize,
    /// Isolation findings waived by a pragma or baseline entry.
    pub waived: usize,
}

impl CrateCertificate {
    /// The verdict the parallel runner's gate keys on.
    pub fn isolated(&self) -> bool {
        self.active_violations == 0
    }

    /// Renders one JSON object (hand-rolled; the crate is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        let roots = self
            .roots
            .iter()
            .map(|r| format!("\"{}\"", json_escape(r)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"crate\":\"{}\",\"roots\":[{}],\"structs_checked\":{},\"opaque_edges\":{},\"active_violations\":{},\"waived\":{},\"isolated\":{}}}",
            json_escape(&self.crate_name),
            roots,
            self.structs_checked,
            self.opaque_edges,
            self.active_violations,
            self.waived,
            self.isolated()
        )
    }
}

/// Renders the full certificate document.
pub fn certificates_to_json(certs: &[CrateCertificate]) -> String {
    let body = certs
        .iter()
        .map(|c| format!("    {}", c.to_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n  \"schema\": \"dcs-lint-isolation-v1\",\n  \"crates\": [\n{body}\n  ]\n}}\n")
}

/// Minimal JSON string escaping.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/sim/src/world.rs"), "sim");
        assert_eq!(crate_of("crates/lint/src/lib.rs"), "lint");
        assert_eq!(crate_of("src/lib.rs"), "dcs");
        assert_eq!(crate_of("tests/cluster.rs"), "tests");
        assert_eq!(crate_of("examples/quickstart.rs"), "examples");
        assert!(is_sim_state_crate("store"));
        assert!(!is_sim_state_crate("workloads"));
        assert!(!is_sim_state_crate("tests"));
    }

    #[test]
    fn workspace_indexes_types_by_name_excluding_tests() {
        let ws = Workspace::build(vec![
            (
                "crates/sim/src/a.rs".into(),
                "pub struct Frame { x: u8 }".into(),
            ),
            (
                "crates/nic/src/b.rs".into(),
                "#[cfg(test)] mod t { struct Frame { y: u8 } }\npub enum Frame2 {}".into(),
            ),
        ]);
        assert_eq!(ws.types_named("Frame").len(), 1);
        assert_eq!(ws.types_named("Frame2").len(), 1);
        assert!(ws.types_named("Nothing").is_empty());
    }

    #[test]
    fn certificate_json_shape() {
        let cert = CrateCertificate {
            crate_name: "sim".into(),
            roots: vec!["World".into()],
            structs_checked: 3,
            opaque_edges: 1,
            active_violations: 0,
            waived: 2,
        };
        let json = cert.to_json();
        assert!(json.contains("\"crate\":\"sim\""));
        assert!(json.contains("\"isolated\":true"));
        let doc = certificates_to_json(&[cert]);
        assert!(doc.contains("dcs-lint-isolation-v1"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
