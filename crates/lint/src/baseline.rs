//! The grandfathering mechanism: `lint-baseline.toml`.
//!
//! The baseline lists the *only* sanctioned rule violations in the
//! workspace, each with a written reason, so `--deny` can gate CI from
//! day one without a flag-day cleanup. The format is a tiny TOML
//! subset parsed by hand (the workspace builds offline, so no toml
//! crate):
//!
//! ```toml
//! # comment
//! [[allow]]
//! rule = "wall-clock"
//! file = "crates/bench/src/table3.rs"
//! contains = "Instant::now"   # optional: substring of the source line
//! reason = "self-timing of the harness; never feeds simulation state"
//! ```
//!
//! Matching is by `(rule, file)` plus the optional `contains`
//! substring, NOT by line number — baselines must survive unrelated
//! edits shifting lines. Entries that match nothing are *stale* and
//! reported as errors so the file can only shrink over time.

use crate::rules::{rule_exists, Finding, Suppression};

/// One sanctioned violation.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    /// Substring the offending source line must contain ("" = any).
    pub contains: String,
    pub reason: String,
    /// Line of the `[[allow]]` header in the baseline file.
    pub decl_line: u32,
}

/// The parsed baseline plus per-entry use counts.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
    used: Vec<bool>,
}

impl Baseline {
    /// Parses the baseline text. Returns `Err` with every syntax
    /// problem found (path-less; the caller prefixes the file name).
    pub fn parse(text: &str) -> Result<Baseline, Vec<String>> {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        let mut errors = Vec::new();
        let mut current: Option<BaselineEntry> = None;

        let mut finish = |entry: Option<BaselineEntry>, errors: &mut Vec<String>| {
            let Some(e) = entry else { return };
            if e.rule.is_empty() {
                errors.push(format!("line {}: entry is missing `rule`", e.decl_line));
            } else if !rule_exists(&e.rule) {
                errors.push(format!("line {}: unknown rule `{}`", e.decl_line, e.rule));
            }
            if e.file.is_empty() {
                errors.push(format!("line {}: entry is missing `file`", e.decl_line));
            }
            if e.reason.trim().is_empty() {
                errors.push(format!(
                    "line {}: entry is missing `reason` — every baseline exception must be justified",
                    e.decl_line
                ));
            }
            entries.push(e);
        };

        for (i, raw) in text.lines().enumerate() {
            let lineno = (i + 1) as u32;
            let line = match raw.find('#') {
                // A `#` outside quotes starts a comment.
                Some(pos) if !in_quotes(raw, pos) => &raw[..pos],
                _ => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(current.take(), &mut errors);
                current = Some(BaselineEntry {
                    rule: String::new(),
                    file: String::new(),
                    contains: String::new(),
                    reason: String::new(),
                    decl_line: lineno,
                });
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                errors.push(format!(
                    "line {lineno}: expected `[[allow]]` or `key = \"value\"`, got `{line}`"
                ));
                continue;
            };
            let Some(entry) = current.as_mut() else {
                errors.push(format!("line {lineno}: `{key}` outside an [[allow]] entry"));
                continue;
            };
            match key {
                "rule" => entry.rule = value,
                "file" => entry.file = value,
                "contains" => entry.contains = value,
                "reason" => entry.reason = value,
                other => errors.push(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        finish(current.take(), &mut errors);

        if errors.is_empty() {
            let used = vec![false; entries.len()];
            Ok(Baseline { entries, used })
        } else {
            Err(errors)
        }
    }

    /// Marks `finding` suppressed if an entry matches. `source_line` is
    /// the text of the offending line (for `contains` matching).
    pub fn apply(&mut self, finding: &mut Finding, source_line: &str) {
        if finding.suppressed.is_some() {
            return;
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == finding.rule
                && e.file == finding.file
                && (e.contains.is_empty() || source_line.contains(&e.contains))
            {
                finding.suppressed = Some(Suppression::Baseline);
                self.used[i] = true;
                return;
            }
        }
    }

    /// Entries that matched nothing — stale grandfathering that must be
    /// deleted from the baseline file.
    pub fn stale(&self) -> Vec<&BaselineEntry> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|(_, &used)| !used)
            .map(|(e, _)| e)
            .collect()
    }
}

/// Parses `key = "value"`. Values must be double-quoted strings.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    if !rest.starts_with('"') || !rest.ends_with('"') || rest.len() < 2 {
        return None;
    }
    // No escape support needed: paths and reasons are plain text.
    Some((key, rest[1..rest.len() - 1].to_string()))
}

/// True when byte offset `pos` in `line` falls inside a quoted string.
fn in_quotes(line: &str, pos: usize) -> bool {
    line.bytes().take(pos).filter(|&b| b == b'"').count() % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    const GOOD: &str = r#"
# The only sanctioned exceptions.
[[allow]]
rule = "wall-clock"
file = "crates/bench/src/table3.rs"
contains = "Instant::now"
reason = "self-timing"
"#;

    fn finding(rule: &'static str, file: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            message: String::new(),
            suppressed: None,
        }
    }

    #[test]
    fn parses_and_matches() {
        let mut b = Baseline::parse(GOOD).unwrap();
        assert_eq!(b.entries.len(), 1);
        let mut f = finding("wall-clock", "crates/bench/src/table3.rs");
        b.apply(&mut f, "let start = Instant::now();");
        assert_eq!(f.suppressed, Some(Suppression::Baseline));
        assert!(b.stale().is_empty());
    }

    #[test]
    fn contains_mismatch_does_not_match_and_goes_stale() {
        let mut b = Baseline::parse(GOOD).unwrap();
        let mut f = finding("wall-clock", "crates/bench/src/table3.rs");
        b.apply(&mut f, "let start = SystemTime::now();");
        assert!(f.suppressed.is_none());
        assert_eq!(b.stale().len(), 1);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let bad = "[[allow]]\nrule = \"wall-clock\"\nfile = \"x.rs\"\n";
        let errs = Baseline::parse(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("reason")), "{errs:?}");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let bad = "[[allow]]\nrule = \"no-such\"\nfile = \"x.rs\"\nreason = \"r\"\n";
        let errs = Baseline::parse(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("unknown rule")), "{errs:?}");
    }

    #[test]
    fn garbage_line_is_an_error() {
        let bad = "[[allow]]\nrule: \"x\"\n";
        assert!(Baseline::parse(bad).is_err());
    }
}
