//! # dcs-lint — workspace determinism & invariant analyzer
//!
//! A repo-specific static analysis pass for the DCS-ctrl reproduction.
//! The simulator's entire evaluation rests on bit-identical same-seed
//! replay; this tool machine-checks the source-level discipline that
//! property depends on, the way sanitizers and race detectors guard a
//! real serving stack. See DESIGN.md §10 for the policy and
//! [`rules::RULES`] for the rule list.
//!
//! Built on a hand-rolled token scanner ([`lexer`]) rather than `syn`
//! because the workspace builds fully offline; the rules only need
//! token patterns, not types.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p dcs-lint -- --workspace            # report
//! cargo run -p dcs-lint -- --workspace --deny     # CI gate
//! ```
//!
//! Suppression, from most to least local:
//!
//! * `// dcs-lint: allow(rule) — reason` on (or directly above) the
//!   offending line;
//! * `// dcs-lint: allow-file(rule) — reason` anywhere in the file;
//! * an entry in `lint-baseline.toml` (see [`baseline`]).

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod resolve;
pub mod rules;

use std::path::{Path, PathBuf};

use baseline::Baseline;
use model::{certificates_to_json, crate_of, CrateCertificate, Workspace};
use rules::{
    check_file, check_workspace, is_workspace_rule, rule_exists, Finding, Suppression,
    ISOLATION_RULES,
};

/// A parsed `// dcs-lint: allow(...)` pragma.
#[derive(Debug)]
struct Pragma {
    /// Rules it allows.
    rules: Vec<String>,
    /// Source line the comment sits on.
    comment_line: u32,
    /// Whether it applies to the whole file.
    whole_file: bool,
    /// Whether a non-empty reason followed the rule list.
    has_reason: bool,
}

/// Parses every dcs-lint pragma out of the file's line comments.
fn parse_pragmas(lexed: &lexer::Lexed) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in &lexed.comments {
        // Doc comments (`///`, `//!`) describe the pragma syntax in
        // prose; only plain `//` comments carry live pragmas.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find("dcs-lint:") else {
            continue;
        };
        let rest = c.text[at + "dcs-lint:".len()..].trim_start();
        let whole_file = rest.starts_with("allow-file(");
        let prefix = if whole_file { "allow-file(" } else { "allow(" };
        if !rest.starts_with(prefix) {
            continue;
        }
        let body = &rest[prefix.len()..];
        let Some(close) = body.find(')') else {
            continue;
        };
        let rules: Vec<String> = body[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        // A reason follows an em-dash or hyphen separator.
        let tail = body[close + 1..].trim_start();
        let has_reason = ["—", "--", "-"]
            .iter()
            .any(|sep| tail.strip_prefix(sep).is_some_and(|r| !r.trim().is_empty()));
        pragmas.push(Pragma {
            rules,
            comment_line: c.line,
            whole_file,
            has_reason,
        });
    }
    pragmas
}

/// Analyzes one file in isolation: runs the per-file rules, then
/// applies pragma suppression. Baseline suppression is layered on by
/// the caller via [`Baseline::apply`] (it is stateful across files).
/// The workspace pass ([`rules::check_workspace`]) does not run here —
/// use [`run`] for the full pipeline.
///
/// `rel` is the workspace-relative path — rules use it for crate
/// scoping, and reports print it verbatim.
pub fn analyze_source(rel: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mut findings = check_file(rel, src);
    apply_pragmas(rel, &lexed, &mut findings, false);
    findings.sort_by_key(|f| f.line);
    findings
}

/// Applies this file's pragmas to `findings` (which must already hold
/// every finding for the file — per-file and, in the full pipeline,
/// workspace ones), appending the meta findings pragma application
/// itself produces (`pragma-missing-reason`, `stale-pragma`).
///
/// `workspace_pass` says whether `findings` includes the workspace
/// rules: a pragma for those can only be judged stale when they
/// actually ran.
fn apply_pragmas(
    rel: &str,
    lexed: &lexer::Lexed,
    findings: &mut Vec<Finding>,
    workspace_pass: bool,
) {
    let pragmas = parse_pragmas(lexed);

    // Lines that carry at least one token: a pragma on a comment-only
    // line targets the next such line.
    let mut code_lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    code_lines.sort_unstable();
    code_lines.dedup();
    let next_code_line = |after: u32| -> Option<u32> {
        let idx = code_lines.partition_point(|&l| l <= after);
        code_lines.get(idx).copied()
    };

    for p in &pragmas {
        let mut all_rules_known = true;
        for rule in &p.rules {
            if !rule_exists(rule) {
                all_rules_known = false;
                findings.push(Finding {
                    rule: "pragma-missing-reason",
                    file: rel.to_string(),
                    line: p.comment_line,
                    message: format!("pragma allows unknown rule `{rule}`"),
                    suppressed: None,
                });
            }
        }
        if !p.has_reason {
            findings.push(Finding {
                rule: "pragma-missing-reason",
                file: rel.to_string(),
                line: p.comment_line,
                message: "allow pragma without a reason — write `// dcs-lint: allow(rule) — why`"
                    .to_string(),
                suppressed: None,
            });
            continue; // a reasonless pragma suppresses nothing
        }
        let target = if p.whole_file {
            None // matches every line
        } else if code_lines.binary_search(&p.comment_line).is_ok() {
            Some(p.comment_line)
        } else {
            next_code_line(p.comment_line)
        };
        let mut used = 0usize;
        for f in findings.iter_mut() {
            if f.suppressed.is_some() {
                continue;
            }
            let line_matches = target.is_none_or(|t| f.line == t);
            if line_matches && p.rules.iter().any(|r| r == f.rule) {
                f.suppressed = Some(Suppression::Pragma);
                used += 1;
            }
        }
        // A reasoned pragma for known rules that suppressed nothing is
        // itself a finding: the violation it waived is gone. Judged
        // only when every rule it names actually ran this pass.
        let judgeable = workspace_pass || p.rules.iter().all(|r| !is_workspace_rule(r));
        if used == 0 && all_rules_known && judgeable && !p.rules.is_empty() {
            findings.push(Finding {
                rule: "stale-pragma",
                file: rel.to_string(),
                line: p.comment_line,
                message: format!(
                    "allow pragma for `{}` suppressed nothing — the violation it waived is \
                     gone; delete the pragma",
                    p.rules.join(", ")
                ),
                suppressed: None,
            });
        }
    }
}

/// The text of 1-based `line` in `src` ("" when out of range).
pub fn source_line(src: &str, line: u32) -> &str {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
}

/// Recursively collects the workspace `.rs` files to lint, relative to
/// `root`. Skips build output, VCS metadata, and the linter's own rule
/// fixtures (which are violations on purpose).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name.starts_with('.') || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Everything one linter invocation produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings across every file, active and suppressed.
    pub findings: Vec<Finding>,
    /// Stale baseline entries (matched nothing), as display strings.
    pub stale_baseline: Vec<String>,
    /// Files scanned.
    pub files: usize,
    /// Per sim-state-crate isolation certificates (world-isolation
    /// prover coverage + violation counts), in `SIM_STATE_CRATES`
    /// order. Empty when the workspace pass did not run.
    pub certificates: Vec<CrateCertificate>,
}

impl Report {
    /// Findings that count against `--deny`.
    pub fn active(&self) -> impl Iterator<Item = &Finding> + '_ {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Number of findings suppressed by `kind`.
    pub fn suppressed_count(&self, kind: Suppression) -> usize {
        self.findings
            .iter()
            .filter(|f| f.suppressed == Some(kind))
            .count()
    }

    /// True when the run is clean: no active findings, no stale
    /// baseline entries.
    pub fn clean(&self) -> bool {
        self.active().next().is_none() && self.stale_baseline.is_empty()
    }

    /// Renders the isolation-certificate document (see
    /// [`model::certificates_to_json`]).
    pub fn certificate_json(&self) -> String {
        certificates_to_json(&self.certificates)
    }
}

/// Lints `files` (absolute or root-relative paths), reporting paths
/// relative to `root`, with optional baseline suppression.
///
/// This is the full two-pass pipeline (DESIGN.md §15): build the
/// workspace model once, run the per-file rules and the workspace
/// rules (isolation prover, cross-file semantic rules), merge per
/// file, apply pragmas exactly once over the merged set, then the
/// baseline, and finally cut the per-crate isolation certificates.
pub fn run(
    root: &Path,
    files: &[PathBuf],
    mut baseline: Option<Baseline>,
) -> std::io::Result<Report> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, src));
    }
    let ws = Workspace::build(sources);
    let analysis = check_workspace(&ws);

    let mut report = Report {
        files: files.len(),
        ..Default::default()
    };
    let mut ws_findings = analysis.findings;
    for file in &ws.files {
        let mut findings = check_file(&file.rel, &file.src);
        // Claim this file's share of the workspace findings.
        let mut i = 0;
        while i < ws_findings.len() {
            if ws_findings[i].file == file.rel {
                findings.push(ws_findings.swap_remove(i));
            } else {
                i += 1;
            }
        }
        apply_pragmas(&file.rel, &file.lexed, &mut findings, true);
        findings.sort_by_key(|f| f.line);
        if let Some(b) = baseline.as_mut() {
            for f in findings.iter_mut() {
                let line = source_line(&file.src, f.line);
                b.apply(f, line);
            }
        }
        report.findings.extend(findings);
    }
    debug_assert!(ws_findings.is_empty(), "workspace findings left unclaimed");
    if let Some(b) = baseline {
        for e in b.stale() {
            report.stale_baseline.push(format!(
                "lint-baseline.toml:{}: stale entry (rule `{}`, file `{}`) matches nothing — delete it",
                e.decl_line, e.rule, e.file
            ));
        }
    }

    // Cut the isolation certificates: prover coverage per crate plus
    // post-suppression violation counts for the parallel family.
    for (crate_name, roots, structs_checked, opaque_edges) in analysis.per_crate {
        let of_crate =
            |f: &&Finding| ISOLATION_RULES.contains(&f.rule) && crate_of(&f.file) == crate_name;
        let active = report
            .findings
            .iter()
            .filter(of_crate)
            .filter(|f| f.suppressed.is_none())
            .count();
        let waived = report
            .findings
            .iter()
            .filter(of_crate)
            .filter(|f| f.suppressed.is_some())
            .count();
        report.certificates.push(CrateCertificate {
            crate_name,
            roots,
            structs_checked,
            opaque_edges,
            active_violations: active,
            waived,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_on_same_line_suppresses() {
        let src =
            "use std::collections::HashMap; // dcs-lint: allow(hash-collection) — index only\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].suppressed, Some(Suppression::Pragma));
    }

    #[test]
    fn pragma_on_previous_line_suppresses_next_code_line() {
        let src = "\
// dcs-lint: allow(hash-collection) — justified here
// (continued commentary)
use std::collections::HashMap;
";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].suppressed, Some(Suppression::Pragma));
    }

    #[test]
    fn pragma_without_reason_suppresses_nothing_and_is_flagged() {
        let src = "use std::collections::HashMap; // dcs-lint: allow(hash-collection)\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(f
            .iter()
            .any(|f| f.rule == "pragma-missing-reason" && f.suppressed.is_none()));
        assert!(f
            .iter()
            .any(|f| f.rule == "hash-collection" && f.suppressed.is_none()));
    }

    #[test]
    fn pragma_for_other_rule_does_not_suppress() {
        let src = "use std::collections::HashMap; // dcs-lint: allow(wall-clock) — wrong rule\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(f
            .iter()
            .any(|f| f.rule == "hash-collection" && f.suppressed.is_none()));
    }

    #[test]
    fn allow_file_suppresses_every_occurrence() {
        let src = "\
// dcs-lint: allow-file(hash-collection) — interior index, never iterated
use std::collections::HashMap;
struct A { x: HashMap<u8, u8> }
struct B { y: HashMap<u8, u8> }
";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(f.iter().filter(|f| f.rule == "hash-collection").count() >= 3);
        assert!(
            f.iter().all(|f| f.suppressed == Some(Suppression::Pragma)),
            "{f:?}"
        );
    }

    #[test]
    fn unknown_rule_in_pragma_is_flagged() {
        let src = "let x = 1; // dcs-lint: allow(nonsense) — reason\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(f
            .iter()
            .any(|f| f.rule == "pragma-missing-reason" && f.message.contains("unknown rule")));
    }
}
