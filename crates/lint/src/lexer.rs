//! A minimal Rust lexer: just enough to token-scan workspace sources.
//!
//! The linter does not need types or a parse tree — every rule in
//! [`crate::rules`] is a pattern over identifiers and punctuation — but
//! it must never match inside string literals or comments, and it must
//! know which line every token sits on so pragmas and reports line up.
//! This lexer handles the full set of Rust literal syntaxes that appear
//! in the workspace: line and (nested) block comments, plain/byte/raw
//! strings, char literals vs. lifetimes, raw identifiers, and loose
//! numeric literals.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// The token classes the rule engine distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type` → `type`).
    Ident(String),
    /// Single punctuation character (`{`, `:`, `=`, …).
    Punct(char),
    /// String, byte-string, or char literal. String-like literals carry
    /// their unquoted content (escapes left as written) so value-keyed
    /// rules (`rng-stream-collision`) can read them; char/byte-char
    /// literals carry `None`.
    Literal(Option<String>),
    /// Numeric literal (contents discarded).
    Number,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True for any string/char literal token.
    pub fn is_literal(&self) -> bool {
        matches!(self.kind, TokenKind::Literal(_))
    }

    /// The unquoted content of a string-like literal, if this is one.
    pub fn str_text(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Literal(Some(s)) => Some(s),
            _ => None,
        }
    }
}

/// A line comment, with the line it starts on and its full text
/// (including the leading `//`). Used for pragma detection.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated literals/comments are tolerated (the
/// rest of the file is swallowed) — the linter reports what it can
/// rather than erroring out.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($range:expr) => {
            line += bytes[$range].iter().filter(|&&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(start..i.min(bytes.len()));
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i = skip_string(bytes, i);
                bump_lines!(start..i.min(bytes.len()));
                out.tokens.push(Token {
                    kind: TokenKind::Literal(Some(string_content(src, start + 1, i))),
                    // Multi-line literals are reported at the line they
                    // open on, where the code (and any pragma) sits.
                    line: start_line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let start = i;
                let start_line = line;
                let (next, content) = skip_raw_or_byte_string(bytes, i);
                i = next;
                bump_lines!(start..i.min(bytes.len()));
                out.tokens.push(Token {
                    kind: TokenKind::Literal(content.map(|(a, b)| src[a..b].to_string())),
                    line: start_line,
                });
            }
            b'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes.get(i + 2).is_some_and(|c| is_ident_start(*c)) =>
            {
                // Raw identifier r#type → emit `type`.
                let (ident, next) = take_ident(src, bytes, i + 2);
                out.tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    line,
                });
                i = next;
            }
            b'\'' => {
                // Lifetime or char literal.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let is_lifetime = next.is_some_and(is_ident_start) && after != Some(b'\'');
                if is_lifetime {
                    // Emit the lifetime as an apostrophe-prefixed ident
                    // (`'static`) — no rule pattern can collide with a
                    // plain ident, and the parser's type model needs to
                    // tell `&'static str` (immutable forever, safe to
                    // hold in world state) from `&'a str`.
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident(src[start..i].to_string()),
                        line,
                    });
                } else {
                    // Char literal: 'x', '\n', '\u{1F600}', '\''.
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => break, // malformed; stop at EOL
                            _ => i += 1,
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal(None),
                        line,
                    });
                }
            }
            b if is_ident_start(b) => {
                let (ident, next) = take_ident(src, bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    line,
                });
                i = next;
            }
            b if b.is_ascii_digit() => {
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        i += 1;
                    } else if c == b'.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                        // `1.5` is one number; `1..5` stops before the range.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    line,
                });
            }
            _ => {
                // Multi-byte UTF-8 (e.g. an em-dash in a string would have
                // been swallowed above; stray ones appear only in idents we
                // don't care about). Advance by the full code point.
                let ch_len = src[i..].chars().next().map_or(1, |c| c.len_utf8());
                if ch_len == 1 {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct(b as char),
                        line,
                    });
                }
                i += ch_len;
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn take_ident(src: &str, bytes: &[u8], start: usize) -> (String, usize) {
    let mut i = start;
    while i < bytes.len() && is_ident_continue(bytes[i]) {
        i += 1;
    }
    (src[start..i].to_string(), i)
}

/// Skips a plain `"…"` string starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// The content of a plain string whose body starts at `body` and whose
/// scan ended at `end` (just past the closing quote, or past EOF when
/// unterminated).
fn string_content(src: &str, body: usize, end: usize) -> String {
    let end = end.min(src.len());
    let close = if end > body && src.as_bytes()[end - 1] == b'"' {
        end - 1
    } else {
        end
    };
    src[body..close].to_string()
}

/// True when position `i` starts `r"`, `r#"`, `b"`, `br"`, `br#"`, or `b'`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        b'r' => match bytes.get(i + 1) {
            Some(b'"') => true,
            Some(b'#') => {
                // r#"…"# raw string, not r#ident: hashes then a quote.
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                bytes.get(j) == Some(&b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Skips a raw/byte string (or byte char) starting at its prefix;
/// returns the index just past the literal plus the byte range of its
/// content (`None` for byte chars, whose value no rule reads).
fn skip_raw_or_byte_string(bytes: &[u8], start: usize) -> (usize, Option<(usize, usize)>) {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
        if bytes.get(i) == Some(&b'\'') {
            // Byte char b'x'.
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => return (i + 1, None),
                    _ => i += 1,
                }
            }
            return (i, None);
        }
        if bytes.get(i) == Some(&b'"') {
            let end = skip_string(bytes, i);
            let close = if end > i + 1 && bytes.get(end - 1) == Some(&b'"') {
                end - 1
            } else {
                end.min(bytes.len())
            };
            return (end, Some((i + 1, close)));
        }
    }
    // r or br: count hashes, then scan for `"` + same hashes.
    debug_assert_eq!(bytes[i], b'r');
    i += 1;
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    let body = i;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (j, Some((body, i)));
            }
        }
        i += 1;
    }
    (i, Some((body, i.min(bytes.len()))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"thread_rng"#;
            let b = b"SystemTime";
            let c = 'x';
            let esc = '\'';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(!ids.iter().any(|i| i == "Instant"), "{ids:?}");
        assert!(!ids.iter().any(|i| i == "thread_rng"), "{ids:?}");
        assert!(!ids.iter().any(|i| i == "SystemTime"), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_literal()));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn string_literals_carry_their_content() {
        let lexed =
            lex(r###"let a = "plain"; let b = r#"raw "quoted" body"#; let c = b"bytes";"###);
        let texts: Vec<&str> = lexed.tokens.iter().filter_map(|t| t.str_text()).collect();
        assert_eq!(texts, vec!["plain", r#"raw "quoted" body"#, "bytes"]);
        // Char and byte-char literals are literals without text.
        let lexed = lex("let c = 'x'; let b = b'y';");
        assert_eq!(lexed.tokens.iter().filter(|t| t.is_literal()).count(), 2);
        assert!(lexed.tokens.iter().all(|t| t.str_text().is_none()));
    }

    #[test]
    fn multiline_literals_report_their_opening_line() {
        let src = "let a = \"one\ntwo\n\"; let b = r#\"x\ny\"#;\nlet after = 1;";
        let lexed = lex(src);
        let lits: Vec<u32> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_literal())
            .map(|t| t.line)
            .collect();
        assert_eq!(lits, vec![1, 3], "literals anchor at their opening line");
        let after = lexed.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 5, "line counting resumes past the literal");
    }

    #[test]
    fn unterminated_literals_are_tolerated() {
        // The rest of the file is swallowed, but the lexer must not
        // panic or mis-slice on any of these torn endings.
        for src in [
            "let s = \"open",
            "let s = r#\"open",
            "let s = \"esc\\",
            "let c = '",
        ] {
            let _ = lex(src);
        }
    }

    #[test]
    fn raw_idents_and_numbers() {
        let ids = idents("let r#type = 0xFF_u64; let range = 1..5;");
        assert!(ids.contains(&"type".to_string()));
        // `1..5` is number, dot, dot, number — not a malformed float.
        let lexed = lex("1..5");
        assert_eq!(lexed.tokens.iter().filter(|t| t.is_punct('.')).count(), 2);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Number)
                .count(),
            2
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\"multi\nline\"\nc";
        let lexed = lex(src);
        let c = lexed.tokens.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 5);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let x = 1; // dcs-lint: allow(hash-collection) — reason\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("dcs-lint"));
    }
}
